"""Observability overhead gate: tracing must not move the simulated clock.

Span bookkeeping is pure Python object mutation — it never schedules,
cancels or reorders simulator events — so a traced run and an untraced
run of the same workload must produce *identical* simulated outcomes:
same response times, same task counts, same modeled bytes.  This module
is the enforcement: run ``pytest -m obs benchmarks`` after touching the
tracing hot paths.

The committed ``benchmarks/results/`` tables are produced with tracing
disabled; the second test asserts a traced replay of a figure workload
still matches the untraced numbers bit-for-bit, so those files stay
byte-identical whether or not anyone ever turns tracing on.
"""

from __future__ import annotations

import dataclasses

import pytest

from benchmarks._harness import eval_cluster, load_t1
from repro.cluster.jobs import JobOptions

pytestmark = pytest.mark.obs

QUERIES = [
    "SELECT COUNT(*) FROM T1 WHERE click_count > 3",
    "SELECT province, COUNT(*) n, SUM(click_count) s FROM T1 "
    "WHERE click_count > 1 GROUP BY province",
    "SELECT url, COUNT(*) FROM T1 WHERE province = 'beijing' GROUP BY url",
    "SELECT COUNT(*) FROM T1 WHERE click_count > 3",  # reuse/warm-index path
]


def _run(trace: bool):
    cluster = eval_cluster(nodes_per_rack=4)
    load_t1(cluster, rows=8_000, num_fields=8)
    outcomes = []
    for sql in QUERIES:
        job = cluster.query_job(sql, options=JobOptions(trace=trace))
        outcomes.append(
            (
                job.status.value,
                job.response_time_s,
                job.submitted_at,
                job.finished_at,
                dataclasses.astuple(job.stats),
                [
                    # Strip the process-global plan counter from the id:
                    # "plan-7/t3" -> "t3" (both runs share one process).
                    (t.task_id.split("/")[-1], t.worker_id, t.started_at, t.finished_at, t.backup)
                    for t in job.task_timeline
                ],
            )
        )
    outcomes.append(cluster.sim.now)
    return outcomes


def test_tracing_does_not_perturb_simulated_outcomes():
    untraced = _run(trace=False)
    traced = _run(trace=True)
    assert untraced == traced, (
        "tracing changed simulated behavior — span code must stay off the event loop"
    )


def test_disabled_tracing_allocates_no_spans():
    cluster = eval_cluster(nodes_per_rack=4)
    load_t1(cluster, rows=4_000, num_fields=8)
    job = cluster.query_job(QUERIES[0])
    assert job.trace is None


def test_figure_workload_numbers_match_with_tracing_on():
    """A figure-style report built from traced runs must equal the
    untraced one line-for-line (guards the committed results files)."""
    rows_untraced = []
    rows_traced = []
    for trace, rows in ((False, rows_untraced), (True, rows_traced)):
        cluster = eval_cluster(nodes_per_rack=4)
        load_t1(cluster, rows=8_000, num_fields=8)
        for sql in QUERIES[:3]:
            job = cluster.query_job(sql, options=JobOptions(trace=trace))
            rows.append(
                (
                    sql[:40],
                    job.response_time_s,
                    float(job.stats.io_bytes_modeled),
                    job.stats.tasks_completed,
                )
            )
    assert rows_untraced == rows_traced
