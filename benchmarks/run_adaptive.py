"""Run the adaptive misestimate-ablation bench and gate on ``BENCH_adaptive.json``.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_adaptive.py            # compare
    PYTHONPATH=src python benchmarks/run_adaptive.py --update   # re-baseline

Without ``--update`` the run fails (exit 1) when the S53 acceptance bar
does not hold (adaptive rows identical to the frozen plan's, every query
re-planned, modeled IO conserved within per-slice rounding, mean
simulated latency cut by >= 25% on the misestimated skewed-join
workload) or when the improvement drifts past the committed baseline.
The same gate runs under pytest via ``pytest -m adaptivebench benchmarks``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from adaptive_bench import acceptance_failures, regressions, run_suite  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_adaptive.json")


def format_results(results) -> str:
    r = results["misestimate_ablation"]
    lines = [
        f"misestimate ablation: {r['queries']:.0f} skewed-join queries, "
        f"{r['replanned_queries']:.0f} re-planned",
        f"  frozen   mean latency {r['frozen_mean_latency_s']:8.4f} s (simulated)",
        f"  adaptive mean latency {r['adaptive_mean_latency_s']:8.4f} s (simulated)",
        f"  improvement: mean {r['mean_improvement']:.1%}   "
        f"worst query {r['min_improvement']:.1%}",
        f"  modeled IO ratio (adaptive/frozen, max over queries): "
        f"{r['io_ratio_max']:.6f}",
        f"  rows identical on every query: "
        f"{'yes' if r['rows_identical'] == 1.0 else 'NO'}",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline from this run")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    args = parser.parse_args(argv)

    results = run_suite()
    print(format_results(results))

    problems = acceptance_failures(results)
    if args.update:
        with open(args.baseline, "w") as fh:
            json.dump({"schema_version": 1, "runs": results}, fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"\nbaseline written to {args.baseline}")
    else:
        if not os.path.exists(args.baseline):
            print(f"\nno baseline at {args.baseline}; run with --update first")
            return 1
        with open(args.baseline) as fh:
            baseline = json.load(fh)["runs"]
        problems.extend(regressions(results, baseline))

    if problems:
        print("\nFAIL:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("\nOK: adaptive re-optimization beats the frozen plan without "
          "changing answers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
