"""Trojan-replica ablation gate (S54).

Opt-in gate: ``pytest -m layoutbench benchmarks``.  Runs the
predicate/join-heavy workload on base vs. ``enable_layouts`` twins and
asserts (a) the S54 acceptance bar — identical rows, replicas rewritten
and routed to, mean simulated latency cut by >= 25%, effective placement
byte-size memo — and (b) no improvement drift past the committed
``BENCH_layouts.json`` baseline.  Mirrors the adaptivebench gate.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

import layouts_bench as _lb  # noqa: E402

BASELINE = os.path.join(os.path.dirname(__file__), "BENCH_layouts.json")


@pytest.fixture(scope="module")
def layout_results():
    return _lb.run_suite()


@pytest.mark.layoutbench
def test_layouts_acceptance(layout_results):
    assert _lb.acceptance_failures(layout_results) == []


@pytest.mark.layoutbench
def test_layouts_baseline_regression(layout_results):
    assert os.path.exists(BASELINE), (
        "no committed baseline; run run_layouts.py --update"
    )
    with open(BASELINE) as fh:
        baseline = json.load(fh)["runs"]
    assert _lb.regressions(layout_results, baseline) == []


@pytest.mark.layoutbench
def test_layouts_baseline_schema():
    with open(BASELINE) as fh:
        doc = json.load(fh)
    assert doc["schema_version"] == 1
    runs = doc["runs"]
    assert set(runs) == {"layout_ablation", "placement_memo"}
    r = runs["layout_ablation"]
    assert r["queries"] == _lb.NUM_QUERIES
    assert r["rows_identical"] == 1.0
    assert r["replica_rewrites"] >= 1.0
    assert r["variant_reads"] >= 1.0
    assert r["mean_improvement"] >= _lb.MIN_MEAN_IMPROVEMENT
    m = runs["placement_memo"]
    assert m["bytes_cache_hits"] > m["bytes_cache_misses"]
