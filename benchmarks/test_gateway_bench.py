"""Gateway serving-bench gate (S52).

Opt-in gate: ``pytest -m gatewaybench benchmarks``.  Replays 1000
Zipf-skewed sessions against a 4-slot gateway and asserts (a) the S52
acceptance bar — every session completes, p99 simulated service latency
within 3x the idle p50, windowed Jain fairness >= 0.9 — and (b) no
latency/fairness drift past the committed ``BENCH_gateway.json``
baseline.  Mirrors the pipelinebench gate.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

import gateway_bench as _gb  # noqa: E402

BASELINE = os.path.join(os.path.dirname(__file__), "BENCH_gateway.json")


@pytest.fixture(scope="module")
def gateway_results():
    return _gb.run_suite()


@pytest.mark.gatewaybench
def test_gateway_acceptance(gateway_results):
    assert _gb.acceptance_failures(gateway_results) == []


@pytest.mark.gatewaybench
def test_gateway_baseline_regression(gateway_results):
    assert os.path.exists(BASELINE), (
        "no committed baseline; run run_gateway.py --update"
    )
    with open(BASELINE) as fh:
        baseline = json.load(fh)["runs"]
    assert _gb.regressions(gateway_results, baseline) == []


@pytest.mark.gatewaybench
def test_gateway_baseline_schema():
    with open(BASELINE) as fh:
        doc = json.load(fh)
    assert doc["schema_version"] == 1
    runs = doc["runs"]
    assert set(runs) == {"idle", "saturated_1000_sessions"}
    sat = runs["saturated_1000_sessions"]
    assert sat["sessions"] == _gb.NUM_SESSIONS
    assert sat["jain_fairness"] >= _gb.MIN_JAIN
    assert sat["p99_over_idle_p50"] <= _gb.MAX_P99_OVER_IDLE_P50
