"""Fig 5: ratio of queries sharing an exact predicate vs. time span.

Paper finding: "in a given time span, a large number of queries have at
least one same query predicate" (after conversion to conjunctive form) —
the query-similarity half of §IV-A, and SmartIndex's whole premise.
"""

import pytest

from benchmarks.conftest import format_series
from repro.workload.analysis import same_predicate_ratio_by_span
from repro.workload.datasets import log_schema
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

SPANS_H = [1, 2, 4, 8, 12, 24]


def _trace(days: float = 7.0, reuse: float = 0.8, seed: int = 42):
    gen = WorkloadGenerator(
        "T1",
        log_schema(16),
        WorkloadConfig(num_users=14, think_time_s=600.0, reuse_probability=reuse, seed=seed),
        value_ranges={"click_count": (0, 50), "position": (1, 10), "user_id": (0, 5000)},
        contains_values={"url": [f"site{i}" for i in range(6)], "query_text": ["music", "news"]},
    )
    return gen.generate(days * 86_400.0)


@pytest.mark.benchmark(group="fig5")
def test_fig5_predicate_similarity(benchmark, figure_report):
    trace = _trace()

    def analyze():
        spans = [h * 3600.0 for h in SPANS_H]
        return same_predicate_ratio_by_span(trace, spans)

    series = benchmark.pedantic(analyze, rounds=1, iterations=1)
    points = [(h, series[h * 3600.0]) for h in SPANS_H]
    figure_report(
        f"Fig 5: ratio of queries sharing >=1 exact predicate ({len(trace)} queries)",
        format_series(["span (hours)", "ratio"], points),
    )

    values = [v for _h, v in points]
    # Paper shape: a large fraction share predicates even in short spans,
    # and the ratio (weakly) grows with the span.
    assert values[0] > 0.4
    assert values[-1] > 0.6
    assert values[-1] >= values[0]
    assert all(0.0 <= v <= 1.0 for v in values)


@pytest.mark.benchmark(group="fig5")
def test_fig5_similarity_tracks_user_behaviour(benchmark, figure_report):
    """Ablation on the generating process: with trial-and-error reuse
    turned off, the paper's similarity signal collapses — evidence the
    statistic measures behaviour, not an artifact of the analyzer."""

    def analyze():
        spans = [4 * 3600.0]
        drill = same_predicate_ratio_by_span(_trace(reuse=0.85, seed=5), spans)[spans[0]]
        random_users = same_predicate_ratio_by_span(_trace(reuse=0.02, seed=5), spans)[spans[0]]
        return drill, random_users

    drill, random_users = benchmark.pedantic(analyze, rounds=1, iterations=1)
    figure_report(
        "Fig 5 (ablation): similarity vs. user behaviour",
        format_series(
            ["behaviour", "ratio @4h"],
            [("drill-down (reuse=0.85)", drill), ("random (reuse=0.02)", random_users)],
        ),
    )
    assert drill > random_users
