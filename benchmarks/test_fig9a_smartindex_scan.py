"""Fig 9(a): scan performance with and without SmartIndex.

Paper setup (§VI-B-1): randomly parameterized scan queries

    SELECT a FROM T1 WHERE b OP1 v1 [[AND|OR] c OP2 v2]

run against T1 on one storage system.  Paper finding: "query performance
improves as more queries are processed ... when the number of queries
processed goes above 4,000, the performance is improved by more than 3x
compared to the case when SmartIndex is disabled."

We run a scaled stream (the predicate pool and reuse rate mirror the
production similarity of Fig 5) on two identically shaped clusters —
SmartIndex on vs. off — and report per-bucket mean response times.
"""

import pytest

from benchmarks._harness import bucket_means, eval_cluster, load_t1, run_stream
from benchmarks.conftest import format_series
from repro import LeafConfig
from repro.workload.generator import scan_query_stream

N_QUERIES = 320
BUCKET = 40


def _queries():
    return scan_query_stream(
        "T1",
        ["click_count", "position", "user_id"],
        value_range=(0, 40),
        count=N_QUERIES,
        seed=23,
        contains_column="url",
        contains_values=[f"site{i}" for i in range(5)],
        pool_size=24,
        reuse_probability=0.8,
    )


def _run(enable_smartindex: bool):
    cluster = eval_cluster(LeafConfig(enable_smartindex=enable_smartindex))
    load_t1(cluster, rows=20_000, num_fields=12, block_rows=2048)
    stats = run_stream(cluster, _queries())
    return [s["response_time_s"] for s in stats]


@pytest.mark.benchmark(group="fig9a")
def test_fig9a_smartindex_scan(benchmark, figure_report):
    def run_both():
        return _run(True), _run(False)

    with_idx, without_idx = benchmark.pedantic(run_both, rounds=1, iterations=1)
    w = bucket_means(with_idx, BUCKET)
    wo = bucket_means(without_idx, BUCKET)
    rows = [
        (f"{(i + 1) * BUCKET}", wo_s, w_s, wo_s / w_s)
        for i, (w_s, wo_s) in enumerate(zip(w, wo))
    ]
    figure_report(
        "Fig 9(a): scan latency with vs. without SmartIndex "
        f"({N_QUERIES} randomly parameterized scans)",
        format_series(
            ["queries processed", "no index (s)", "SmartIndex (s)", "speedup"], rows
        ),
    )

    # Shape assertions from the paper:
    # (1) without SmartIndex, performance stays flat (no warm-up effect);
    assert max(wo) / min(wo) < 1.8
    # (2) with SmartIndex, performance improves as queries are processed;
    assert w[-1] < w[0]
    # (3) once warm, the improvement is a multiple (paper: >3x at 4,000
    #     production queries; we require >2x at our scaled stream length).
    assert wo[-1] / w[-1] > 2.0


@pytest.mark.benchmark(group="fig9a")
def test_fig9a_io_reduction_mechanism(benchmark, figure_report):
    """The speedup's mechanism per the paper: 'reduction of I/O when a
    query predicate has SmartIndex'.  Verify bytes, not just time."""

    def run():
        cluster = eval_cluster(LeafConfig(enable_smartindex=True))
        load_t1(cluster, rows=20_000, num_fields=12, block_rows=2048)
        stats = run_stream(cluster, _queries())
        io = [s["io_bytes_modeled"] for s in stats]
        return bucket_means(io, BUCKET)

    io_buckets = benchmark.pedantic(run, rounds=1, iterations=1)
    figure_report(
        "Fig 9(a) mechanism: modeled scan bytes per query over the stream",
        format_series(
            ["queries processed", "mean scan MB/query"],
            [((i + 1) * BUCKET, b / 1e6) for i, b in enumerate(io_buckets)],
        ),
    )
    # The warm half of the stream reads substantially less than the cold
    # start.  (Full-cover queries still read the projected result column,
    # so the floor is the payload read, not zero.)
    warm = io_buckets[len(io_buckets) // 2 :]
    assert sum(warm) / len(warm) < 0.75 * io_buckets[0]
