"""Run the gateway serving bench and gate on ``BENCH_gateway.json``.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_gateway.py            # compare
    PYTHONPATH=src python benchmarks/run_gateway.py --update   # re-baseline

Without ``--update`` the run fails (exit 1) when the S52 acceptance bar
does not hold (all 1000 sessions complete, p99 simulated service latency
within 3x the idle p50, windowed Jain fairness >= 0.9 across the 8
Zipf-skewed tenants) or when key latency/fairness metrics drift past the
committed baseline.  The same gate runs under pytest via
``pytest -m gatewaybench benchmarks``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from gateway_bench import acceptance_failures, regressions, run_suite  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_gateway.json")


def format_results(results) -> str:
    idle = results["idle"]
    sat = results["saturated_1000_sessions"]
    lines = [
        f"idle floor: service p50 {idle['service_p50_s'] * 1e3:.2f} ms "
        f"(p99 {idle['service_p99_s'] * 1e3:.2f} ms over {idle['submitted']:.0f} queries)",
        "",
        f"saturated: {sat['sessions']:.0f} sessions, {sat['submitted']:.0f} queries, "
        f"makespan {sat['makespan_s']:.1f} s (simulated)",
        f"  service  p50 {sat['service_p50_s'] * 1e3:8.2f} ms   p99 "
        f"{sat['service_p99_s'] * 1e3:8.2f} ms  ({sat['p99_over_idle_p50']:.2f}x idle p50)",
        f"  wait     p50 {sat['queue_wait_p50_s'] * 1e3:8.2f} ms   p99 "
        f"{sat['queue_wait_p99_s'] * 1e3:8.2f} ms",
        f"  total    p50 {sat['total_p50_s'] * 1e3:8.2f} ms   p99 "
        f"{sat['total_p99_s'] * 1e3:8.2f} ms",
        f"  fairness: Jain {sat['jain_fairness']:.3f} over "
        f"{sat['fairness_tenants']:.0f} backlogged tenants",
        f"  outcomes: {sat['completed']:.0f} ok / {sat['failed']:.0f} failed / "
        f"{sat['killed']:.0f} killed / {sat['timed_out']:.0f} timed out / "
        f"{sat['rejected']:.0f} rejected",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline from this run")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    args = parser.parse_args(argv)

    results = run_suite()
    print(format_results(results))

    problems = acceptance_failures(results)
    if args.update:
        with open(args.baseline, "w") as fh:
            json.dump({"schema_version": 1, "runs": results}, fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"\nbaseline written to {args.baseline}")
    else:
        if not os.path.exists(args.baseline):
            print(f"\nno baseline at {args.baseline}; run with --update first")
            return 1
        with open(args.baseline) as fh:
            baseline = json.load(fh)["runs"]
        problems.extend(regressions(results, baseline))

    if problems:
        print("\nFAIL:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("\nOK: the gateway holds latency and fairness under saturation")
    return 0


if __name__ == "__main__":
    sys.exit(main())
