"""Run the Trojan-replica ablation bench and gate on ``BENCH_layouts.json``.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_layouts.py            # compare
    PYTHONPATH=src python benchmarks/run_layouts.py --update   # re-baseline

Without ``--update`` the run fails (exit 1) when the S54 acceptance bar
does not hold (identical rows on both twins, replicas actually rewritten
and routed to, mean simulated latency cut by >= 25%, scheduler byte-size
memo effective) or when the improvement drifts past the committed
baseline.  The same gate runs under pytest via
``pytest -m layoutbench benchmarks``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from layouts_bench import acceptance_failures, regressions, run_suite  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_layouts.json")


def format_results(results) -> str:
    r = results["layout_ablation"]
    m = results["placement_memo"]
    lines = [
        f"layout ablation: {r['queries']:.0f} predicate/join-heavy queries, "
        f"{r['replica_rewrites']:.0f} replica rewrites, "
        f"{r['variant_reads']:.0f} variant reads in the measured pass",
        f"  base   mean latency {r['base_mean_latency_s']:8.4f} s (simulated)",
        f"  layout mean latency {r['layout_mean_latency_s']:8.4f} s (simulated)",
        f"  improvement: mean {r['mean_improvement']:.1%}   "
        f"worst query {r['min_improvement']:.1%}",
        f"  rows identical on every query: "
        f"{'yes' if r['rows_identical'] == 1.0 else 'NO'}",
        f"placement byte-size memo: {m['bytes_cache_hits']:.0f} hits / "
        f"{m['bytes_cache_misses']:.0f} misses, "
        f"micro speedup {m['memo_micro_speedup']:.1f}x (wall-clock)",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline from this run")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    args = parser.parse_args(argv)

    results = run_suite()
    print(format_results(results))

    problems = acceptance_failures(results)
    if args.update:
        with open(args.baseline, "w") as fh:
            json.dump({"schema_version": 1, "runs": results}, fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"\nbaseline written to {args.baseline}")
    else:
        if not os.path.exists(args.baseline):
            print(f"\nno baseline at {args.baseline}; run with --update first")
            return 1
        with open(args.baseline) as fh:
            baseline = json.load(fh)["runs"]
        problems.extend(regressions(results, baseline))

    if problems:
        print("\nFAIL:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("\nOK: Trojan replicas beat byte-identical replicas without "
          "changing answers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
