"""Fused-pipeline benchmark gate (S51).

Opt-in wall-clock gate: ``pytest -m pipelinebench benchmarks``.  Runs
the fused-vs-unfused kernel suite once and asserts (a) the suite's
built-in invariants — fused beats the operator-at-a-time executor by
>= 2x on the scan-heavy kernels and costs no more than 3x on a tiny
block — and (b) no kernel slower than 2x the committed
``BENCH_pipeline.json`` baseline.  Mirrors the kernelbench gate.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

import pipeline_kernels as _pk  # noqa: E402

BASELINE = os.path.join(os.path.dirname(__file__), "BENCH_pipeline.json")


@pytest.fixture(scope="module")
def pipeline_results():
    return _pk.run_suite(repeat=3)


@pytest.mark.pipelinebench
def test_pipeline_acceptance(pipeline_results):
    assert _pk.acceptance_failures(pipeline_results) == []


@pytest.mark.pipelinebench
def test_pipeline_baseline_regression(pipeline_results):
    assert os.path.exists(BASELINE), (
        "no committed baseline; run run_pipeline.py --update"
    )
    with open(BASELINE) as fh:
        baseline = json.load(fh)["kernels"]
    assert _pk.regressions(pipeline_results, baseline) == []


@pytest.mark.pipelinebench
def test_pipeline_baseline_schema():
    with open(BASELINE) as fh:
        doc = json.load(fh)
    assert doc["schema_version"] == 1
    assert set(doc["kernels"]) == set(_pk.KERNELS)
    for metrics in doc["kernels"].values():
        assert metrics["wall_s"] > 0
        assert metrics["speedup"] > 0
