"""Run the fused-pipeline benchmark suite and gate on ``BENCH_pipeline.json``.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_pipeline.py            # compare
    PYTHONPATH=src python benchmarks/run_pipeline.py --update   # re-baseline

Without ``--update`` the run fails (exit 1) when any kernel is more than
2x slower than the committed baseline, or when the suite's built-in
invariants (fused >= 2x unfused on the scan-heavy kernels, bounded
small-block penalty) do not hold.  The same gate runs under pytest via
``pytest -m pipelinebench benchmarks``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from pipeline_kernels import acceptance_failures, regressions, run_suite  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_pipeline.json")


def format_results(results) -> str:
    lines = [f"{'kernel':<26} {'fused_s':>12} {'unfused_s':>12} {'speedup':>9}"]
    for name, metrics in results.items():
        lines.append(
            f"{name:<26} {metrics['wall_s']:>12.6f} "
            f"{metrics['unfused_wall_s']:>12.6f} "
            f"{metrics['speedup']:>8.2f}x"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline from this run")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repeats per kernel (min is kept)")
    args = parser.parse_args(argv)

    results = run_suite(repeat=args.repeat)
    print(format_results(results))

    problems = acceptance_failures(results)
    if args.update:
        with open(args.baseline, "w") as fh:
            json.dump({"schema_version": 1, "kernels": results}, fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"\nbaseline written to {args.baseline}")
    else:
        if not os.path.exists(args.baseline):
            print(f"\nno baseline at {args.baseline}; run with --update first")
            return 1
        with open(args.baseline) as fh:
            baseline = json.load(fh)["kernels"]
        problems.extend(regressions(results, baseline))

    if problems:
        print("\nFAIL:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("\nOK: fused pipeline holds its wins")
    return 0


if __name__ == "__main__":
    sys.exit(main())
