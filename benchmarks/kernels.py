"""Wall-clock kernel benchmark suite (DESIGN.md S46).

Times the vectorized hot-path kernels the leaves run at memory speed —
join build+probe, grouped aggregation, multi-key sort, bitvector
popcount/AND, the RLE codec, and SmartIndex lookups — and, for the join
and aggregation kernels, the straightforward scalar loops they replaced,
so every run reports the speedup the vectorization buys.

``run_suite`` returns a machine-readable dict; ``benchmarks/run_kernels.py``
writes/compares the committed ``BENCH_kernels.json`` baseline and
``pytest -m kernelbench`` gates on it.

All timings here are *library* wall-clock; the figure reproductions'
simulated-clock numbers are untouched by definition.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.aggregates import make_state, partial_aggregate
from repro.engine.operators import hash_join, sort_frame
from repro.index.bitmap import BitVector, rle_compress, rle_decompress
from repro.index.smartindex import SmartIndexManager
from repro.planner.cnf import AtomicPredicate
from repro.planner.expressions import Frame
from repro.sql.ast import BinaryOperator, JoinKind

#: A kernel regresses when its wall-clock exceeds baseline * this factor.
REGRESSION_FACTOR = 2.0
#: Acceptance floor for the vectorized join/aggregate kernels.
MIN_SPEEDUP = 5.0
#: Index lookup cost must stay within this factor between cache sizes.
MAX_LOOKUP_SPREAD = 2.0

JOIN_ROWS = 100_000
AGG_ROWS = 100_000
SORT_ROWS = 100_000
BITS = 1_000_000


def _best_of(fn: Callable[[], object], repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# -- scalar reference implementations -------------------------------------
# Faithful copies of the row-at-a-time loops the vectorized kernels
# replaced (the seed's hash_join build/probe and partial_aggregate group
# loop), so the reported speedup measures exactly what this layer buys.


def _scalar_hash_join(left: Frame, right: Frame, lk: str, rk: str) -> Frame:
    left_arrays = [left.column(lk)]
    right_arrays = [right.column(rk)]
    table: Dict[Tuple, List[int]] = {}
    for i in range(right.num_rows):
        key = tuple(arr[i] for arr in right_arrays)
        table.setdefault(key, []).append(i)
    left_idx: List[int] = []
    right_idx: List[int] = []
    for i in range(left.num_rows):
        key = tuple(arr[i] for arr in left_arrays)
        matches = table.get(key)
        if matches:
            left_idx.extend([i] * len(matches))
            right_idx.extend(matches)
    li = np.asarray(left_idx, dtype=np.int64)
    ri = np.asarray(right_idx, dtype=np.int64)
    out: Dict[str, np.ndarray] = {}
    for name, col in left.columns.items():
        out[name] = col[li]
    for name, col in right.columns.items():
        out[name] = col[ri]
    return Frame(out, len(li))


def _to_python(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _scalar_partial_aggregate(
    key_arrays: List[np.ndarray], funcs: List[str], arrays: List[np.ndarray], n: int
) -> Dict[Tuple, list]:
    from repro.engine.aggregates import group_rows

    ids, _reps = group_rows(key_arrays, n)
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_ids[1:] != sorted_ids[:-1]))
    )
    slices = np.append(boundaries, len(sorted_ids))
    groups: Dict[Tuple, list] = {}
    for gi in range(len(boundaries)):
        rows = order[slices[gi] : slices[gi + 1]]
        rep = rows[0]
        key = tuple(_to_python(col[rep]) for col in key_arrays)
        states = groups.get(key)
        if states is None:
            states = [make_state(f) for f in funcs]
            groups[key] = states
        for state, arr in zip(states, arrays):
            state.update(arr[rows])
    return groups


# -- kernel definitions ---------------------------------------------------


def _join_inputs() -> Tuple[Frame, Frame]:
    rng = np.random.default_rng(7)
    left = Frame.from_columns(
        {
            "l.k": rng.integers(0, JOIN_ROWS // 5, JOIN_ROWS),
            "l.v": rng.random(JOIN_ROWS),
        }
    )
    right = Frame.from_columns(
        {
            "r.k": rng.integers(0, JOIN_ROWS // 5, JOIN_ROWS // 5),
            "r.w": rng.random(JOIN_ROWS // 5),
        }
    )
    return left, right


def bench_join(repeat: int) -> Dict[str, float]:
    left, right = _join_inputs()
    wall = _best_of(
        lambda: hash_join(left, right, ["l.k"], ["r.k"], JoinKind.INNER), repeat
    )
    scalar = _best_of(lambda: _scalar_hash_join(left, right, "l.k", "r.k"), repeat)
    return {"wall_s": wall, "scalar_wall_s": scalar, "speedup": scalar / wall,
            "rows": JOIN_ROWS}


def _agg_inputs() -> Tuple[np.ndarray, np.ndarray]:
    # High-cardinality GROUP BY (the paper's group-by-url shape): the
    # per-group work, not the initial factorize/sort, must dominate.
    rng = np.random.default_rng(11)
    return rng.integers(0, AGG_ROWS // 10, AGG_ROWS), rng.random(AGG_ROWS)


def bench_grouped_aggregate(repeat: int) -> Dict[str, float]:
    keys, values = _agg_inputs()
    funcs = ["COUNT", "SUM", "MIN", "MAX", "AVG"]
    wall = _best_of(
        lambda: partial_aggregate([keys], funcs, [values] * 5, AGG_ROWS), repeat
    )
    scalar = _best_of(
        lambda: _scalar_partial_aggregate([keys], funcs, [values] * 5, AGG_ROWS),
        repeat,
    )
    return {"wall_s": wall, "scalar_wall_s": scalar, "speedup": scalar / wall,
            "rows": AGG_ROWS}


def bench_sort(repeat: int) -> Dict[str, float]:
    rng = np.random.default_rng(13)
    frame = Frame.from_columns(
        {"a": rng.integers(0, 50, SORT_ROWS), "b": rng.random(SORT_ROWS)}
    )
    keys = [(frame.column("a"), True), (frame.column("b"), False)]
    return {"wall_s": _best_of(lambda: sort_frame(frame, keys), repeat),
            "rows": SORT_ROWS}


def _bitvectors() -> Tuple[BitVector, BitVector]:
    rng = np.random.default_rng(17)
    return (
        BitVector.from_bool_array(rng.random(BITS) < 0.3),
        BitVector.from_bool_array(rng.random(BITS) < 0.5),
    )


def bench_popcount(repeat: int) -> Dict[str, float]:
    a, _ = _bitvectors()

    def run():
        for _ in range(100):
            a.count()

    return {"wall_s": _best_of(run, repeat) / 100, "bits": BITS}


def bench_bit_and(repeat: int) -> Dict[str, float]:
    a, b = _bitvectors()

    def run():
        for _ in range(100):
            (a & b).count()

    return {"wall_s": _best_of(run, repeat) / 100, "bits": BITS}


def bench_rle_roundtrip(repeat: int) -> Dict[str, float]:
    # Clustered bits: realistic selective-predicate bitmap with long runs.
    rng = np.random.default_rng(19)
    mask = np.zeros(BITS, dtype=bool)
    starts = rng.integers(0, BITS - 600, 200)
    for s in starts:
        mask[s : s + int(rng.integers(50, 600))] = True
    bv = BitVector.from_bool_array(mask)

    def run():
        payload, length = rle_compress(bv)
        rle_decompress(payload, length)

    return {"wall_s": _best_of(run, repeat), "bits": BITS}


def _filled_manager(entries: int) -> Tuple[SmartIndexManager, List[AtomicPredicate]]:
    mgr = SmartIndexManager(compress=False)
    rng = np.random.default_rng(23)
    atoms = [
        AtomicPredicate(f"c{i % 40}", BinaryOperator.GT, int(v))
        for i, v in enumerate(rng.integers(0, 1_000_000, entries))
    ]
    mask = np.ones(512, dtype=bool)
    for i, atom in enumerate(atoms):
        mgr.insert(f"b{i % 64}", atom, mask, now=float(i) * 1e-3)
    return mgr, atoms


def _bench_lookup(entries: int, repeat: int) -> Dict[str, float]:
    mgr, atoms = _filled_manager(entries)
    rng = np.random.default_rng(29)
    probe_ids = rng.integers(0, len(atoms), 2000)
    probes = [(f"b{i % 64}", atoms[i]) for i in probe_ids]
    now = float(entries) * 1e-3 + 1.0

    def run():
        for block_id, atom in probes:
            mgr.lookup_atom(block_id, atom, now)

    return {"wall_s": _best_of(run, repeat) / len(probes), "entries": entries}


def bench_index_lookup_100(repeat: int) -> Dict[str, float]:
    return _bench_lookup(100, repeat)


def bench_index_lookup_10k(repeat: int) -> Dict[str, float]:
    return _bench_lookup(10_000, repeat)


KERNELS: Dict[str, Callable[[int], Dict[str, float]]] = {
    "join_build_probe_100k": bench_join,
    "grouped_aggregate_100k": bench_grouped_aggregate,
    "sort_frame_100k": bench_sort,
    "bitvector_popcount_1m": bench_popcount,
    "bitvector_and_1m": bench_bit_and,
    "rle_roundtrip_1m": bench_rle_roundtrip,
    "index_lookup_100": bench_index_lookup_100,
    "index_lookup_10k": bench_index_lookup_10k,
}


def run_suite(repeat: int = 3) -> Dict[str, Dict[str, float]]:
    """Run every kernel; returns ``{kernel_name: metrics}``."""
    return {name: fn(repeat) for name, fn in KERNELS.items()}


def acceptance_failures(results: Dict[str, Dict[str, float]]) -> List[str]:
    """The suite's built-in invariants (independent of any baseline)."""
    problems = []
    for name in ("join_build_probe_100k", "grouped_aggregate_100k"):
        speedup = results[name]["speedup"]
        if speedup < MIN_SPEEDUP:
            problems.append(
                f"{name}: speedup {speedup:.1f}x < required {MIN_SPEEDUP:.0f}x"
            )
    small = results["index_lookup_100"]["wall_s"]
    big = results["index_lookup_10k"]["wall_s"]
    spread = big / small if small else float("inf")
    if spread > MAX_LOOKUP_SPREAD:
        problems.append(
            f"index lookup not flat: 10k-entry cache costs {spread:.2f}x "
            f"a 100-entry cache (limit {MAX_LOOKUP_SPREAD:.0f}x)"
        )
    return problems


def regressions(
    results: Dict[str, Dict[str, float]], baseline: Dict[str, Dict[str, float]]
) -> List[str]:
    """Kernels slower than ``REGRESSION_FACTOR`` x the committed baseline."""
    problems = []
    for name, base in baseline.items():
        current: Optional[Dict[str, float]] = results.get(name)
        if current is None:
            problems.append(f"{name}: kernel missing from current suite")
            continue
        if current["wall_s"] > base["wall_s"] * REGRESSION_FACTOR:
            problems.append(
                f"{name}: {current['wall_s']:.6f}s vs baseline "
                f"{base['wall_s']:.6f}s (>{REGRESSION_FACTOR:.0f}x regression)"
            )
    return problems
