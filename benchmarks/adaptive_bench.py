"""Misestimate-ablation bench for the adaptive re-optimizer (S53).

Twin clusters — frozen planner vs. ``AdaptiveConfig`` pilot-slice
re-optimization — run the same skewed-join workload whose CONTAINS
predicate the static planner misestimates by ~6x.  The gate demands:

* every query returns identical rows on both twins (float aggregates up
  to addition-order ulps);
* every adaptive run actually re-planned (the trigger fired);
* adaptive modeled IO never exceeds frozen beyond per-slice rounding;
* mean simulated latency improves by at least ``MIN_MEAN_IMPROVEMENT``.

SmartIndex is disabled on BOTH twins: pilot slices can never answer from
a whole-block index, so leaving it on for the frozen twin only would
compare different machines (and repeats would be index-covered there).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro import DataType, FeisuCluster, FeisuConfig, Schema
from repro.cluster.node import LeafConfig
from repro.planner.adaptive import AdaptiveConfig
from repro.workload.generator import skewed_join_dataset, skewed_join_queries

#: Acceptance bar: adaptive must cut mean simulated latency by >= 25%.
MIN_MEAN_IMPROVEMENT = 0.25
#: Modeled-IO conservation: slices charge proportionally; per-slice
#: integer rounding is the only slack allowed.
MAX_IO_RATIO = 1.001
#: Distinct misestimate queries in the workload.
NUM_QUERIES = 8

_ROWS = 24_000
_BLOCK_ROWS = 6_000
_SCALE_FACTOR = 1_200

FACT_SCHEMA = Schema.of(
    k=DataType.INT64, v=DataType.FLOAT64, w=DataType.INT64, note=DataType.STRING
)
DIM_SCHEMA = Schema.of(k=DataType.INT64, label=DataType.STRING)


def _twin(adaptive) -> FeisuCluster:
    cluster = FeisuCluster(
        FeisuConfig(
            datacenters=1,
            racks_per_datacenter=2,
            nodes_per_rack=8,
            leaf=LeafConfig(enable_smartindex=False),
            adaptive=adaptive,
        )
    )
    fact, dim = skewed_join_dataset(_ROWS, seed=17)
    cluster.load_table(
        "T",
        FACT_SCHEMA,
        fact,
        storage="storage-a",
        block_rows=_BLOCK_ROWS,
        scale_factor=_SCALE_FACTOR,
    )
    cluster.load_table("D", DIM_SCHEMA, dim, storage="storage-b", block_rows=100)
    return cluster


def _rows_match(rows_a: List, rows_b: List) -> bool:
    if len(rows_a) != len(rows_b):
        return False
    for row_a, row_b in zip(rows_a, rows_b):
        if len(row_a) != len(row_b):
            return False
        for a, b in zip(row_a, row_b):
            if isinstance(a, float) and isinstance(b, float):
                if math.isnan(a) and math.isnan(b):
                    continue
                if not math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9):
                    return False
            elif a != b:
                return False
    return True


def run_suite() -> Dict[str, Dict[str, float]]:
    frozen = _twin(None)
    adaptive = _twin(AdaptiveConfig())
    queries = skewed_join_queries(NUM_QUERIES, seed=23)

    frozen_latencies: List[float] = []
    adaptive_latencies: List[float] = []
    improvements: List[float] = []
    replanned = 0
    rows_identical = True
    io_ratio_max = 0.0
    for sql in queries:
        f = frozen.query(sql)
        a = adaptive.query(sql)
        rows_identical = rows_identical and _rows_match(f.rows(), a.rows())
        f_lat = f.stats["response_time_s"]
        a_lat = a.stats["response_time_s"]
        frozen_latencies.append(f_lat)
        adaptive_latencies.append(a_lat)
        improvements.append(1.0 - a_lat / f_lat)
        if a.stats.get("adaptive_replans", 0) >= 1:
            replanned += 1
        io_ratio_max = max(
            io_ratio_max, a.stats["io_bytes_modeled"] / f.stats["io_bytes_modeled"]
        )

    n = len(queries)
    return {
        "misestimate_ablation": {
            "queries": float(n),
            "frozen_mean_latency_s": sum(frozen_latencies) / n,
            "adaptive_mean_latency_s": sum(adaptive_latencies) / n,
            "mean_improvement": sum(improvements) / n,
            "min_improvement": min(improvements),
            "replanned_queries": float(replanned),
            "rows_identical": 1.0 if rows_identical else 0.0,
            "io_ratio_max": io_ratio_max,
        }
    }


def acceptance_failures(results: Dict[str, Dict[str, float]]) -> List[str]:
    """The S53 acceptance bar, independent of any baseline."""
    r = results["misestimate_ablation"]
    problems: List[str] = []
    if r["rows_identical"] != 1.0:
        problems.append("adaptive rows diverge from the frozen plan's rows")
    if r["replanned_queries"] < r["queries"]:
        problems.append(
            f"only {r['replanned_queries']:.0f}/{r['queries']:.0f} queries "
            "re-planned; the misestimate trigger should fire on all"
        )
    if r["io_ratio_max"] > MAX_IO_RATIO:
        problems.append(
            f"adaptive modeled IO {r['io_ratio_max']:.4f}x frozen "
            f"(allowed {MAX_IO_RATIO:.4f}x)"
        )
    if r["mean_improvement"] < MIN_MEAN_IMPROVEMENT:
        problems.append(
            f"mean latency improvement {r['mean_improvement']:.1%} "
            f"< required {MIN_MEAN_IMPROVEMENT:.0%}"
        )
    return problems


def regressions(
    results: Dict[str, Dict[str, float]], baseline: Dict[str, Dict[str, float]]
) -> List[str]:
    """Drift vs. the committed baseline (simulated clock: deterministic,
    so only a real behaviour change moves these)."""
    r = results["misestimate_ablation"]
    b = baseline["misestimate_ablation"]
    problems: List[str] = []
    if r["mean_improvement"] < b["mean_improvement"] - 0.02:
        problems.append(
            f"mean improvement regressed: {r['mean_improvement']:.1%} vs "
            f"baseline {b['mean_improvement']:.1%}"
        )
    if r["adaptive_mean_latency_s"] > b["adaptive_mean_latency_s"] * 1.05:
        problems.append(
            f"adaptive mean latency regressed: {r['adaptive_mean_latency_s']:.4f}s "
            f"vs baseline {b['adaptive_mean_latency_s']:.4f}s"
        )
    return problems
