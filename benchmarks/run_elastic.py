"""Run the elastic rebalancing bench and gate on ``BENCH_elastic.json``.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_elastic.py            # compare
    PYTHONPATH=src python benchmarks/run_elastic.py --update   # re-baseline

Without ``--update`` the run fails (exit 1) when the S55 acceptance bar
does not hold (identical rows on both twins, hot shard split and hot
replicas spread, mean simulated latency cut by >= 25%, the
join/decommission exercise stranding nothing on the departed node) or
when the improvement drifts past the committed baseline.  The same gate
runs under pytest via ``pytest -m elasticbench benchmarks``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from elastic_bench import acceptance_failures, regressions, run_suite  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_elastic.json")


def format_results(results) -> str:
    r = results["elastic_ablation"]
    m = results["membership"]
    lines = [
        f"elastic ablation: {r['queries']:.0f} hot-domain queries, "
        f"{r['shard_splits']:.0f} shard splits, "
        f"{r['replica_spreads']:.0f} replica spreads, "
        f"{r['migrations']:.0f} migrations "
        f"({r['moved_bytes']:.0f} bytes moved)",
        f"  static  mean latency {r['static_mean_latency_s']:8.4f} s (simulated)",
        f"  elastic mean latency {r['elastic_mean_latency_s']:8.4f} s (simulated)",
        f"  improvement: mean {r['mean_improvement']:.1%}   "
        f"worst query {r['min_improvement']:.1%}",
        f"  rows identical on every query: "
        f"{'yes' if r['rows_identical'] == 1.0 else 'NO'}",
        f"membership: {m['joins']:.0f} join(s), {m['decommissions']:.0f} "
        f"decommission(s), {m['evacuations']:.0f} evacuation(s) "
        f"({m['evacuated_replicas_held_before']:.0f} replicas held pre-drain), "
        f"{m['stranded_on_departed']:.0f} stranded on departed nodes",
        f"  rows identical after join+decommission: "
        f"{'yes' if m['post_change_rows_identical'] == 1.0 else 'NO'}",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline from this run")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    args = parser.parse_args(argv)

    results = run_suite()
    print(format_results(results))

    problems = acceptance_failures(results)
    if args.update:
        with open(args.baseline, "w") as fh:
            json.dump({"schema_version": 1, "runs": results}, fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"\nbaseline written to {args.baseline}")
    else:
        if not os.path.exists(args.baseline):
            print(f"\nno baseline at {args.baseline}; run with --update first")
            return 1
        with open(args.baseline) as fh:
            baseline = json.load(fh)["runs"]
        problems.extend(regressions(results, baseline))

    if problems:
        print("\nFAIL:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("\nOK: rebalancing beats the static hot-domain cluster without "
          "changing answers, and departures strand nothing")
    return 0


if __name__ == "__main__":
    sys.exit(main())
