"""Shared helpers for the figure-reproduction benchmarks."""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import FeisuCluster, FeisuConfig, LeafConfig
from repro.workload.datasets import DatasetSpec, load_paper_datasets


def eval_cluster(
    leaf: Optional[LeafConfig] = None,
    datacenters: int = 1,
    racks_per_datacenter: int = 2,
    nodes_per_rack: int = 8,
    seed: int = 17,
    locality_aware: bool = True,
) -> FeisuCluster:
    """A cluster shaped like one slice of the paper's testbed."""
    # Per-call default: a def-time LeafConfig() would be one shared
    # mutable instance across every benchmark cluster.
    leaf = leaf if leaf is not None else LeafConfig()
    return FeisuCluster(
        FeisuConfig(
            datacenters=datacenters,
            racks_per_datacenter=racks_per_datacenter,
            nodes_per_rack=nodes_per_rack,
            leaf=leaf,
            seed=seed,
            locality_aware=locality_aware,
        )
    )


def load_t1(
    cluster: FeisuCluster,
    rows: int = 20_000,
    num_fields: int = 12,
    block_rows: int = 2048,
    scale: float = 1500.0,
):
    """Load a scaled T1 onto storage A; returns the table.

    ``scale`` sets how many production rows each materialized row models.
    The default keeps per-query modeled response times in the paper's
    interactive range (seconds) on a 16-node simulated cluster; the
    paper's full 30 B rows spread over 4,000 nodes — proportionally the
    same per-node load.  Table I's full-scale accounting lives in
    ``test_table1_datasets.py``.
    """
    spec = DatasetSpec("T1", rows, num_fields, "storage-a", int(rows * scale), seed=101)
    return load_paper_datasets(cluster, [spec], block_rows=block_rows)["T1"]


def run_stream(
    cluster: FeisuCluster,
    queries: Sequence[str],
    user: Optional[str] = None,
    inter_query_gap_s: float = 0.0,
) -> List[Dict[str, float]]:
    """Run queries sequentially; returns per-query stats dicts.

    Each dict carries the modeled stats plus ``wall_clock_s`` — the real
    host-side execution time of that query.  Figure tests read the
    modeled keys by name, so the extra key never reaches the committed
    result files; it is there so a harness run can report simulated and
    wall time side by side (e.g. when judging the fused-pipeline flag).
    """
    out = []
    for sql in queries:
        if inter_query_gap_s:
            cluster.sim.run(until=cluster.sim.now + inter_query_gap_s)
        t0 = time.perf_counter()
        result = cluster.query(sql, user=user)
        stats = dict(result.stats)
        stats["wall_clock_s"] = time.perf_counter() - t0
        out.append(stats)
    return out


def bucket_means(values: Sequence[float], bucket: int) -> List[float]:
    """Mean of consecutive buckets (the figures' x-axis points)."""
    means = []
    for start in range(0, len(values) - bucket + 1, bucket):
        chunk = values[start : start + bucket]
        means.append(sum(chunk) / len(chunk))
    return means


def logical_bytes(plans_bytes: Sequence[float]) -> float:
    return float(sum(plans_bytes))
