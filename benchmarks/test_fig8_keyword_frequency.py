"""Fig 8: keyword frequency over the (three-month) query log.

Paper finding: scan queries (including aggregation) "occupy more than
99% of all queries in Feisu", which justifies evaluating with scans.
"""

import pytest

from benchmarks.conftest import format_series
from repro.workload.analysis import keyword_frequency, scan_query_share
from repro.workload.datasets import log_schema
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def _corpus(days: float = 21.0):
    gen = WorkloadGenerator(
        "T1",
        log_schema(16),
        WorkloadConfig(num_users=20, think_time_s=900.0, seed=8),
        value_ranges={"click_count": (0, 50), "position": (1, 10)},
        contains_values={"url": [f"site{i}" for i in range(6)]},
    )
    return [q.sql for q in gen.generate(days * 86_400.0)]


@pytest.mark.benchmark(group="fig8")
def test_fig8_keyword_frequency(benchmark, figure_report):
    corpus = _corpus()

    def analyze():
        return keyword_frequency(corpus), scan_query_share(corpus)

    freq, scan_share = benchmark.pedantic(analyze, rounds=1, iterations=1)
    ranked = sorted(freq.items(), key=lambda kv: -kv[1])
    figure_report(
        f"Fig 8: keyword frequency over {len(corpus)} queries "
        f"(scan/aggregation share: {scan_share:.1%})",
        format_series(["keyword", "occurrences"], ranked[:12]),
    )

    # Every query is a SELECT ... FROM.
    assert freq["SELECT"] == len(corpus) == freq["FROM"]
    # Scans + aggregations dominate: the paper reports > 99 %.
    assert scan_share > 0.99
    # Filtering keywords are pervasive; aggregation keywords common.
    assert freq["WHERE"] > 0.5 * len(corpus)
    agg_total = sum(freq.get(k, 0) for k in ("COUNT", "SUM", "AVG", "MIN", "MAX"))
    assert agg_total > 0.3 * len(corpus)
    # JOIN is rare-to-absent in the ad-hoc scan workload.
    assert freq.get("JOIN", 0) < 0.01 * len(corpus)
