"""Semantic SmartIndex benchmark gate (S49).

Opt-in wall-clock gate: ``pytest -m smartbench benchmarks``.  Runs the
semantic-index kernel suite once and asserts (a) the suite's built-in
invariant — the interval-registry superset probe beats a linear scan of
1k cached atoms by >= 5x — and (b) no kernel slower than 2x the
committed ``BENCH_smartindex.json`` baseline.  Mirrors the kernelbench
gate in ``test_microbench_components.py``.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

import smartindex_kernels as _sk  # noqa: E402

BASELINE = os.path.join(os.path.dirname(__file__), "BENCH_smartindex.json")


@pytest.fixture(scope="module")
def smartindex_results():
    return _sk.run_suite(repeat=3)


@pytest.mark.smartbench
def test_smartindex_acceptance(smartindex_results):
    assert _sk.acceptance_failures(smartindex_results) == []


@pytest.mark.smartbench
def test_smartindex_baseline_regression(smartindex_results):
    assert os.path.exists(BASELINE), (
        "no committed baseline; run run_smartindex.py --update"
    )
    with open(BASELINE) as fh:
        baseline = json.load(fh)["kernels"]
    assert _sk.regressions(smartindex_results, baseline) == []


@pytest.mark.smartbench
def test_smartindex_baseline_schema():
    with open(BASELINE) as fh:
        doc = json.load(fh)
    assert doc["schema_version"] == 1
    assert set(doc["kernels"]) == set(_sk.KERNELS)
    for metrics in doc["kernels"].values():
        assert metrics["wall_s"] > 0
