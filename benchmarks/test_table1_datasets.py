"""Table I: the experimental datasets.

Paper:

    T1 | 30 billion rows  |  62 TB | 200 fields | storage A
    T2 | 130 billion rows | 200 TB | 200 fields | storage B
    T3 | 10 billion rows  |   7 TB |  57 fields | storage A

We synthesize scaled replicas preserving every structural property —
field counts, the T3 ⊆ T1/T2 schema-subset relation, storage placement,
and the row-count *ratios* (each materialized row stands for ``scale``
production rows, recorded in block metadata).
"""

import pytest

from benchmarks._harness import eval_cluster
from repro.workload.datasets import PAPER_BYTES, PAPER_FIELDS, PAPER_ROWS, DatasetSpec, load_paper_datasets

SPECS = [
    DatasetSpec("T1", 12_000, 200, "storage-a", PAPER_ROWS["T1"], seed=101),
    DatasetSpec("T2", 24_000, 200, "storage-b", PAPER_ROWS["T2"], seed=202),
    DatasetSpec("T3", 6_000, 57, "storage-a", PAPER_ROWS["T3"], seed=303),
]


@pytest.mark.benchmark(group="table1")
def test_table1_datasets(benchmark, figure_report):
    cluster = eval_cluster()

    def build():
        # fresh catalog per round
        for name in list(cluster.catalog.names()):
            cluster.catalog.drop(name)
        return load_paper_datasets(cluster, SPECS, block_rows=4096)

    tables = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = []
    for spec in SPECS:
        table = tables[spec.name]
        rows.append(
            (
                spec.name,
                f"{table.num_rows:,}",
                f"{spec.paper_rows / 1e9:.0f}B",
                f"{table.modeled_rows / 1e9:.0f}B",
                len(table.schema),
                spec.storage,
                f"{table.encoded_bytes / 1e6:.1f} MB",
                f"{table.modeled_bytes / 1e12:.1f} TB",
                f"{PAPER_BYTES[spec.name] / 1e12:.0f} TB",
            )
        )
    from benchmarks.conftest import format_series

    figure_report(
        "Table I: experimental datasets (scaled reproduction)",
        format_series(
            [
                "table", "rows (scaled)", "rows (paper)", "rows (modeled)",
                "fields", "storage", "bytes (scaled)", "bytes (modeled)", "bytes (paper)",
            ],
            rows,
        ),
    )

    # Structural assertions from Table I.
    t1, t2, t3 = tables["T1"], tables["T2"], tables["T3"]
    assert len(t1.schema) == PAPER_FIELDS["T1"] == 200
    assert len(t2.schema) == PAPER_FIELDS["T2"] == 200
    assert len(t3.schema) == PAPER_FIELDS["T3"] == 57
    assert t1.schema == t2.schema  # T1 and T2 share one schema
    assert t3.schema.is_subset_of(t1.schema)  # T3's attributes ⊆ T1's
    # Modeled row counts hit the paper's numbers by construction.
    assert t1.modeled_rows == pytest.approx(PAPER_ROWS["T1"])
    assert t2.modeled_rows == pytest.approx(PAPER_ROWS["T2"])
    assert t3.modeled_rows == pytest.approx(PAPER_ROWS["T3"])
    # Storage placement: T1/T3 on system A, T2 on system B.
    assert all(ref.path.startswith("/hdfs/") for ref in t1.blocks)
    assert all(ref.path.startswith("/hdfs2/") for ref in t2.blocks)
    assert all(ref.path.startswith("/hdfs/") for ref in t3.blocks)
    # Size ordering matches the paper: T2 > T1 > T3.
    assert t2.modeled_bytes > t1.modeled_bytes > t3.modeled_bytes
