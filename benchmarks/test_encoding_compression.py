"""§III-A: the "compression-friendly columnar format", quantified.

Not a numbered figure, but a load-bearing claim: Feisu "organizes data
sets into partitions using a compression-friendly columnar format", and
column-at-a-time storage is what makes the per-column codecs win.  This
benchmark encodes representative T1 columns under every codec and
reports sizes vs. the adaptive :func:`choose_encoding` pick.
"""

import numpy as np
import pytest

from benchmarks.conftest import format_series
from repro.columnar.encoding import (
    DeltaEncoding,
    DictionaryEncoding,
    PlainEncoding,
    RunLengthEncoding,
    choose_encoding,
)
from repro.columnar.schema import DataType
from repro.workload.datasets import DatasetSpec, synthesize


def _columns():
    spec = DatasetSpec("T1", 30_000, 16, "storage-a", 30_000, seed=101)
    schema, columns = synthesize(spec)
    dtypes = {f.name: f.dtype for f in schema}
    interesting = ["ts_hour", "province", "click_count", "user_id", "url", "f000"]
    return [(name, columns[name], dtypes[name]) for name in interesting]


@pytest.mark.benchmark(group="encoding")
def test_encoding_compression_table(benchmark, figure_report):
    data = _columns()

    def encode_all():
        rows = []
        for name, array, dtype in data:
            plain = len(PlainEncoding().encode(array))
            sizes = {"plain": plain}
            if dtype is not DataType.BOOL:
                sizes["rle"] = len(RunLengthEncoding().encode(array))
                sizes["dict"] = len(DictionaryEncoding().encode(array))
            if dtype is DataType.INT64:
                sizes["delta"] = len(DeltaEncoding().encode(array))
            chosen = choose_encoding(array, dtype)
            rows.append((name, dtype.value, sizes, chosen.name, len(chosen.encode(array))))
        return rows

    rows = benchmark.pedantic(encode_all, rounds=1, iterations=1)

    table = []
    for name, dtype, sizes, chosen, chosen_size in rows:
        plain = sizes["plain"]
        table.append(
            (
                name,
                dtype,
                f"{plain / 1024:.0f} KB",
                chosen,
                f"{chosen_size / 1024:.0f} KB",
                f"{plain / max(chosen_size, 1):.1f}x",
            )
        )
    figure_report(
        "Columnar compression: adaptive codec choice per T1 column",
        format_series(
            ["column", "type", "plain", "chosen codec", "encoded", "ratio"], table
        ),
    )

    by_name = {name: (sizes, chosen, chosen_size) for name, _d, sizes, chosen, chosen_size in rows}
    # The sorted timestamp column compresses dramatically (RLE when runs
    # dominate, delta when increments do — both an order of magnitude).
    sizes, chosen, chosen_size = by_name["ts_hour"]
    assert chosen in ("rle", "delta")
    assert chosen_size < sizes["plain"] / 10
    # A strictly increasing unique sequence is where delta is unbeatable.
    seq = np.arange(500_000, 530_000, dtype=np.int64)
    assert choose_encoding(seq, DataType.INT64).name == "delta"
    # Low-cardinality categoricals beat plain by a wide margin.
    _s, chosen_p, size_p = by_name["province"]
    assert chosen_p in ("dictionary", "rle")
    assert size_p < by_name["province"][0]["plain"] / 2
    # The adaptive choice never loses to plain (within estimate noise).
    for name, _dtype, sizes, _chosen, chosen_size in rows:
        assert chosen_size <= sizes["plain"] * 1.05, name
