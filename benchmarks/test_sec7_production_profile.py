"""§VII: online-service observations, reproduced on the simulator.

The paper reports from two years of production:

* ~150 active users doing rapid prototyping and product analytics,
  up to six thousand queries a day;
* "More than 93% queries focus on those data sets [that] are less than
  200 TB.  And, their response times are always below 20 seconds";
* most queries are simple columnar filters + statistics, so predicate
  similarity is exploitable.

We run one scaled "day" of the drill-down workload through a warm
cluster and report the same service-level profile.
"""

import pytest

from benchmarks._harness import eval_cluster, load_t1
from benchmarks.conftest import format_series
from repro import LeafConfig
from repro.workload.datasets import log_schema
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


@pytest.mark.benchmark(group="sec7")
def test_sec7_production_profile(benchmark, figure_report):
    cluster = eval_cluster(LeafConfig(enable_smartindex=True))
    table = load_t1(cluster, rows=20_000, num_fields=12, block_rows=2048)

    gen = WorkloadGenerator(
        "T1",
        log_schema(12),
        WorkloadConfig(num_users=15, think_time_s=500.0, seed=77, aggregate_fraction=0.8),
        value_ranges={"click_count": (0, 50), "position": (1, 10), "user_id": (0, 5000)},
        contains_values={"url": [f"site{i}" for i in range(5)]},
    )
    trace = gen.generate(6 * 3600.0)[:150]  # one scaled working day

    def run_day():
        times = []
        for q in trace:
            result = cluster.query(q.sql)
            times.append(result.stats["response_time_s"])
        return times

    times = benchmark.pedantic(run_day, rounds=1, iterations=1)
    times_sorted = sorted(times)
    p50 = times_sorted[len(times) // 2]
    p95 = times_sorted[int(len(times) * 0.95)]
    under_20s = sum(t < 20.0 for t in times) / len(times)
    stats = cluster.aggregate_index_stats()
    hit_rate = (stats.hits + stats.complement_hits) / max(stats.lookups, 1)

    figure_report(
        "Sec VII: one scaled production day",
        format_series(
            ["metric", "value"],
            [
                ("queries executed", len(times)),
                ("distinct users", len({q.user for q in trace})),
                ("median response (s)", p50),
                ("p95 response (s)", p95),
                ("queries under 20 s", f"{under_20s:.1%}"),
                ("dataset modeled size (TB)", table.modeled_bytes / 1e12),
                ("SmartIndex hit rate", f"{hit_rate:.1%}"),
            ],
        ),
    )

    # Paper's service-level observation: response times below 20 s for
    # the dominant (sub-200 TB) query class.
    assert under_20s > 0.93
    assert p95 < 20.0
    # The workload's similarity is high enough to drive the index.
    assert hit_rate > 0.3
