"""Ablations over Feisu's design choices (DESIGN.md §3).

These go beyond the paper's own plots to quantify the individual design
decisions §IV/§V call out: the 72 h index TTL, index compression, the
locality-first scheduler, identical-task reuse in the job manager, and
the SSD cache's manual-preference admission (the paper's 80 %-miss
observation).
"""

import pytest

from benchmarks._harness import eval_cluster, load_t1, run_stream
from benchmarks.conftest import format_series
from repro import FeisuCluster, FeisuConfig, LeafConfig
from repro.workload.generator import scan_query_stream


def _queries(count=120, seed=91, reuse=0.8):
    return scan_query_stream(
        "T1",
        ["click_count", "position", "user_id"],
        value_range=(0, 40),
        count=count,
        seed=seed,
        pool_size=20,
        reuse_probability=reuse,
    )


@pytest.mark.benchmark(group="ablations")
def test_ablation_index_ttl(benchmark, figure_report):
    """§IV-C-2 sets TTL = 72 h 'based on our experiences'.  A too-short
    TTL forfeits hits; an unbounded one only costs memory."""

    def run(ttl_s):
        cluster = eval_cluster(LeafConfig(enable_smartindex=True, index_ttl_s=ttl_s))
        load_t1(cluster)
        # Space queries 30 simulated seconds apart so TTLs in that range bite.
        run_stream(cluster, _queries(count=90), inter_query_gap_s=30.0)
        stats = cluster.aggregate_index_stats()
        hit = (stats.hits + stats.complement_hits) / max(stats.lookups, 1)
        return hit, stats.evictions_ttl

    def sweep():
        return [(ttl, *run(ttl)) for ttl in (10.0, 300.0, 72 * 3600.0)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    figure_report(
        "Ablation: SmartIndex TTL",
        format_series(
            ["TTL (s)", "hit rate", "TTL evictions"],
            [(f"{ttl:g}", f"{hit:.1%}", ev) for ttl, hit, ev in rows],
        ),
    )
    hits = [h for _t, h, _e in rows]
    assert hits[0] < hits[-1]  # starving TTL loses hits
    assert rows[0][2] > rows[-1][2]  # and shows up as TTL evictions


@pytest.mark.benchmark(group="ablations")
def test_ablation_index_compression(benchmark, figure_report):
    """'Feisu can compress the index to improve memory efficiency.'"""

    def run(compress):
        cluster = eval_cluster(LeafConfig(enable_smartindex=True, index_compress=compress))
        load_t1(cluster)
        results = run_stream(cluster, _queries())
        return cluster.index_memory_used(), results[-1]["response_time_s"]

    def both():
        return run(True), run(False)

    (mem_c, _), (mem_u, _) = benchmark.pedantic(both, rounds=1, iterations=1)
    figure_report(
        "Ablation: SmartIndex vector compression",
        format_series(
            ["configuration", "index memory (KB)"],
            [("RLE compression", mem_c / 1024), ("uncompressed", mem_u / 1024)],
        ),
    )
    assert mem_c < mem_u  # selective predicates compress well


@pytest.mark.benchmark(group="ablations")
def test_ablation_locality_scheduling(benchmark, figure_report):
    """§III-B: 'Feisu always schedules a task to the leaf server that
    contains the data if the server [is] available.'  Random placement
    pays network transfer on nearly every block."""

    def run(locality):
        cluster = eval_cluster(LeafConfig(enable_smartindex=False), locality_aware=locality)
        load_t1(cluster)
        stats = run_stream(cluster, _queries(count=40, reuse=0.0))
        mean = sum(s["response_time_s"] for s in stats) / len(stats)
        return mean, cluster.scheduler.placements_local, cluster.scheduler.placements_remote

    def both():
        return run(True), run(False)

    (t_loc, loc_l, loc_r), (t_rand, rand_l, rand_r) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    figure_report(
        "Ablation: locality-aware vs. random scheduling",
        format_series(
            ["policy", "mean response (s)", "local placements", "remote placements"],
            [
                ("locality-aware", t_loc, loc_l, loc_r),
                ("round-robin", t_rand, rand_l, rand_r),
            ],
        ),
    )
    assert loc_r == 0  # with replicas on 3 nodes, local placement always exists
    assert rand_r > 0
    assert t_loc < t_rand


@pytest.mark.benchmark(group="ablations")
def test_ablation_identical_task_reuse(benchmark, figure_report):
    """§III-C: the job manager 'tries to reuse other running job's task
    result if tasks are identical'.  N concurrent identical reports cost
    one execution, not N."""

    def run():
        cluster = eval_cluster(LeafConfig(enable_smartindex=False))
        load_t1(cluster)
        sql = "SELECT COUNT(*) FROM T1 WHERE click_count > 3"
        jobs = [cluster.submit(sql) for _ in range(5)]
        for _job, done in jobs:
            cluster.sim.run_until_complete(done)
        executed = sum(leaf.tasks_completed for leaf in cluster.leaves)
        reused = sum(job.stats.tasks_reused for job, _ in jobs)
        total = sum(job.stats.tasks_total for job, _ in jobs)
        assert all(job.result is not None for job, _ in jobs)
        return executed, reused, total

    executed, reused, total = benchmark.pedantic(run, rounds=1, iterations=1)
    figure_report(
        "Ablation: identical-task reuse across concurrent jobs",
        format_series(
            ["metric", "count"],
            [
                ("tasks across 5 identical jobs", total),
                ("tasks actually executed", executed),
                ("tasks served by reuse", reused),
            ],
        ),
    )
    assert executed <= total / 5 + 2  # one physical execution (± backups)
    assert reused == total - total // 5


@pytest.mark.benchmark(group="ablations")
def test_ablation_ssd_admission(benchmark, figure_report):
    """§IV-B: naive LRU admission thrashes under ad-hoc queries ('more
    than 80% ... cache miss rates'); manual preferences fix it for the
    business-critical subset."""

    def run(admit_all: bool, prefer_hot: bool):
        cluster = eval_cluster(
            LeafConfig(
                enable_smartindex=False,
                enable_ssd_cache=True,
                ssd_cache_bytes=96 * 1024,  # scaled-down SSD: ~ a few blocks
                ssd_admit_preferred_only=not admit_all,
            )
        )
        load_t1(cluster, rows=24_000, block_rows=1024)
        if prefer_hot:
            hot_prefix = "/hdfs/tables/T1/T1.b0"
            for leaf in cluster.leaves:
                leaf.ssd_cache.prefer(hot_prefix)
        run_stream(cluster, _queries(count=60, reuse=0.3, seed=13))
        hits = sum(lf.ssd_cache.hits for lf in cluster.leaves)
        misses = sum(lf.ssd_cache.misses for lf in cluster.leaves)
        return misses / max(hits + misses, 1)

    def both():
        return run(admit_all=True, prefer_hot=False), run(admit_all=False, prefer_hot=True)

    naive_miss, preferred_miss = benchmark.pedantic(both, rounds=1, iterations=1)
    figure_report(
        "Ablation: SSD cache admission (the 80%-miss observation)",
        format_series(
            ["policy", "miss ratio"],
            [
                ("LRU, admit everything", f"{naive_miss:.1%}"),
                ("manual preferences only", f"{preferred_miss:.1%}"),
            ],
        ),
    )
    # The paper's observation: ad-hoc workloads thrash a naive SSD cache.
    assert naive_miss > 0.6


@pytest.mark.benchmark(group="ablations")
def test_ablation_reuse_window(benchmark, figure_report):
    """Extending task-result reuse from running jobs (the paper's
    behaviour) to recently *finished* ones: sequential repeats of the
    same report then cost nothing at all."""

    def run(window_s):
        cluster = FeisuCluster(
            FeisuConfig(
                datacenters=1,
                racks_per_datacenter=2,
                nodes_per_rack=8,
                leaf=LeafConfig(enable_smartindex=False),
                reuse_completed_window_s=window_s,
            )
        )
        load_t1(cluster)
        sql = "SELECT COUNT(*) FROM T1 WHERE click_count > 3"
        for _ in range(4):
            cluster.query(sql)
        executed = sum(leaf.tasks_completed for leaf in cluster.leaves)
        reused = cluster.master.job_manager.reuse_hits_completed
        return executed, reused

    def both():
        return run(0.0), run(3600.0)

    (exec_off, reuse_off), (exec_on, reuse_on) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    figure_report(
        "Ablation: completed-task reuse window",
        format_series(
            ["configuration", "tasks executed", "completed-task reuse hits"],
            [
                ("running-jobs only (paper)", exec_off, reuse_off),
                ("1h completed window", exec_on, reuse_on),
            ],
        ),
    )
    assert reuse_off == 0
    assert reuse_on > 0
    assert exec_on < exec_off


def _drilldown_queries():
    """A Fig-5-style trial-and-error session: each column is probed with
    a widening-then-tightening bound, so consecutive predicates differ
    in value (no exact-key reuse) but each implies an earlier one."""
    queries = []
    for lo in range(2, 17):
        queries.append(f"SELECT COUNT(*) FROM T1 WHERE click_count > {lo}")
    for hi in range(10, 2, -1):
        queries.append(f"SELECT COUNT(*) FROM T1 WHERE position < {hi}")
    for lo in range(100, 2100, 200):
        queries.append(f"SELECT COUNT(*) FROM T1 WHERE user_id > {lo}")
    # Point lookups at already-bracketed values: once `>= v` and `> v`
    # are both cached, `= v` derives as GE &~ GT without touching data.
    for v in (4, 6, 8):
        queries.append(f"SELECT COUNT(*) FROM T1 WHERE click_count >= {v}")
        queries.append(f"SELECT COUNT(*) FROM T1 WHERE click_count = {v}")
    return queries


@pytest.mark.benchmark(group="ablations")
def test_ablation_smartindex_subsumption(benchmark, figure_report):
    """S49 semantic probing: exact-key caching gets zero hits on a
    drill-down workload whose predicate values never repeat, while the
    semantic layer answers every tightened bound from the cached wider
    one — derived bitmaps when possible, candidate-mask residual scans
    (fractional I/O) otherwise."""

    def run(semantic: bool):
        cluster = eval_cluster(
            LeafConfig(enable_smartindex=True, index_semantic=semantic)
        )
        load_t1(cluster)
        stats = run_stream(cluster, _drilldown_queries())
        mean = sum(s["response_time_s"] for s in stats) / len(stats)
        return mean, cluster.aggregate_index_stats()

    def both():
        return run(False), run(True)

    (t_exact, s_exact), (t_sem, s_sem) = benchmark.pedantic(both, rounds=1, iterations=1)
    figure_report(
        "Ablation: SmartIndex subsumption (semantic vs exact-only)",
        format_series(
            ["configuration", "mean response (s)", "subsumption hits", "residual hits"],
            [
                ("exact/complement only", t_exact, s_exact.subsumption_hits, s_exact.residual_hits),
                ("semantic probing", t_sem, s_sem.subsumption_hits, s_sem.residual_hits),
            ],
        ),
    )
    # Values never repeat, so the exact-key cache contributes nothing...
    assert s_exact.subsumption_hits == 0 and s_exact.residual_hits == 0
    # ...while the semantic layer serves the same stream mostly from cache.
    assert s_sem.residual_hits > 0
    assert s_sem.subsumption_hits > 0
    assert t_sem <= 0.75 * t_exact  # >= 25% mean-latency win (ISSUE 4)


@pytest.mark.benchmark(group="ablations")
def test_ablation_tiering(benchmark, figure_report):
    """S50 heat tiering: a hot subset of an archival Fatman table is
    scanned over and over.  Manual SSD preferences (§IV-B's answer)
    cannot absorb blocks bigger than the cache, so every scan keeps
    paying Fatman's 0.25 s first byte at half bandwidth on one task slot
    per node; the tiering daemon instead promotes the hot blocks into
    DistributedFS replicas near their readers."""
    import numpy as np

    from repro import DataType, Schema

    def run(tiered: bool):
        cluster = eval_cluster(
            LeafConfig(
                enable_smartindex=False,
                enable_ssd_cache=True,
                ssd_cache_bytes=16 * 1024,  # half a block: pinning cannot help
                ssd_admit_preferred_only=True,
                enable_tiering=tiered,
            )
        )
        rng = np.random.default_rng(23)
        block_rows = 8192
        n = block_rows * 6
        # `seq` is sorted, so block ranges partition it and `seq < k`
        # prunes to a stable hot prefix of the table's blocks.
        cluster.load_table(
            "F",
            Schema.of(seq=DataType.INT64, clicks=DataType.INT64),
            {"seq": np.arange(n), "clicks": rng.integers(0, 100, n)},
            storage="fatman",
            block_rows=block_rows,
        )
        if not tiered:
            # The paper's manual operator interference, applied perfectly:
            # every leaf pins the whole hot table up front.
            for leaf in cluster.leaves:
                leaf.ssd_cache.prefer("/ffs/tables/F")
        stats = run_stream(
            cluster,
            [f"SELECT SUM(clicks) AS s FROM F WHERE seq < {block_rows * 3}"] * 30,
            inter_query_gap_s=30.0,  # let the daemon cycle between queries
        )
        mean = sum(s["response_time_s"] for s in stats) / len(stats)
        promoted = len(cluster.tiering.promoted_paths()) if cluster.tiering else 0
        return mean, promoted

    def both():
        return run(False), run(True)

    (t_manual, _), (t_tier, promoted) = benchmark.pedantic(both, rounds=1, iterations=1)
    figure_report(
        "Ablation: heat-based tiering vs manual SSD preferences",
        format_series(
            ["configuration", "mean response (s)", "blocks promoted"],
            [
                ("manual preferences (paper)", t_manual, 0),
                ("tiering daemon", t_tier, promoted),
            ],
        ),
    )
    assert promoted > 0  # the hot prefix was promoted...
    assert promoted < 6  # ...but not the cold remainder of the table
    assert t_tier <= 0.75 * t_manual  # >= 25% mean-latency win (ISSUE 5)


def _degrade_busiest_holder(cluster, table, factor: float):
    """Slow down the leaf holding the most block replicas, so the
    locality scheduler is guaranteed to route work onto the straggler."""
    from collections import Counter

    holders = Counter()
    for ref in table.blocks:
        system, inner = cluster.router.resolve(ref.path)
        for addr in system.locations(inner):
            holders[addr] += 1
    busiest = holders.most_common(1)[0][0]
    leaf = cluster.leaf_at(busiest)
    leaf.slow_down(factor)
    return leaf


@pytest.mark.benchmark(group="ablations")
def test_ablation_backup_tasks_straggler(benchmark, figure_report):
    """§III-C backup tasks: speculative copies of straggling tasks.

    One leaf is massively degraded (container interference, §V-B); with
    backups the job escapes the straggler's long tail, without them the
    job waits for it."""

    def run(enable_backup: bool):
        cluster = eval_cluster(LeafConfig(enable_smartindex=False))
        table = load_t1(cluster)
        _degrade_busiest_holder(cluster, table, 2000.0)
        from repro.cluster.jobs import JobOptions

        job = cluster.query_job(
            "SELECT SUM(click_count) FROM T1 WHERE position >= 1",
            options=JobOptions(enable_backup=enable_backup),
        )
        return job.stats.response_time_s, job.stats.backups_launched

    def both():
        return run(True), run(False)

    (t_with, backups), (t_without, _nb) = benchmark.pedantic(both, rounds=1, iterations=1)
    figure_report(
        "Ablation: backup tasks under a straggler",
        format_series(
            ["configuration", "response (s)", "backups launched"],
            [
                ("backups enabled", t_with, backups),
                ("backups disabled", t_without, 0),
            ],
        ),
    )
    assert backups > 0
    assert t_with < t_without / 1.5  # speculative execution pays off
