"""Fig 9(b): SmartIndex vs. B-tree index.

Paper setup: the same random-parameter scan workload, with a
conventional B-tree index implemented inside Feisu as the baseline.
Paper finding: "The query performance when using B-tree index remains
almost constant as more queries are processed by Feisu, but it is not as
effective as SmartIndex because SmartIndex not only reduces I/O but also
the computation execution time for predicate evaluation."

Our B+ tree (``repro.index.btree``) is bulk-built per (block, column)
ahead of the query clock; it answers ordered comparisons but not
CONTAINS, and still pays per-match materialization — hence its flat but
beatable curve.
"""

import pytest

from benchmarks._harness import bucket_means, eval_cluster, load_t1, run_stream
from benchmarks.conftest import format_series
from repro import LeafConfig
from repro.workload.generator import scan_query_stream

N_QUERIES = 320
BUCKET = 40


def _queries():
    return scan_query_stream(
        "T1",
        ["click_count", "position", "user_id"],
        value_range=(0, 40),
        count=N_QUERIES,
        seed=23,
        contains_column="url",
        contains_values=[f"site{i}" for i in range(5)],
        pool_size=24,
        reuse_probability=0.8,
    )


def _run(leaf: LeafConfig):
    cluster = eval_cluster(leaf)
    load_t1(cluster, rows=20_000, num_fields=12, block_rows=2048)
    stats = run_stream(cluster, _queries())
    return [s["response_time_s"] for s in stats]


@pytest.mark.benchmark(group="fig9b")
def test_fig9b_smartindex_vs_btree(benchmark, figure_report):
    def run_both():
        smart = _run(LeafConfig(enable_smartindex=True, enable_btree=False))
        btree = _run(LeafConfig(enable_smartindex=False, enable_btree=True))
        return smart, btree

    smart, btree = benchmark.pedantic(run_both, rounds=1, iterations=1)
    s = bucket_means(smart, BUCKET)
    b = bucket_means(btree, BUCKET)
    figure_report(
        "Fig 9(b): SmartIndex vs. B-tree over the scan stream",
        format_series(
            ["queries processed", "B-tree (s)", "SmartIndex (s)", "SmartIndex advantage"],
            [
                (f"{(i + 1) * BUCKET}", b_s, s_s, b_s / s_s)
                for i, (s_s, b_s) in enumerate(zip(s, b))
            ],
        ),
    )

    # Paper shape:
    # (1) B-tree performance is almost constant over the stream;
    assert max(b) / min(b) < 1.6
    # (2) SmartIndex improves with processed queries ...
    assert s[-1] < s[0]
    # (3) ... and ends up faster than the B-tree.
    assert s[-1] < b[-1]
    # (4) early on, before the cache warms, B-tree is competitive (its
    #     advantage over cold SmartIndex is what makes the paper's plot
    #     interesting: the lines cross).
    assert b[0] < s[0] * 1.5
