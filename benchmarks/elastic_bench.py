"""Elastic rebalancing ablation bench (S55).

Twin clusters with the *same* node count run the same hot-domain
aggregate workload over a table deliberately loaded at replication 1
from a single writer node — every block piles onto one server, the
worst-case hot domain a static cluster can do nothing about.  The
elastic twin's warmup feeds the heat tracker; forced rebalancer cycles
then split the hot shard, spread the hot blocks' replicas onto idle
nodes, and migrate bytes off the overloaded server; the measured pass
reruns the workload on both twins.  The gate demands:

* identical rows on both twins for every query (placement moves bytes,
  never answers);
* at least ``MIN_MEAN_IMPROVEMENT`` mean simulated-latency win for the
  rebalanced twin;
* the rebalancer actually acted (>= 1 shard split, >= 1 replica spread);
* the membership exercise — one node joined, one replica-holding node
  decommissioned — ends with zero blocks stranded on the departed node
  and the workload still answering identically.

SmartIndex is disabled on BOTH twins so the comparison is pure
placement; tiering and layouts stay off for the same reason.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro import DataType, FeisuCluster, FeisuConfig, Schema
from repro.cluster.elastic import ElasticConfig
from repro.cluster.node import LeafConfig
from repro.sim.netmodel import NodeAddress

#: Acceptance bar: rebalancing must cut mean simulated latency by >= 25%
#: on the hot-domain ablation.
MIN_MEAN_IMPROVEMENT = 0.25
#: Distinct queries in the hot-domain workload.
NUM_QUERIES = 6

_ROWS = 24_000
_BLOCK_ROWS = 3_000
_SCALE_FACTOR = 1_500
#: Every block of T lands on this node (replication 1, single writer).
_HOT_NODE = NodeAddress(0, 0, 1)

FACT_SCHEMA = Schema.of(k=DataType.INT64, v=DataType.FLOAT64, w=DataType.INT64)

#: Hot-domain, order-deterministic workload: every query scans T, so all
#: the heat lands on one storage system's namespace.
QUERIES: List[str] = [
    "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM T GROUP BY k ORDER BY k",
    "SELECT k, SUM(v) AS s FROM T WHERE w < 500 GROUP BY k ORDER BY k",
    "SELECT COUNT(*) AS n FROM T WHERE w >= 250 AND w < 750",
    "SELECT k, AVG(v) AS a FROM T WHERE w >= 100 GROUP BY k ORDER BY k",
    "SELECT k, COUNT(*) AS n FROM T WHERE w < 900 GROUP BY k ORDER BY k",
    "SELECT k, SUM(v) AS s, COUNT(*) AS n FROM T GROUP BY k ORDER BY k",
]

#: Forced rebalancer cycles between warmup and the measured pass.
_CYCLES = 3


def elastic_config() -> ElasticConfig:
    return ElasticConfig(
        rebalance_period_s=1e9,  # cycles are forced, not timed
        autoscale=False,
        spread_heat_threshold=1.0,
        spread_max_extra=3,
        max_spreads_per_cycle=16,
        max_migrations_per_cycle=4,
    )


def _dataset():
    import numpy as np

    rng = np.random.default_rng(17)
    return {
        "k": rng.integers(0, 16, _ROWS),
        "v": rng.random(_ROWS),
        "w": rng.integers(0, 1000, _ROWS),
    }


def _twin(elastic: bool) -> FeisuCluster:
    cluster = FeisuCluster(
        FeisuConfig(
            datacenters=1,
            racks_per_datacenter=2,
            nodes_per_rack=4,
            leaf=LeafConfig(enable_smartindex=False),
            enable_elastic=elastic,
            elastic=elastic_config() if elastic else None,
        )
    )
    # The hot-domain setup: one copy of every block, all on one node.
    cluster.storage_a.replication = 1
    cluster.load_table(
        "T",
        FACT_SCHEMA,
        _dataset(),
        storage="storage-a",
        block_rows=_BLOCK_ROWS,
        scale_factor=_SCALE_FACTOR,
        node=_HOT_NODE,
    )
    return cluster


def _rows_match(rows_a: List, rows_b: List) -> bool:
    if len(rows_a) != len(rows_b):
        return False
    for row_a, row_b in zip(rows_a, rows_b):
        if len(row_a) != len(row_b):
            return False
        for a, b in zip(row_a, row_b):
            if isinstance(a, float) and isinstance(b, float):
                if math.isnan(a) and math.isnan(b):
                    continue
                if not math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9):
                    return False
            elif a != b:
                return False
    return True


def run_suite() -> Dict[str, Dict[str, float]]:
    static = _twin(False)
    elastic = _twin(True)

    # Warmup on both twins (equalizes device/slot state); on the elastic
    # twin it also charges the heat tracker with the hot domain.
    for cluster in (static, elastic):
        for sql in QUERIES:
            cluster.query(sql)
    reb = elastic.elastic.rebalancer
    for _ in range(_CYCLES):
        elastic.sim.run_until_complete(elastic.sim.process(reb.run_once()))

    static_latencies: List[float] = []
    elastic_latencies: List[float] = []
    improvements: List[float] = []
    rows_identical = True
    for sql in QUERIES:
        rs = static.query(sql)
        re = elastic.query(sql)
        rows_identical = rows_identical and _rows_match(rs.rows(), re.rows())
        s_lat = rs.stats["response_time_s"]
        e_lat = re.stats["response_time_s"]
        static_latencies.append(s_lat)
        elastic_latencies.append(e_lat)
        improvements.append(1.0 - e_lat / s_lat)

    # Membership exercise on the elastic twin: join a fresh node, then
    # decommission the original hot node out from under its replicas.
    mgr = elastic.elastic
    joined = elastic.join_node(datacenter=0, rack=0)
    hot_leaf = elastic.leaf_at(_HOT_NODE)
    held_before = len(elastic.storage_a.held_paths(_HOT_NODE))
    done = elastic.decommission(hot_leaf.worker_id)
    elastic.sim.run_until_complete(done, limit=elastic.sim.now + 3600.0)
    stranded = sum(
        1
        for system in elastic.router.systems()
        for path in system.list_paths()
        for node in system.locations(path)
        if node in mgr.departed
    )
    post_identical = True
    for sql in QUERIES:
        rs = static.query(sql)
        re = elastic.query(sql)
        post_identical = post_identical and _rows_match(rs.rows(), re.rows())
    assert joined.alive  # the newcomer serves through the whole exercise

    n = len(QUERIES)
    return {
        "elastic_ablation": {
            "queries": float(n),
            "static_mean_latency_s": sum(static_latencies) / n,
            "elastic_mean_latency_s": sum(elastic_latencies) / n,
            "mean_improvement": sum(improvements) / n,
            "min_improvement": min(improvements),
            "rows_identical": 1.0 if rows_identical else 0.0,
            "shard_splits": float(reb.stats.splits),
            "replica_spreads": float(reb.stats.spreads),
            "migrations": float(reb.stats.migrations),
            "moved_bytes": float(reb.stats.moved_bytes),
        },
        "membership": {
            "joins": float(mgr.joins),
            "decommissions": float(mgr.decommissions),
            "evacuated_replicas_held_before": float(held_before),
            "evacuations": float(reb.stats.evacuations),
            "stranded_on_departed": float(stranded),
            "post_change_rows_identical": 1.0 if post_identical else 0.0,
        },
    }


def acceptance_failures(results: Dict[str, Dict[str, float]]) -> List[str]:
    """The S55 acceptance bar, independent of any baseline."""
    r = results["elastic_ablation"]
    m = results["membership"]
    problems: List[str] = []
    if r["rows_identical"] != 1.0:
        problems.append("elastic twin rows diverge from the static twin's rows")
    if r["shard_splits"] < 1.0:
        problems.append("rebalancer split no hot shard")
    if r["replica_spreads"] < 1.0:
        problems.append("rebalancer spread no hot replica — placement never widened")
    if r["mean_improvement"] < MIN_MEAN_IMPROVEMENT:
        problems.append(
            f"mean latency improvement {r['mean_improvement']:.1%} "
            f"< required {MIN_MEAN_IMPROVEMENT:.0%}"
        )
    if m["joins"] < 1.0 or m["decommissions"] < 1.0:
        problems.append("membership exercise did not both join and decommission")
    if m["stranded_on_departed"] != 0.0:
        problems.append(
            f"{m['stranded_on_departed']:.0f} replica(s) stranded on a departed node"
        )
    if m["post_change_rows_identical"] != 1.0:
        problems.append("rows diverged after the join/decommission exercise")
    return problems


def regressions(
    results: Dict[str, Dict[str, float]], baseline: Dict[str, Dict[str, float]]
) -> List[str]:
    """Drift vs. the committed baseline (simulated-clock metrics only —
    everything here is deterministic)."""
    r = results["elastic_ablation"]
    b = baseline["elastic_ablation"]
    problems: List[str] = []
    if r["mean_improvement"] < b["mean_improvement"] - 0.02:
        problems.append(
            f"mean improvement regressed: {r['mean_improvement']:.1%} vs "
            f"baseline {b['mean_improvement']:.1%}"
        )
    if r["elastic_mean_latency_s"] > b["elastic_mean_latency_s"] * 1.05:
        problems.append(
            f"elastic mean latency regressed: {r['elastic_mean_latency_s']:.4f}s "
            f"vs baseline {b['elastic_mean_latency_s']:.4f}s"
        )
    if r["replica_spreads"] < b["replica_spreads"]:
        problems.append(
            f"replica spreads dropped: {r['replica_spreads']:.0f} vs "
            f"baseline {b['replica_spreads']:.0f}"
        )
    return problems
