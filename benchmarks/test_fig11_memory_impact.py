"""Fig 11: the impact of index-memory size on SmartIndex.

Paper setup: the multi-storage scan workload, varying the per-leaf
memory reserved for SmartIndex.  Two panels:

* 11(a) — index miss ratio falls as memory grows;
* 11(b) — throughput rises with memory, and "the performance of Feisu
  with 512 MB memory is comparable to that with 2 GB" — the knee that
  justifies the production default of 512 MB.

Our vectors are scaled down with the data, so the sweep covers the same
*pressure* range (from "evicting constantly" to "everything fits"):
budgets are fractions of the total index footprint the workload builds.
"""

import pytest

from benchmarks._harness import eval_cluster, load_t1, run_stream
from benchmarks.conftest import format_series
from repro import LeafConfig
from repro.workload.generator import scan_query_stream

N_QUERIES = 180

#: Per-leaf index budgets, bytes.  The workload generates ~40-60 KB of
#: entries per leaf, so the small end thrashes and the top end fits —
#: mirroring the paper's 64 MB → 2 GB sweep at production scale.
BUDGETS = [
    ("64MB-equiv", 2 * 1024),
    ("128MB-equiv", 6 * 1024),
    ("256MB-equiv", 16 * 1024),
    ("512MB-equiv", 48 * 1024),
    ("2GB-equiv", 192 * 1024),
]


def _queries():
    return scan_query_stream(
        "T1",
        ["click_count", "position", "user_id"],
        value_range=(0, 40),
        count=N_QUERIES,
        seed=53,
        contains_column="url",
        contains_values=[f"site{i}" for i in range(5)],
        pool_size=32,
        reuse_probability=0.8,
    )


def _run(budget_bytes: int):
    cluster = eval_cluster(
        LeafConfig(enable_smartindex=True, index_memory_bytes=budget_bytes)
    )
    load_t1(cluster, rows=20_000, num_fields=12, block_rows=1024)
    start = cluster.sim.now
    run_stream(cluster, _queries())
    elapsed = cluster.sim.now - start
    stats = cluster.aggregate_index_stats()
    throughput = N_QUERIES / elapsed
    return stats.miss_ratio(), throughput


@pytest.mark.benchmark(group="fig11")
def test_fig11_memory_impact(benchmark, figure_report):
    def sweep():
        return [(label, *_run(budget)) for label, budget in BUDGETS]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    figure_report(
        "Fig 11: SmartIndex memory sweep — (a) miss ratio, (b) throughput",
        format_series(
            ["memory", "miss ratio", "throughput (queries/s)"],
            [(label, miss, thr) for label, miss, thr in rows],
        ),
    )

    misses = [m for _l, m, _t in rows]
    throughputs = [t for _l, _m, t in rows]
    # 11(a): more memory, fewer misses (weakly monotone, strict overall).
    assert all(a >= b - 0.02 for a, b in zip(misses, misses[1:]))
    assert misses[0] > misses[-1]
    # 11(b): more memory, more throughput; strict gain from the floor.
    assert throughputs[-1] > throughputs[0] * 1.2
    # The paper's knee: 512 MB performs comparably to 2 GB.
    assert throughputs[-2] == pytest.approx(throughputs[-1], rel=0.12)
    assert misses[-2] == pytest.approx(misses[-1], abs=0.06)
