"""Adaptive misestimate-ablation gate (S53).

Opt-in gate: ``pytest -m adaptivebench benchmarks``.  Runs the
skewed-join workload — whose CONTAINS predicate the static planner
misestimates by ~6x — on frozen vs. adaptive twins and asserts (a) the
S53 acceptance bar — identical rows, every query re-planned, modeled IO
conserved, mean simulated latency cut by >= 25% — and (b) no improvement
drift past the committed ``BENCH_adaptive.json`` baseline.  Mirrors the
gatewaybench gate.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

import adaptive_bench as _ab  # noqa: E402

BASELINE = os.path.join(os.path.dirname(__file__), "BENCH_adaptive.json")


@pytest.fixture(scope="module")
def adaptive_results():
    return _ab.run_suite()


@pytest.mark.adaptivebench
def test_adaptive_acceptance(adaptive_results):
    assert _ab.acceptance_failures(adaptive_results) == []


@pytest.mark.adaptivebench
def test_adaptive_baseline_regression(adaptive_results):
    assert os.path.exists(BASELINE), (
        "no committed baseline; run run_adaptive.py --update"
    )
    with open(BASELINE) as fh:
        baseline = json.load(fh)["runs"]
    assert _ab.regressions(adaptive_results, baseline) == []


@pytest.mark.adaptivebench
def test_adaptive_baseline_schema():
    with open(BASELINE) as fh:
        doc = json.load(fh)
    assert doc["schema_version"] == 1
    runs = doc["runs"]
    assert set(runs) == {"misestimate_ablation"}
    r = runs["misestimate_ablation"]
    assert r["queries"] == _ab.NUM_QUERIES
    assert r["rows_identical"] == 1.0
    assert r["replanned_queries"] == r["queries"]
    assert r["mean_improvement"] >= _ab.MIN_MEAN_IMPROVEMENT
    assert r["io_ratio_max"] <= _ab.MAX_IO_RATIO
