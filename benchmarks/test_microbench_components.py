"""Wall-clock microbenchmarks of the hot code paths.

Unlike the figure reproductions (whose latencies are *simulated*), these
measure the reproduction's own Python performance with pytest-benchmark's
standard timing loop: SQL front-end throughput, CNF conversion, block
encode/decode, SmartIndex probing, and single-block execution.  Useful
for catching performance regressions in the library itself.
"""

import numpy as np
import pytest

from repro.columnar.block import Block
from repro.columnar.schema import DataType, Schema
from repro.engine.executor import execute_scan_task
from repro.index.smartindex import SmartIndexManager
from repro.planner.cnf import to_cnf
from repro.planner.physical import build_plan
from repro.sql.analyzer import analyze
from repro.sql.parser import parse
from repro.columnar.table import Catalog, Table

SQL = (
    "SELECT c2, COUNT(*) AS n, SUM(clicks) AS s FROM T "
    "WHERE (c1 > 10 AND c1 <= 90) OR url CONTAINS 'site3' "
    "GROUP BY c2 HAVING COUNT(*) > 5 ORDER BY n DESC LIMIT 10"
)

N = 8192


def _catalog_and_block():
    rng = np.random.default_rng(0)
    schema = Schema.of(
        c1=DataType.INT64, c2=DataType.INT64, url=DataType.STRING, clicks=DataType.FLOAT64
    )
    columns = {
        "c1": rng.integers(0, 100, N),
        "c2": rng.integers(0, 10, N),
        "url": np.array([f"http://site{i % 7}.com/p{i % 11}" for i in range(N)], dtype=object),
        "clicks": rng.random(N),
    }
    block = Block.from_arrays("T.b0", schema, columns)
    from repro.storage.loader import make_block_ref

    ref = make_block_ref(block, "/hdfs/tables/T/T.b0", block.to_bytes())
    table = Table("T", schema, [ref])
    catalog = Catalog()
    catalog.register(table)
    return catalog, block


@pytest.mark.benchmark(group="micro")
def test_micro_parse(benchmark):
    result = benchmark(parse, SQL)
    assert result.limit == 10


@pytest.mark.benchmark(group="micro")
def test_micro_analyze_and_plan(benchmark):
    catalog, _block = _catalog_and_block()

    def plan():
        return build_plan(analyze(parse(SQL), catalog))

    result = benchmark(plan)
    assert result.tasks


@pytest.mark.benchmark(group="micro")
def test_micro_cnf_conversion(benchmark):
    expr = parse(SQL).where

    def convert():
        return to_cnf(expr)

    cnf = benchmark(convert)
    assert cnf.clauses


@pytest.mark.benchmark(group="micro")
def test_micro_block_serialize_round_trip(benchmark):
    _catalog, block = _catalog_and_block()

    def round_trip():
        return Block.from_bytes(block.to_bytes())

    out = benchmark(round_trip)
    assert out.num_rows == N


@pytest.mark.benchmark(group="micro")
def test_micro_scan_task_cold(benchmark):
    catalog, block = _catalog_and_block()
    plan = build_plan(analyze(parse(SQL), catalog))
    task = plan.tasks[0]

    def run():
        return execute_scan_task(task, plan, block, {})

    result = benchmark(run)
    assert result.partial is not None


@pytest.mark.benchmark(group="micro")
def test_micro_scan_task_index_covered(benchmark):
    catalog, block = _catalog_and_block()
    plan = build_plan(analyze(parse(SQL), catalog))
    task = plan.tasks[0]
    mgr = SmartIndexManager()
    execute_scan_task(task, plan, block, {}, index_manager=mgr)  # warm the cache

    def run():
        return execute_scan_task(task, plan, block, {}, index_manager=mgr, now=1.0)

    result = benchmark(run)
    assert result.report.index_full_cover


@pytest.mark.benchmark(group="micro")
def test_micro_index_cover_probe(benchmark):
    catalog, block = _catalog_and_block()
    plan = build_plan(analyze(parse(SQL), catalog))
    mgr = SmartIndexManager()
    execute_scan_task(plan.tasks[0], plan, block, {}, index_manager=mgr)

    def probe():
        return mgr.cover(block.block_id, plan.scan_cnf, now=1.0)

    mask, missing = benchmark(probe)
    assert missing == []


# -- kernel benchmark gate (S46) ------------------------------------------
# Opt-in wall-clock gate: `pytest -m kernelbench benchmarks`.  Runs the
# kernel suite once and asserts (a) the suite's built-in invariants
# (join/aggregate speedup, flat index lookup) and (b) no kernel slower
# than 2x the committed BENCH_kernels.json baseline.

import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import kernels as _kernels


@pytest.fixture(scope="module")
def kernel_results():
    return _kernels.run_suite(repeat=3)


@pytest.mark.kernelbench
def test_kernel_acceptance(kernel_results):
    assert _kernels.acceptance_failures(kernel_results) == []


@pytest.mark.kernelbench
def test_kernel_baseline_regression(kernel_results):
    path = os.path.join(os.path.dirname(__file__), "BENCH_kernels.json")
    assert os.path.exists(path), "no committed baseline; run run_kernels.py --update"
    with open(path) as fh:
        baseline = json.load(fh)["kernels"]
    assert _kernels.regressions(kernel_results, baseline) == []


@pytest.mark.kernelbench
def test_kernel_baseline_schema():
    path = os.path.join(os.path.dirname(__file__), "BENCH_kernels.json")
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["schema_version"] == 1
    assert set(doc["kernels"]) == set(_kernels.KERNELS)
    for metrics in doc["kernels"].values():
        assert metrics["wall_s"] > 0
