"""Fig 10: averaged per-server scan throughput on multiple storage systems.

Paper setup (§VI-B-2): the same scan queries, but "each scan query ...
will scan both T2 and T3, which are stored on different storage systems"
(T2 on storage B, T3 on storage A; T3's attributes are a subset of
T1/T2's).  Paper finding: "after SmartIndex is enabled, the averaged
throughput on a single server can be improved by up to 1.5x."

Throughput here is the paper's notion: logical data processed per server
per unit of (simulated) time — an index-covered block counts as
processed, because its answer was produced, just without the read.
"""

import pytest

from benchmarks._harness import eval_cluster, run_stream
from benchmarks.conftest import format_series
from repro import LeafConfig
from repro.workload.datasets import DatasetSpec, load_paper_datasets
from repro.workload.generator import scan_query_stream

N_QUERIES = 140


def _queries(table):
    # T3's 7-field schema is a subset of T2's; use shared columns so the
    # same predicate pool hits both tables.
    return scan_query_stream(
        table,
        ["click_count", "query_id", "user_id"],
        value_range=(0, 40),
        count=N_QUERIES,
        seed=31,
        contains_column="url",
        contains_values=[f"site{i}" for i in range(5)],
        # The multi-storage trace mixes more ad-hoc one-off parameters
        # than the Fig 9 micro-stream, which is what keeps the paper's
        # gain at ~1.5x rather than Fig 9's >3x.
        pool_size=28,
        reuse_probability=0.45,
    )


def _run(enable_smartindex: bool):
    cluster = eval_cluster(LeafConfig(enable_smartindex=enable_smartindex))
    specs = [
        DatasetSpec("T2", 24_000, 12, "storage-b", 24_000 * 1500, seed=202),
        DatasetSpec("T3", 8_000, 7, "storage-a", 8_000 * 1500, seed=303),
    ]
    tables = load_paper_datasets(cluster, specs, block_rows=2048)
    start = cluster.sim.now
    logical_bytes = 0.0
    # Each logical query scans BOTH tables (the data-integration case).
    for q2, q3 in zip(_queries("T2"), _queries("T3")):
        for sql, table in ((q2, tables["T2"]), (q3, tables["T3"])):
            result = cluster.query(sql)
            # logical volume: the scan bytes this query is responsible
            # for, whether the index skipped the read or not.
            logical_bytes += table.modeled_bytes * (
                result.stats["tasks_total"] / max(len(table.blocks), 1)
            ) * 0.4  # projection touches a subset of columns
    elapsed = cluster.sim.now - start
    servers = len(cluster.leaves)
    return logical_bytes / elapsed / servers / 1e6  # MB/s per server


@pytest.mark.benchmark(group="fig10")
def test_fig10_multi_storage_throughput(benchmark, figure_report):
    def run_both():
        return _run(True), _run(False)

    with_idx, without_idx = benchmark.pedantic(run_both, rounds=1, iterations=1)
    ratio = with_idx / without_idx
    figure_report(
        "Fig 10: averaged per-server scan throughput, two storage systems",
        format_series(
            ["configuration", "throughput (MB/s/server)", "vs. no index"],
            [
                ("SmartIndex disabled", without_idx, 1.0),
                ("SmartIndex enabled", with_idx, ratio),
            ],
        ),
    )

    # Paper shape: enabling SmartIndex lifts per-server throughput by a
    # meaningful factor ("up to 1.5x"; our cost model lands slightly
    # higher because skipped predicate CPU is cheaper on real Xeons than
    # in the abstract op model — see EXPERIMENTS.md).
    assert 1.25 < ratio < 2.5
    # Sanity: the gain is from skipped work, not an artifact — both
    # configurations processed the same logical volume per query.
    assert with_idx > 0 and without_idx > 0
