"""Fig 12: response time with different numbers of nodes.

Paper setup: the previous experiment's workload, run with varying node
counts.  Paper finding: "Feisu's performance increases linearly with the
number of nodes ... contributed by Feisu's scale-out design."

We hold the dataset and query stream fixed and sweep the cluster from 4
to 32 leaves; response time should fall near-linearly in node count (we
check the speedup from 4 to 32 nodes is at least half of the ideal 8x,
and monotone throughout).
"""

import pytest

from benchmarks._harness import eval_cluster, load_t1, run_stream
from benchmarks.conftest import format_series
from repro import LeafConfig
from repro.workload.generator import scan_query_stream

NODE_SWEEP = [(1, 2, 2), (1, 2, 4), (1, 2, 8), (1, 2, 16)]  # (dc, racks, nodes/rack)
N_QUERIES = 30


def _queries():
    return scan_query_stream(
        "T1",
        ["click_count", "position", "user_id"],
        value_range=(0, 40),
        count=N_QUERIES,
        seed=67,
        pool_size=16,
        reuse_probability=0.0,  # pure cold scans: isolate the scale-out effect
    )


def _run(shape):
    dc, racks, per_rack = shape
    cluster = eval_cluster(
        LeafConfig(enable_smartindex=False),  # no warm-up effects in this figure
        datacenters=dc,
        racks_per_datacenter=racks,
        nodes_per_rack=per_rack,
    )
    load_t1(cluster, rows=48_000, num_fields=12, block_rows=750)
    stats = run_stream(cluster, _queries())
    times = [s["response_time_s"] for s in stats]
    return dc * racks * per_rack, sum(times) / len(times)


@pytest.mark.benchmark(group="fig12")
def test_fig12_scalability(benchmark, figure_report):
    def sweep():
        return [_run(shape) for shape in NODE_SWEEP]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base_nodes, base_time = rows[0]
    table = [
        (nodes, t, base_time / t, nodes / base_nodes)
        for nodes, t in rows
    ]
    figure_report(
        "Fig 12: mean response time vs. cluster size (fixed workload)",
        format_series(["nodes", "response (s)", "speedup", "ideal"], table),
    )

    times = [t for _n, t in rows]
    # Response time falls monotonically with node count...
    assert all(a > b for a, b in zip(times, times[1:]))
    # ...and the 4->32 node speedup is near-linear (>= half of ideal 8x).
    speedup = times[0] / times[-1]
    assert speedup > 4.0
    # Not super-linear (that would indicate an accounting bug).
    assert speedup < 10.0
