"""Fig 4: number of identical columns accessed vs. time span.

Paper finding: "there is a small set of columns that are repeatedly
accessed in a given time span.  The number increases when the time span
becomes larger" — the data-locality half of §IV-A's trace study.

We regenerate the user trace with the drill-down workload generator and
compute the same statistic over spans from 1 h to 24 h.
"""

import pytest

from benchmarks.conftest import format_series
from repro.workload.analysis import repeated_columns_by_span
from repro.workload.datasets import log_schema
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

SPANS_H = [1, 2, 4, 8, 12, 24]


def _trace(days: float = 7.0):
    gen = WorkloadGenerator(
        "T1",
        log_schema(16),
        WorkloadConfig(num_users=14, think_time_s=600.0, seed=41),
        value_ranges={"click_count": (0, 50), "position": (1, 10), "user_id": (0, 5000)},
        contains_values={"url": [f"site{i}" for i in range(6)], "query_text": ["music", "news"]},
    )
    return gen.generate(days * 86_400.0)


@pytest.mark.benchmark(group="fig4")
def test_fig4_column_locality(benchmark, figure_report):
    trace = _trace()

    def analyze():
        spans = [h * 3600.0 for h in SPANS_H]
        return repeated_columns_by_span(trace, spans)

    series = benchmark.pedantic(analyze, rounds=1, iterations=1)
    points = [(h, series[h * 3600.0]) for h in SPANS_H]
    figure_report(
        "Fig 4: identical columns accessed vs. time span "
        f"({len(trace)} queries over 7 days)",
        format_series(["span (hours)", "avg identical columns"], points),
    )

    values = [v for _h, v in points]
    # Shape assertions from the paper's figure:
    # (1) a nontrivial repeated-column set exists even at 1 hour;
    assert values[0] > 0
    # (2) the count grows (weakly) as the span widens;
    assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))
    assert values[-1] > values[0]
    # (3) it stays a *small* set — locality, not uniform access.
    assert values[-1] < len(log_schema(16))
