"""Gateway serving bench: 1000 Zipf-skewed sessions under saturation (S52).

Two runs over the same 16k-row table:

* ``idle`` — the same query mix trickled through one slot with no
  overlap, establishing the uncontended service-latency floor;
* ``saturated_1000_sessions`` — 1000 sessions across 8 Zipf-skewed
  tenants arriving within a 2-second window against 4 gateway slots,
  which backlogs every tenant and makes admission control + fair share
  do the work.

All latencies are *simulated* seconds, so runs are deterministic for a
fixed seed; the committed baseline gates regressions tightly.  The
acceptance invariants are the S52 bar: every session completes, p99
service latency stays within 3x the idle p50 (admission control protects
in-cluster latency; the pressure shows up as queue wait, reported
separately), and the windowed Jain fairness index stays >= 0.9.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro import DataType, FeisuCluster, FeisuConfig, Schema
from repro.gateway import GatewayConfig, TenantPolicy, run_sessions
from repro.workload.generator import MultiTenantConfig, multi_tenant_sessions

TABLE_ROWS = 16_000
BLOCK_ROWS = 4_096
NUM_TENANTS = 8
NUM_SESSIONS = 1_000
SEED = 42

#: The S52 acceptance bar.
MAX_P99_OVER_IDLE_P50 = 3.0
MIN_JAIN = 0.9

#: Regression tolerance vs the committed baseline (simulated metrics are
#: deterministic; the slack absorbs intentional cost-model changes only).
LATENCY_TOLERANCE = 1.5
JAIN_TOLERANCE = 0.05


def _build_cluster(total_slots: int) -> FeisuCluster:
    gw = GatewayConfig(
        total_slots=total_slots,
        quantum_units=4.0,
        default_policy=TenantPolicy(
            max_concurrent=max(2, total_slots // 2), max_queued=2048
        ),
    )
    cluster = FeisuCluster(
        FeisuConfig(
            datacenters=1, racks_per_datacenter=2, nodes_per_rack=4, gateway=gw
        )
    )
    rng = np.random.default_rng(5)
    columns = {
        "c1": rng.integers(0, 100, TABLE_ROWS),
        "c2": rng.integers(0, 10, TABLE_ROWS),
        "c3": rng.integers(0, 1000, TABLE_ROWS),
        "clicks": rng.random(TABLE_ROWS),
    }
    schema = Schema.of(
        c1=DataType.INT64, c2=DataType.INT64, c3=DataType.INT64, clicks=DataType.FLOAT64
    )
    cluster.load_table("T", schema, columns, storage="storage-a", block_rows=BLOCK_ROWS)
    return cluster


def _traces(cluster: FeisuCluster, config: MultiTenantConfig):
    schema = cluster.catalog.get("T").schema
    traces = multi_tenant_sessions(
        "T",
        schema,
        config,
        value_ranges={"c1": (0, 100), "c2": (0, 10), "c3": (0, 1000)},
    )
    for user in sorted({t.user for t in traces}):
        cluster.create_user(user, domains=["*"])
        cluster.acl.grant(user, "T")
    return traces


def run_suite() -> Dict[str, Dict[str, float]]:
    results: Dict[str, Dict[str, float]] = {}

    # Uncontended floor: one slot, sessions trickled with no overlap.
    idle_cluster = _build_cluster(total_slots=1)
    idle_traces = _traces(
        idle_cluster,
        MultiTenantConfig(
            num_tenants=NUM_TENANTS,
            num_sessions=50,
            think_time_s=1.0,
            open_window_s=5.0,
            seed=SEED,
        ),
    )
    idle = run_sessions(idle_cluster.gateway, idle_traces, limit_s=1e6)
    results["idle"] = {
        "submitted": float(idle.as_dict()["submitted"]),
        "service_p50_s": idle.service_p50_s,
        "service_p99_s": idle.service_p99_s,
    }

    # Saturation: 1000 sessions in a 2 s window against 4 slots.
    cluster = _build_cluster(total_slots=4)
    traces = _traces(
        cluster,
        MultiTenantConfig(
            num_tenants=NUM_TENANTS,
            num_sessions=NUM_SESSIONS,
            zipf_exponent=1.1,
            queries_per_session=2.0,
            think_time_s=0.5,
            open_window_s=2.0,
            seed=SEED,
        ),
    )
    report = run_sessions(cluster.gateway, traces, limit_s=1e6)
    saturated = report.as_dict()
    saturated["p99_over_idle_p50"] = (
        report.service_p99_s / idle.service_p50_s if idle.service_p50_s else 0.0
    )
    results["saturated_1000_sessions"] = saturated
    return results


def acceptance_failures(results: Dict[str, Dict[str, float]]) -> List[str]:
    """Violations of the S52 acceptance bar (empty = pass)."""
    problems: List[str] = []
    sat = results["saturated_1000_sessions"]
    if sat["sessions"] < NUM_SESSIONS:
        problems.append(f"only {sat['sessions']:.0f}/{NUM_SESSIONS} sessions ran")
    unresolved = sat["submitted"] - (
        sat["completed"] + sat["failed"] + sat["killed"] + sat["timed_out"]
    )
    if unresolved:
        problems.append(f"{unresolved:.0f} admitted queries never resolved")
    if sat["completed"] < sat["submitted"]:
        problems.append(
            f"{sat['submitted'] - sat['completed']:.0f} queries did not succeed"
        )
    if sat["p99_over_idle_p50"] > MAX_P99_OVER_IDLE_P50:
        problems.append(
            f"p99 service latency {sat['service_p99_s']:.4f}s is "
            f"{sat['p99_over_idle_p50']:.2f}x the idle p50 "
            f"(limit {MAX_P99_OVER_IDLE_P50:.1f}x)"
        )
    if sat["jain_fairness"] < MIN_JAIN:
        problems.append(
            f"windowed Jain fairness {sat['jain_fairness']:.3f} < {MIN_JAIN}"
        )
    if sat["fairness_tenants"] < NUM_TENANTS:
        problems.append(
            f"only {sat['fairness_tenants']:.0f}/{NUM_TENANTS} tenants were "
            "backlogged together — the run is not saturated enough to measure"
        )
    return problems


def regressions(
    results: Dict[str, Dict[str, float]], baseline: Dict[str, Dict[str, float]]
) -> List[str]:
    """Drift vs the committed baseline (empty = pass)."""
    problems: List[str] = []
    sat, base = results["saturated_1000_sessions"], baseline["saturated_1000_sessions"]
    for key in ("service_p99_s", "total_p99_s", "queue_wait_p99_s", "makespan_s"):
        if base.get(key, 0.0) > 0.0 and sat[key] > base[key] * LATENCY_TOLERANCE:
            problems.append(
                f"{key} regressed: {sat[key]:.4f}s vs baseline {base[key]:.4f}s "
                f"(tolerance {LATENCY_TOLERANCE}x)"
            )
    if sat["jain_fairness"] < base.get("jain_fairness", 0.0) - JAIN_TOLERANCE:
        problems.append(
            f"jain_fairness dropped: {sat['jain_fairness']:.3f} vs baseline "
            f"{base['jain_fairness']:.3f}"
        )
    return problems
