"""Wall-clock kernels for the semantic SmartIndex layer (DESIGN.md S49).

Times the pieces ISSUE 4 added on top of the exact/complement cache:

* ``registry_probe_1k`` — the interval registry's O(log n) tightest-
  superset probe against a faithful linear scan over the same 1k cached
  atoms (the remedy the registry exists for); the suite's acceptance
  invariant requires the registry to win by ``MIN_PROBE_SPEEDUP``.
* ``semantic_compose`` — derived-atom bitmap composition
  (``EQ = LE &~ LT`` etc.) end to end through ``cover_semantic``.
* ``residual_cover`` — candidate-mask clause probing over a 64k-row
  block, the residual-scan fast path.
* ``cost_evict`` — insert throughput under memory pressure with the
  benefit-per-byte heaps doing the evicting.

``run_suite`` returns a machine-readable dict;
``benchmarks/run_smartindex.py`` writes/compares the committed
``BENCH_smartindex.json`` baseline and ``pytest -m smartbench`` gates on
it.  Wall-clock only — the figure reproductions' simulated numbers are
untouched by definition.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.index.smartindex import SmartIndexManager
from repro.planner.cnf import AtomicPredicate, Clause, ConjunctiveForm
from repro.sql.ast import BinaryOperator

#: A kernel regresses when its wall-clock exceeds baseline * this factor.
REGRESSION_FACTOR = 2.0
#: The interval-registry probe must beat the linear atom scan by this
#: factor at 1k cached entries (ISSUE 4 acceptance criterion).
MIN_PROBE_SPEEDUP = 5.0

REGISTRY_ENTRIES = 1_000
ROWS = 4_096
RESIDUAL_ROWS = 65_536


def _best_of(fn: Callable[[], object], repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


_RANGE_OPS = (
    BinaryOperator.LT,
    BinaryOperator.LE,
    BinaryOperator.GT,
    BinaryOperator.GE,
)


def _filled_semantic_manager(
    entries: int, rows: int = ROWS
) -> Tuple[SmartIndexManager, List[AtomicPredicate], np.ndarray]:
    """One block, ``entries`` cached range atoms over a few columns."""
    mgr = SmartIndexManager(compress=False, semantic=True)
    rng = np.random.default_rng(31)
    col = rng.uniform(0.0, 1_000_000.0, rows)
    atoms: List[AtomicPredicate] = []
    values = rng.integers(0, 1_000_000, entries)
    for i, v in enumerate(values):
        atom = AtomicPredicate(f"c{i % 4}", _RANGE_OPS[i % 4], int(v))
        atoms.append(atom)
        mgr.insert("b0", atom, atom.evaluate(col), now=float(i) * 1e-3)
    return mgr, atoms, col


def _linear_superset_scan(
    cached: List[AtomicPredicate], probe: AtomicPredicate
) -> Optional[AtomicPredicate]:
    """What probing without the registry costs: walk every cached atom
    of the block and implication-test it (directly and as a complement),
    keeping the first superset found."""
    for atom in cached:
        if probe.key != atom.key and probe.implies(atom):
            return atom
        comp = atom.complement()
        if probe.implies(comp):
            return comp
    return None


def bench_registry_probe_1k(repeat: int) -> Dict[str, float]:
    mgr, atoms, _col = _filled_semantic_manager(REGISTRY_ENTRIES)
    registry = mgr._registry  # noqa: SLF001 - benchmarking the internal probe
    rng = np.random.default_rng(37)
    probes = [
        AtomicPredicate(f"c{i % 4}", _RANGE_OPS[i % 4], int(v))
        for i, v in enumerate(rng.integers(0, 1_000_000, 2_000))
    ]
    # The linear baseline only sees atoms of the probed column — an
    # already-charitable baseline (a real scan filters on the fly).
    by_column: Dict[str, List[AtomicPredicate]] = {}
    for atom in atoms:
        by_column.setdefault(atom.column, []).append(atom)

    def fast():
        for probe in probes:
            registry.superset_candidates("b0", probe)

    def slow():
        for probe in probes:
            _linear_superset_scan(by_column[probe.column], probe)

    wall = _best_of(fast, repeat) / len(probes)
    linear = _best_of(slow, repeat) / len(probes)
    return {
        "wall_s": wall,
        "linear_wall_s": linear,
        "speedup": linear / wall,
        "entries": REGISTRY_ENTRIES,
    }


def bench_semantic_compose(repeat: int) -> Dict[str, float]:
    """Derived-hit composition through ``cover_semantic``.

    The cache holds LT/LE pairs at 200 values; every probe is an EQ at
    one of them — answered exactly by ``LE &~ LT`` without touching
    data.  Each manager is rebuilt per run because the first derived
    hit materializes, so reuse would measure exact hits instead.
    """
    rng = np.random.default_rng(41)
    col = rng.uniform(0.0, 100.0, ROWS)
    values = list(range(1, 201))
    probes = [
        ConjunctiveForm(
            [Clause((AtomicPredicate("c0", BinaryOperator.EQ, v),))]
        )
        for v in values
    ]

    def run():
        mgr = SmartIndexManager(compress=False, semantic=True)
        for i, v in enumerate(values):
            lt = AtomicPredicate("c0", BinaryOperator.LT, v)
            le = AtomicPredicate("c0", BinaryOperator.LE, v)
            mgr.insert("b0", lt, col < v, now=float(i) * 1e-3)
            mgr.insert("b0", le, col <= v, now=float(i) * 1e-3)
        for cnf in probes:
            mask, missing, residuals = mgr.cover_semantic("b0", cnf, now=1.0)
            assert mask is not None and not missing and not residuals
        return mgr

    return {"wall_s": _best_of(run, repeat) / len(probes), "rows": ROWS}


def bench_residual_cover(repeat: int) -> Dict[str, float]:
    """Candidate-mask probing on a big block: cached ``x < hi`` vectors
    answering tighter ``x < hi/2`` probes as residual candidates."""
    rng = np.random.default_rng(43)
    col = rng.uniform(0.0, 1000.0, RESIDUAL_ROWS)
    mgr = SmartIndexManager(compress=False, semantic=True)
    bounds = [float(b) for b in range(100, 1000, 100)]
    for i, hi in enumerate(bounds):
        atom = AtomicPredicate("c0", BinaryOperator.LT, hi)
        mgr.insert("b0", atom, col < hi, now=float(i))
    probes = [
        ConjunctiveForm(
            [Clause((AtomicPredicate("c0", BinaryOperator.LT, hi - 50.0),))]
        )
        for hi in bounds
    ]

    def run():
        hits = 0
        for cnf in probes:
            _mask, missing, residuals = mgr.cover_semantic("b0", cnf, now=100.0)
            hits += len(residuals)
            assert not missing
        return hits

    return {"wall_s": _best_of(run, repeat) / len(probes), "rows": RESIDUAL_ROWS}


def bench_cost_evict(repeat: int) -> Dict[str, float]:
    """Insert throughput with the benefit-per-byte policy evicting.

    The budget holds ~64 uncompressed 4k-row vectors; 512 inserts force
    ~448 heap-mediated evictions per run.
    """
    rng = np.random.default_rng(47)
    col = rng.uniform(0.0, 1_000_000.0, ROWS)
    inserts = 512
    budget = 64 * ((ROWS + 7) // 8 + 96)
    atoms = [
        AtomicPredicate(f"c{i % 4}", _RANGE_OPS[i % 4], int(v))
        for i, v in enumerate(rng.integers(0, 1_000_000, inserts))
    ]
    masks = [atom.evaluate(col) for atom in atoms]

    def run():
        mgr = SmartIndexManager(
            memory_budget_bytes=budget, compress=False, semantic=True
        )
        for i, (atom, mask) in enumerate(zip(atoms, masks)):
            mgr.insert("b0", atom, mask, now=float(i) * 1e-3)
        return mgr

    return {"wall_s": _best_of(run, repeat) / inserts, "inserts": inserts}


KERNELS: Dict[str, Callable[[int], Dict[str, float]]] = {
    "registry_probe_1k": bench_registry_probe_1k,
    "semantic_compose": bench_semantic_compose,
    "residual_cover_64k": bench_residual_cover,
    "cost_evict_512": bench_cost_evict,
}


def run_suite(repeat: int = 3) -> Dict[str, Dict[str, float]]:
    """Run every kernel; returns ``{kernel_name: metrics}``."""
    return {name: fn(repeat) for name, fn in KERNELS.items()}


def acceptance_failures(results: Dict[str, Dict[str, float]]) -> List[str]:
    """The suite's built-in invariants (independent of any baseline)."""
    problems = []
    speedup = results["registry_probe_1k"]["speedup"]
    if speedup < MIN_PROBE_SPEEDUP:
        problems.append(
            f"registry_probe_1k: {speedup:.1f}x vs linear scan "
            f"< required {MIN_PROBE_SPEEDUP:.0f}x"
        )
    return problems


def regressions(
    results: Dict[str, Dict[str, float]], baseline: Dict[str, Dict[str, float]]
) -> List[str]:
    """Kernels slower than ``REGRESSION_FACTOR`` x the committed baseline."""
    problems = []
    for name, base in baseline.items():
        current: Optional[Dict[str, float]] = results.get(name)
        if current is None:
            problems.append(f"{name}: kernel missing from current suite")
            continue
        if current["wall_s"] > base["wall_s"] * REGRESSION_FACTOR:
            problems.append(
                f"{name}: {current['wall_s']:.6f}s vs baseline "
                f"{base['wall_s']:.6f}s (>{REGRESSION_FACTOR:.0f}x regression)"
            )
    return problems
