"""Fused-pipeline wall-clock benchmark suite (DESIGN.md S51).

Times the same leaf scan task through the operator-at-a-time executor
(:func:`repro.engine.executor.execute_scan_task`) and the fused
morsel-parallel pipeline (:func:`repro.engine.pipeline.execute_fused_scan_task`)
on identical in-memory blocks, reporting the wall-clock speedup fusion
buys.  The win comes from the gather discipline: the unfused path
boolean-mask-gathers *every* read column through the selection mask
before projection throws most of it away, while the fused path keeps the
selection lazy and index-gathers only the payload columns of matching
rows (one ``flatnonzero`` per morsel).

``run_suite`` returns a machine-readable dict; ``benchmarks/run_pipeline.py``
writes/compares the committed ``BENCH_pipeline.json`` baseline and
``pytest -m pipelinebench`` gates on it.

All timings here are *library* wall-clock; the figure reproductions'
simulated-clock numbers are untouched by definition (the differential
suite proves fused results and charges are byte-identical).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.columnar.schema import DataType, Schema
from repro.columnar.table import Catalog
from repro.engine.executor import execute_scan_task
from repro.engine.pipeline import execute_fused_scan_task
from repro.planner.physical import PhysicalPlan, build_plan
from repro.sql.analyzer import analyze
from repro.sql.parser import parse
from repro.storage.loader import load_block, store_table
from repro.storage.router import StorageRouter
from repro.storage.systems import DistributedFS
from repro.sim.netmodel import TopologySpec

#: A kernel regresses when its wall-clock exceeds baseline * this factor.
REGRESSION_FACTOR = 2.0
#: Acceptance floor: fused must beat unfused by this factor on the
#: scan-heavy kernels (the ISSUE's >=2x target).
MIN_SPEEDUP = 2.0
#: On a block too small to amortize anything, fusion must not cost more
#: than this factor over the unfused path.
MAX_SMALL_BLOCK_PENALTY = 3.0

SCAN_ROWS = 2_000_000
SMALL_ROWS = 10_000
#: Predicate-only int64 columns; the unfused path mask-gathers all of
#: them, the fused path never materializes their matches.
PRED_COLS = 8


def _best_of(fn: Callable[[], object], repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _scan_env(rows: int, seed: int = 31):
    """One table, one block: ``PRED_COLS`` predicate columns ``p0..p7``
    plus two payload columns, stored through the real loader so both
    executors see identical encoded chunks."""
    nodes = TopologySpec(1, 1, 2).addresses()
    fs = DistributedFS(nodes)
    router = StorageRouter()
    router.register(fs, default=True)
    catalog = Catalog()
    rng = np.random.default_rng(seed)
    columns: Dict[str, np.ndarray] = {
        f"p{i}": rng.integers(0, 1000, rows) for i in range(PRED_COLS)
    }
    columns["g"] = rng.integers(0, 10, rows)
    columns["pay_a"] = rng.integers(0, 1_000_000, rows)
    columns["pay_b"] = rng.random(rows)
    schema = Schema.of(
        **{f"p{i}": DataType.INT64 for i in range(PRED_COLS)},
        g=DataType.INT64,
        pay_a=DataType.INT64,
        pay_b=DataType.FLOAT64,
    )
    store_table("B", schema, columns, router, fs, block_rows=rows, catalog=catalog)
    return router, catalog


def _compile(router, catalog, sql: str) -> Tuple[PhysicalPlan, list]:
    plan = build_plan(analyze(parse(sql), catalog))
    blocks = [load_block(router, t.block) for t in plan.tasks]
    return plan, blocks


def _run_unfused(plan: PhysicalPlan, blocks) -> None:
    for task, block in zip(plan.tasks, blocks):
        execute_scan_task(task, plan, block, {})


def _run_fused(plan: PhysicalPlan, blocks, morsel_rows: int = 64 * 1024) -> None:
    for task, block in zip(plan.tasks, blocks):
        execute_fused_scan_task(task, plan, block, {}, morsel_rows=morsel_rows)


#: Every p-column appears in the WHERE clause, so all eight are read
#: columns; ~1% of rows survive.  This is the paper's scan-heavy shape:
#: wide predicate, narrow answer.
_SELECTIVE_SQL = (
    "SELECT pay_a, pay_b FROM B WHERE "
    + " AND ".join(f"p{i} < 900" for i in range(PRED_COLS - 1))
    + " AND p7 < 20"
)


def bench_selective_scan(repeat: int) -> Dict[str, float]:
    router, catalog = _scan_env(SCAN_ROWS)
    plan, blocks = _compile(router, catalog, _SELECTIVE_SQL)
    unfused = _best_of(lambda: _run_unfused(plan, blocks), repeat)
    fused = _best_of(lambda: _run_fused(plan, blocks), repeat)
    return {"wall_s": fused, "unfused_wall_s": unfused,
            "speedup": unfused / fused, "rows": SCAN_ROWS}


def bench_groupby_exact(repeat: int) -> Dict[str, float]:
    """Merge-exact morsel aggregation (COUNT/SUM/MIN/MAX over int64):
    partial states update in place per morsel and merge, so the filtered
    frame is never materialized at all.  Report shape: wide selective
    predicate, low-cardinality group key."""
    router, catalog = _scan_env(SCAN_ROWS)
    sql = (
        "SELECT g, COUNT(*), SUM(pay_a), MIN(pay_a), MAX(pay_a) FROM B "
        "WHERE " + " AND ".join(f"p{i} < 800" for i in range(1, PRED_COLS - 1))
        + " AND p7 < 100 GROUP BY g"
    )
    plan, blocks = _compile(router, catalog, sql)
    unfused = _best_of(lambda: _run_unfused(plan, blocks), repeat)
    fused = _best_of(lambda: _run_fused(plan, blocks), repeat)
    return {"wall_s": fused, "unfused_wall_s": unfused,
            "speedup": unfused / fused, "rows": SCAN_ROWS}


def bench_small_block(repeat: int) -> Dict[str, float]:
    """Guard kernel: a 10k-row block gets one morsel and no pool — the
    fused path must stay within ``MAX_SMALL_BLOCK_PENALTY`` of unfused."""
    router, catalog = _scan_env(SMALL_ROWS, seed=37)
    plan, blocks = _compile(router, catalog, _SELECTIVE_SQL)

    def many_unfused():
        for _ in range(20):
            _run_unfused(plan, blocks)

    def many_fused():
        for _ in range(20):
            _run_fused(plan, blocks)

    unfused = _best_of(many_unfused, repeat) / 20
    fused = _best_of(many_fused, repeat) / 20
    return {"wall_s": fused, "unfused_wall_s": unfused,
            "speedup": unfused / fused, "rows": SMALL_ROWS}


KERNELS: Dict[str, Callable[[int], Dict[str, float]]] = {
    "fused_selective_scan_2m": bench_selective_scan,
    "fused_groupby_exact_2m": bench_groupby_exact,
    "fused_small_block_10k": bench_small_block,
}


def run_suite(repeat: int = 3) -> Dict[str, Dict[str, float]]:
    """Run every kernel; returns ``{kernel_name: metrics}``."""
    return {name: fn(repeat) for name, fn in KERNELS.items()}


def acceptance_failures(results: Dict[str, Dict[str, float]]) -> List[str]:
    """The suite's built-in invariants (independent of any baseline)."""
    problems = []
    for name in ("fused_selective_scan_2m", "fused_groupby_exact_2m"):
        speedup = results[name]["speedup"]
        if speedup < MIN_SPEEDUP:
            problems.append(
                f"{name}: fused speedup {speedup:.2f}x < required "
                f"{MIN_SPEEDUP:.1f}x"
            )
    small = results["fused_small_block_10k"]["speedup"]
    if small < 1.0 / MAX_SMALL_BLOCK_PENALTY:
        problems.append(
            f"fused_small_block_10k: fusion costs {1.0 / small:.2f}x on a "
            f"small block (limit {MAX_SMALL_BLOCK_PENALTY:.0f}x)"
        )
    return problems


def regressions(
    results: Dict[str, Dict[str, float]], baseline: Dict[str, Dict[str, float]]
) -> List[str]:
    """Kernels slower than ``REGRESSION_FACTOR`` x the committed baseline."""
    problems = []
    for name, base in baseline.items():
        current: Optional[Dict[str, float]] = results.get(name)
        if current is None:
            problems.append(f"{name}: kernel missing from current suite")
            continue
        if current["wall_s"] > base["wall_s"] * REGRESSION_FACTOR:
            problems.append(
                f"{name}: {current['wall_s']:.6f}s vs baseline "
                f"{base['wall_s']:.6f}s (>{REGRESSION_FACTOR:.0f}x regression)"
            )
    return problems
