"""Shared benchmark infrastructure.

Each benchmark module reproduces one table or figure from the paper's
evaluation (see DESIGN.md §3).  Besides pytest-benchmark timings, every
experiment registers a human-readable results table through the
``figure_report`` fixture; the tables are printed in the terminal
summary (so they land in ``bench_output.txt``) and written under
``benchmarks/results/``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Tuple

import pytest

_REPORTS: List[Tuple[str, List[str]]] = []
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def format_series(header: Sequence[str], rows: Sequence[Sequence[object]]) -> List[str]:
    """Align a small table of series points for the report."""
    cells = [[str(h) for h in header]] + [
        [f"{v:.4g}" if isinstance(v, float) else str(v) for v in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(header))]
    lines = [" | ".join(c.ljust(w) for c, w in zip(cells[0], widths))]
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(" | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells[1:])
    return lines


@pytest.fixture()
def figure_report():
    """Register a titled results table for the run summary."""

    def register(title: str, lines: List[str]) -> None:
        _REPORTS.append((title, list(lines)))
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        head = title.split("(")[0].split("—")[0].strip()
        slug = "".join(c if c.isalnum() else "_" for c in head.lower()).strip("_")[:60]
        with open(os.path.join(_RESULTS_DIR, f"{slug}.txt"), "w") as fh:
            fh.write(title + "\n")
            fh.write("\n".join(lines) + "\n")

    return register


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("paper figure / table reproductions")
    for title, lines in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"== {title} ==")
        for line in lines:
            terminalreporter.write_line("  " + line)
