"""Elastic rebalancing gate (S55).

Opt-in gate: ``pytest -m elasticbench benchmarks``.  Runs the hot-domain
workload on static vs. ``enable_elastic`` twins and asserts (a) the S55
acceptance bar — identical rows, hot shard split, hot replicas spread,
mean simulated latency cut by >= 25%, the join/decommission exercise
stranding nothing — and (b) no improvement drift past the committed
``BENCH_elastic.json`` baseline.  Mirrors the layoutbench gate.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

import elastic_bench as _eb  # noqa: E402

BASELINE = os.path.join(os.path.dirname(__file__), "BENCH_elastic.json")


@pytest.fixture(scope="module")
def elastic_results():
    return _eb.run_suite()


@pytest.mark.elasticbench
def test_elastic_acceptance(elastic_results):
    assert _eb.acceptance_failures(elastic_results) == []


@pytest.mark.elasticbench
def test_elastic_baseline_regression(elastic_results):
    assert os.path.exists(BASELINE), (
        "no committed baseline; run run_elastic.py --update"
    )
    with open(BASELINE) as fh:
        baseline = json.load(fh)["runs"]
    assert _eb.regressions(elastic_results, baseline) == []


@pytest.mark.elasticbench
def test_elastic_baseline_schema():
    with open(BASELINE) as fh:
        doc = json.load(fh)
    assert doc["schema_version"] == 1
    runs = doc["runs"]
    assert set(runs) == {"elastic_ablation", "membership"}
    r = runs["elastic_ablation"]
    assert r["queries"] == _eb.NUM_QUERIES
    assert r["rows_identical"] == 1.0
    assert r["shard_splits"] >= 1.0
    assert r["replica_spreads"] >= 1.0
    assert r["mean_improvement"] >= _eb.MIN_MEAN_IMPROVEMENT
    m = runs["membership"]
    assert m["joins"] >= 1.0 and m["decommissions"] >= 1.0
    assert m["stranded_on_departed"] == 0.0
    assert m["post_change_rows_identical"] == 1.0
