"""Trojan-replica ablation bench (S54).

Twin clusters — byte-identical replicas vs. ``enable_layouts`` Trojan
replicas — run the same predicate/join-heavy aggregate workload.  The
layout twin's warmup pass feeds the predicate/join census; two forced
daemon cycles then rewrite per-replica variants (sorted projection on the
dominant predicate column, join-co-partitioned copy with an attached
B+ tree), and the measured pass routes each task to the best-fitting
copy.  The gate demands:

* every query returns identical rows on both twins (float aggregates up
  to addition-order ulps — variant row order permutes summation);
* at least ``MIN_MEAN_IMPROVEMENT`` mean simulated-latency win;
* the measured pass actually served variant reads (the routing landed);
* the scheduler's per-(block, columns) byte-size memo (satellite) shows
  a hit-dominated profile plus a micro-measured speedup over recomputing
  ``BlockRef.bytes_for`` per candidate.

SmartIndex is disabled on BOTH twins: variant reads must bypass
whole-block bitvectors anyway, so leaving it on for the base twin only
would compare different machines.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List

from repro import DataType, FeisuCluster, FeisuConfig, Schema
from repro.cluster.node import LeafConfig
from repro.workload.generator import skewed_join_dataset

#: Acceptance bar: layout-aware routing must cut mean simulated latency
#: by >= 25% on the predicate/join-heavy ablation.
MIN_MEAN_IMPROVEMENT = 0.25
#: Byte-size memo micro-bench floor (dict hit vs. rebuilding the
#: column-size dict per call); real ratios are an order of magnitude up.
MIN_MEMO_SPEEDUP = 1.5
#: Distinct queries in the ablation workload.
NUM_QUERIES = 8

_ROWS = 24_000
_BLOCK_ROWS = 6_000
_SCALE_FACTOR = 1_200

FACT_SCHEMA = Schema.of(
    k=DataType.INT64, v=DataType.FLOAT64, w=DataType.INT64, note=DataType.STRING
)
DIM_SCHEMA = Schema.of(k=DataType.INT64, label=DataType.STRING)

#: Predicate/join-heavy, order-deterministic (aggregates + ORDER BY on
#: the group key): variant row order must not change any answer.
QUERIES: List[str] = [
    "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM T WHERE w < 200 GROUP BY k ORDER BY k",
    "SELECT k, SUM(v) AS s FROM T WHERE w >= 900 GROUP BY k ORDER BY k",
    "SELECT k, COUNT(*) AS n FROM T WHERE w < 400 GROUP BY k ORDER BY k",
    "SELECT k, AVG(v) AS a FROM T WHERE w >= 500 AND w < 600 GROUP BY k ORDER BY k",
    "SELECT D.label, SUM(T.v) AS s FROM T JOIN D ON T.k = D.k "
    "WHERE T.w >= 700 GROUP BY D.label ORDER BY D.label",
    "SELECT D.label, COUNT(*) AS n FROM T JOIN D ON T.k = D.k "
    "WHERE T.w < 300 GROUP BY D.label ORDER BY D.label",
    "SELECT D.label, SUM(T.v) AS s FROM T JOIN D ON T.k = D.k "
    "WHERE T.w < 150 GROUP BY D.label ORDER BY D.label",
    "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM T WHERE w < 800 GROUP BY k ORDER BY k",
]


def _twin(enable_layouts: bool) -> FeisuCluster:
    cluster = FeisuCluster(
        FeisuConfig(
            datacenters=1,
            racks_per_datacenter=2,
            nodes_per_rack=8,
            leaf=LeafConfig(enable_smartindex=False, enable_layouts=enable_layouts),
        )
    )
    fact, dim = skewed_join_dataset(_ROWS, seed=17)
    cluster.load_table(
        "T",
        FACT_SCHEMA,
        fact,
        storage="storage-a",
        block_rows=_BLOCK_ROWS,
        scale_factor=_SCALE_FACTOR,
    )
    cluster.load_table("D", DIM_SCHEMA, dim, storage="storage-b", block_rows=100)
    return cluster


def _rows_match(rows_a: List, rows_b: List) -> bool:
    if len(rows_a) != len(rows_b):
        return False
    for row_a, row_b in zip(rows_a, rows_b):
        if len(row_a) != len(row_b):
            return False
        for a, b in zip(row_a, row_b):
            if isinstance(a, float) and isinstance(b, float):
                if math.isnan(a) and math.isnan(b):
                    continue
                if not math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9):
                    return False
            elif a != b:
                return False
    return True


def _memo_micro_speedup(cluster: FeisuCluster, repeats: int = 2000) -> float:
    """Wall-clock ratio of recomputing ``BlockRef.bytes_for`` per call vs.
    the scheduler's memoized lookup, on this cluster's real blocks."""
    scheduler = cluster.scheduler
    blocks = cluster.catalog.get("T").blocks
    columns = ("k", "v", "w")

    class _FakeTask:
        __slots__ = ("block", "columns")

        def __init__(self, block):
            self.block = block
            self.columns = columns

    tasks = [_FakeTask(b) for b in blocks]
    start = time.perf_counter()
    for _ in range(repeats):
        for t in tasks:
            t.block.bytes_for(t.columns)
    direct_s = time.perf_counter() - start
    for t in tasks:  # populate the memo outside the timed region
        scheduler._task_bytes(t)
    start = time.perf_counter()
    for _ in range(repeats):
        for t in tasks:
            scheduler._task_bytes(t)
    memo_s = time.perf_counter() - start
    return direct_s / memo_s if memo_s > 0 else float("inf")


def run_suite() -> Dict[str, Dict[str, float]]:
    base = _twin(False)
    trojan = _twin(True)

    # Warmup pass on both twins (equalizes device/slot state) — on the
    # layout twin it also feeds the census and heat tracker.
    for cluster in (base, trojan):
        for sql in QUERIES:
            cluster.query(sql)
    # Two forced daemon cycles: cycle one rewrites the first replica of
    # each hot block, cycle two the second (one per block per cycle).
    for _ in range(2):
        trojan.sim.run_until_complete(
            trojan.sim.process(trojan.layouts.run_once())
        )
    rewrites = trojan.layouts.stats.rewrites
    variant_reads_before = trojan.layouts.stats.variant_reads

    base_latencies: List[float] = []
    trojan_latencies: List[float] = []
    improvements: List[float] = []
    rows_identical = True
    for sql in QUERIES:
        rb = base.query(sql)
        rt = trojan.query(sql)
        rows_identical = rows_identical and _rows_match(rb.rows(), rt.rows())
        b_lat = rb.stats["response_time_s"]
        t_lat = rt.stats["response_time_s"]
        base_latencies.append(b_lat)
        trojan_latencies.append(t_lat)
        improvements.append(1.0 - t_lat / b_lat)
    variant_reads = trojan.layouts.stats.variant_reads - variant_reads_before

    hits = trojan.scheduler.task_bytes_hits + base.scheduler.task_bytes_hits
    misses = trojan.scheduler.task_bytes_misses + base.scheduler.task_bytes_misses
    memo_speedup = _memo_micro_speedup(base)

    n = len(QUERIES)
    return {
        "layout_ablation": {
            "queries": float(n),
            "base_mean_latency_s": sum(base_latencies) / n,
            "layout_mean_latency_s": sum(trojan_latencies) / n,
            "mean_improvement": sum(improvements) / n,
            "min_improvement": min(improvements),
            "rows_identical": 1.0 if rows_identical else 0.0,
            "replica_rewrites": float(rewrites),
            "variant_reads": float(variant_reads),
        },
        "placement_memo": {
            "bytes_cache_hits": float(hits),
            "bytes_cache_misses": float(misses),
            "memo_micro_speedup": memo_speedup,
        },
    }


def acceptance_failures(results: Dict[str, Dict[str, float]]) -> List[str]:
    """The S54 acceptance bar, independent of any baseline."""
    r = results["layout_ablation"]
    m = results["placement_memo"]
    problems: List[str] = []
    if r["rows_identical"] != 1.0:
        problems.append("layout twin rows diverge from the base twin's rows")
    if r["replica_rewrites"] < 1.0:
        problems.append("layout daemon rewrote no replica")
    if r["variant_reads"] < 1.0:
        problems.append("measured pass served no variant read — routing never landed")
    if r["mean_improvement"] < MIN_MEAN_IMPROVEMENT:
        problems.append(
            f"mean latency improvement {r['mean_improvement']:.1%} "
            f"< required {MIN_MEAN_IMPROVEMENT:.0%}"
        )
    if m["bytes_cache_hits"] <= m["bytes_cache_misses"]:
        problems.append(
            f"byte-size memo not hit-dominated: {m['bytes_cache_hits']:.0f} hits "
            f"vs {m['bytes_cache_misses']:.0f} misses"
        )
    if m["memo_micro_speedup"] < MIN_MEMO_SPEEDUP:
        problems.append(
            f"byte-size memo micro speedup {m['memo_micro_speedup']:.2f}x "
            f"< required {MIN_MEMO_SPEEDUP:.1f}x"
        )
    return problems


def regressions(
    results: Dict[str, Dict[str, float]], baseline: Dict[str, Dict[str, float]]
) -> List[str]:
    """Drift vs. the committed baseline.  Simulated-clock metrics are
    deterministic; the wall-clock memo micro-bench is machine-dependent
    and deliberately NOT compared here (the acceptance floor covers it)."""
    r = results["layout_ablation"]
    b = baseline["layout_ablation"]
    problems: List[str] = []
    if r["mean_improvement"] < b["mean_improvement"] - 0.02:
        problems.append(
            f"mean improvement regressed: {r['mean_improvement']:.1%} vs "
            f"baseline {b['mean_improvement']:.1%}"
        )
    if r["layout_mean_latency_s"] > b["layout_mean_latency_s"] * 1.05:
        problems.append(
            f"layout mean latency regressed: {r['layout_mean_latency_s']:.4f}s "
            f"vs baseline {b['layout_mean_latency_s']:.4f}s"
        )
    if r["variant_reads"] < b["variant_reads"]:
        problems.append(
            f"variant reads dropped: {r['variant_reads']:.0f} vs "
            f"baseline {b['variant_reads']:.0f}"
        )
    return problems
