"""Relational operators over :class:`~repro.planner.expressions.Frame`.

These are the building blocks leaf servers, stem servers and the master
compose: scan (block decode + projection), filter, hash join, sort and
limit.  Grouped aggregation lives in :mod:`repro.engine.aggregates`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.columnar.block import Block
from repro.errors import ExecutionError
from repro.planner.expressions import Frame, Resolver, evaluate
from repro.sql.ast import BinaryOp, BinaryOperator, Column, Expr, JoinKind, walk


def scan_block(block: Block, columns: Sequence[str]) -> Frame:
    """Decode the requested columns of a block into a frame."""
    return Frame(block.columns(list(columns)), block.num_rows)


def apply_filter(frame: Frame, mask: np.ndarray) -> Frame:
    if len(mask) != frame.num_rows:
        raise ExecutionError(
            f"mask length {len(mask)} != frame rows {frame.num_rows}"
        )
    return frame.take(mask.astype(np.bool_))


def prefix_columns(frame: Frame, binding: str) -> Frame:
    """Qualify all column names with a table binding (pre-join)."""
    return Frame({f"{binding}.{n}": v for n, v in frame.columns.items()}, frame.num_rows)


def equi_join_keys(
    condition: Expr, left_binding: str, right_binding: str
) -> Optional[List[Tuple[Column, Column]]]:
    """Extract equi-join key pairs from an ON condition.

    Returns pairs ``(left_col, right_col)`` when the condition is a
    conjunction of cross-table equalities; None otherwise (the join then
    degrades to filtered cross product).
    """
    pairs: List[Tuple[Column, Column]] = []
    stack = [condition]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryOp) and node.op is BinaryOperator.AND:
            stack.extend((node.left, node.right))
            continue
        if not (
            isinstance(node, BinaryOp)
            and node.op is BinaryOperator.EQ
            and isinstance(node.left, Column)
            and isinstance(node.right, Column)
        ):
            return None
        a, b = node.left, node.right
        if a.table == right_binding or (b.table == left_binding):
            a, b = b, a
        pairs.append((a, b))
    return pairs or None


def _stable_order(col: np.ndarray) -> np.ndarray:
    """Stable argsort, radix-accelerated for small-range integer keys.

    ``np.argsort(kind="stable")`` on int32/int64 is mergesort (~9x the
    cost of radix at 100k rows).  Dense key codes and typical join/group
    key columns span a small range, so they can be rebased into int16 —
    where numpy's stable sort *is* radix — or, failing that, combined
    with the row number into a unique ``code * n + row`` composite whose
    plain quicksort order equals the stable order.
    """
    n = len(col)
    if n > 1 and np.issubdtype(col.dtype, np.integer):
        lo = int(col.min())
        span = int(col.max()) - lo
        # Widen before rebasing: narrow dtypes whose span exceeds their
        # own positive range would wrap in ``col - lo``.
        if span < (1 << 15):
            rebased = col.astype(np.int64, copy=False) - lo
            return np.argsort(rebased.astype(np.int16), kind="stable")
        if span < (1 << 62) // n:
            comp = (col.astype(np.int64, copy=False) - lo) * np.int64(n) + np.arange(
                n, dtype=np.int64
            )
            return np.argsort(comp)
    return np.argsort(col, kind="stable")


def _hash_codes(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Dense int64 codes identifying each row's key tuple.

    Rows with equal key tuples get equal codes; the codes of a multi-key
    tuple are re-densified after every column so the mixed-radix combine
    cannot overflow int64 for any realistic row count.
    """
    combined = None
    for col in arrays:
        uniques, codes = np.unique(col, return_inverse=True)
        codes = codes.astype(np.int64)
        if combined is None:
            combined = codes
        else:
            combined = combined * np.int64(len(uniques) + 1) + codes
            combined = np.unique(combined, return_inverse=True)[1].astype(np.int64)
    if combined is None:
        raise ExecutionError("hash join needs at least one key")
    return combined


def hash_join(
    left: Frame,
    right: Frame,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    kind: JoinKind = JoinKind.INNER,
) -> Frame:
    """Vectorized equi-join on equal-typed key columns.

    Column names must already be disjoint (use :func:`prefix_columns`).
    Outer variants emit unmatched rows with type-default padding (the
    engine's columns are dense; there is no NULL in the storage model).

    The build side is always the right input regardless of relative
    cardinality (RIGHT OUTER swaps the inputs to reduce to LEFT OUTER):
    key tuples of both sides are mapped to shared dense codes, the right
    side's codes are sorted once, and every left row finds its run of
    matches with one ``searchsorted`` probe.  Output rows are emitted in
    left-row-major order with right matches ascending, exactly like the
    scalar build/probe loop this replaces; swapping the build side would
    change that order, so we do not.
    """
    overlap = set(left.columns) & set(right.columns)
    if overlap:
        raise ExecutionError(f"join input column collision: {sorted(overlap)}")
    if kind is JoinKind.RIGHT_OUTER:
        return hash_join(right, left, right_keys, left_keys, JoinKind.LEFT_OUTER)

    left_arrays = [left.column(k) for k in left_keys]
    right_arrays = [right.column(k) for k in right_keys]
    if len(left_arrays) != len(right_arrays):
        raise ExecutionError("join key arity mismatch")
    n_left, n_right = left.num_rows, right.num_rows
    if not left_arrays:
        raise ExecutionError("hash join needs at least one key")

    la, ra = left_arrays[0], right_arrays[0]
    if len(left_arrays) == 1 and (
        la.dtype == ra.dtype
        or (np.issubdtype(la.dtype, np.number) and np.issubdtype(ra.dtype, np.number))
    ):
        # Single comparable key: the values themselves are the codes — no
        # factorize pass over the concatenated columns needed.
        l_codes, r_codes = la, ra
    else:
        # Shared dense codes: factorize each key position over both sides
        # at once so equal tuples on either side land on the same code.
        codes = _hash_codes(
            [np.concatenate((a, b)) for a, b in zip(left_arrays, right_arrays)]
        )
        l_codes, r_codes = codes[:n_left], codes[n_left:]

    # "Build": sort the right side's codes; each distinct code owns one
    # contiguous run of right-row indices (ascending, as argsort is stable).
    r_order = _stable_order(r_codes)
    r_sorted = r_codes[r_order]
    if n_right:
        run_starts = np.concatenate(
            ([0], np.flatnonzero(r_sorted[1:] != r_sorted[:-1]) + 1)
        )
    else:
        run_starts = np.zeros(0, dtype=np.int64)
    uniq = r_sorted[run_starts]
    run_counts = np.diff(np.append(run_starts, n_right))

    # "Probe": locate every left code's run — through a direct-address
    # position table when the integer key range is small enough (one
    # gather instead of 100k binary searches), else one searchsorted pass.
    if len(uniq) == 0 or n_left == 0:
        pos = np.zeros(n_left, dtype=np.int64)
        matched = np.zeros(n_left, dtype=np.bool_)
    elif (
        np.issubdtype(uniq.dtype, np.integer)
        and uniq.dtype == l_codes.dtype
        and int(max(uniq[-1], l_codes.max()))
        - int(min(uniq[0], l_codes.min()))
        <= 4 * (n_left + n_right) + 1024
    ):
        lo = min(int(uniq[0]), int(l_codes.min()))
        span = max(int(uniq[-1]), int(l_codes.max())) - lo + 1
        table = np.full(span, -1, dtype=np.int64)
        table[uniq - lo] = np.arange(len(uniq), dtype=np.int64)
        pos = table[l_codes - lo]
        matched = pos >= 0
        pos[~matched] = 0
    else:
        pos = np.minimum(np.searchsorted(uniq, l_codes), len(uniq) - 1)
        matched = uniq[pos] == l_codes
    match_counts = np.where(matched, run_counts[pos] if len(uniq) else 0, 0)
    li = np.repeat(np.arange(n_left, dtype=np.int64), match_counts)
    total = int(match_counts.sum())
    # Offset of each output row within its left row's run of matches.
    first_out = np.repeat(np.cumsum(match_counts) - match_counts, match_counts)
    offsets = np.arange(total, dtype=np.int64) - first_out
    starts_per_row = run_starts[pos] if len(uniq) else np.zeros(n_left, dtype=np.int64)
    ri = r_order[np.repeat(starts_per_row, match_counts) + offsets]

    unmatched = (
        np.flatnonzero(~matched) if kind is JoinKind.LEFT_OUTER else np.empty(0, np.int64)
    )
    pad = len(unmatched)
    out: Dict[str, np.ndarray] = {}
    for name, col in left.columns.items():
        matched_part = col[li]
        if pad:
            matched_part = np.concatenate((matched_part, col[unmatched]))
        out[name] = matched_part
    for name, col in right.columns.items():
        matched_part = col[ri]
        if pad:
            matched_part = np.concatenate((matched_part, _default_pad(col, pad)))
        out[name] = matched_part
    return Frame(out, total + pad)


def cross_join(left: Frame, right: Frame) -> Frame:
    overlap = set(left.columns) & set(right.columns)
    if overlap:
        raise ExecutionError(f"join input column collision: {sorted(overlap)}")
    n, m = left.num_rows, right.num_rows
    out: Dict[str, np.ndarray] = {}
    for name, col in left.columns.items():
        out[name] = np.repeat(col, m)
    for name, col in right.columns.items():
        out[name] = np.tile(col, n)
    return Frame(out, n * m)


def join(
    left: Frame,
    right: Frame,
    kind: JoinKind,
    condition: Optional[Expr],
    left_binding: str,
    right_binding: str,
    resolve: Resolver,
) -> Frame:
    """General join: equi fast path, else filtered cross product."""
    if kind is JoinKind.CROSS:
        return cross_join(left, right)
    if condition is None:
        raise ExecutionError("non-CROSS join requires a condition")
    pairs = equi_join_keys(condition, left_binding, right_binding)
    if pairs is not None:
        try:
            left_keys = [resolve_in(left, p[0]) for p in pairs]
            right_keys = [resolve_in(right, p[1]) for p in pairs]
        except ExecutionError:
            pairs = None
        else:
            return hash_join(left, right, left_keys, right_keys, kind)
    # Fallback: cross product, then filter; outer pads unmatched rows.
    product = cross_join(left, right)
    mask = evaluate(condition, product, resolve).astype(np.bool_)
    matched = product.take(mask)
    if kind is JoinKind.INNER:
        return matched
    # LEFT/RIGHT outer via the fallback path
    probe, build = (left, right) if kind is JoinKind.LEFT_OUTER else (right, left)
    matched_mask = mask.reshape(left.num_rows, right.num_rows)
    if kind is JoinKind.LEFT_OUTER:
        missing = ~matched_mask.any(axis=1)
    else:
        missing = ~matched_mask.any(axis=0)
    missing_rows = probe.take(missing)
    pad = missing_rows.num_rows
    out = {}
    for name, col in matched.columns.items():
        if name in probe.columns:
            out[name] = np.concatenate((col, missing_rows.columns[name]))
        else:
            out[name] = np.concatenate((col, _default_pad(col, pad)))
    return Frame(out, matched.num_rows + pad)


def resolve_in(frame: Frame, col: Column) -> str:
    if col.table is not None and f"{col.table}.{col.name}" in frame.columns:
        return f"{col.table}.{col.name}"
    if col.name in frame.columns:
        return col.name
    for key in frame.columns:
        if key.endswith(f".{col.name}"):
            return key
    raise ExecutionError(f"column {col} not found in join input")


def _default_pad(col: np.ndarray, n: int) -> np.ndarray:
    if col.dtype == object:
        pad = np.empty(n, dtype=object)
        pad[:] = ""
        return pad
    return np.zeros(n, dtype=col.dtype)


def sort_frame(frame: Frame, keys: Sequence[Tuple[np.ndarray, bool]]) -> Frame:
    """Stable multi-key sort; keys are (values, ascending) pairs.

    One ``np.lexsort`` over per-key rank codes replaces the per-key
    argsort/reverse/tie-fix loop: each key column is factorized to dense
    ascending ranks (negated for descending keys, which object dtypes and
    NaN-bearing floats cannot express by negating the values themselves);
    lexsort's stability keeps rows with fully-equal keys in input order.
    """
    keys = list(keys)
    if not keys:
        return frame.take(np.arange(frame.num_rows))
    lex_keys = []
    for values, ascending in keys:
        codes = np.unique(values, return_inverse=True)[1].astype(np.int64)
        if not ascending:
            codes = -codes
            if np.issubdtype(values.dtype, np.floating):
                nan_idx = np.flatnonzero(np.isnan(values))
                if len(nan_idx):
                    # The scalar tie-fix loop saw each NaN as a distinct
                    # key, so a descending sort emits NaN rows in
                    # reversed input order; per-row descending codes
                    # below every real code reproduce that.
                    codes[nan_idx] = codes.min() - 1 - nan_idx
        lex_keys.append(codes)
    # np.lexsort treats its *last* key as primary.
    order = np.lexsort(lex_keys[::-1])
    return frame.take(order)


def limit_frame(frame: Frame, n: Optional[int]) -> Frame:
    if n is None:
        return frame
    return frame.head(n)
