"""Relational operators over :class:`~repro.planner.expressions.Frame`.

These are the building blocks leaf servers, stem servers and the master
compose: scan (block decode + projection), filter, hash join, sort and
limit.  Grouped aggregation lives in :mod:`repro.engine.aggregates`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.columnar.block import Block
from repro.errors import ExecutionError
from repro.planner.expressions import Frame, Resolver, evaluate
from repro.sql.ast import BinaryOp, BinaryOperator, Column, Expr, JoinKind, walk


def scan_block(block: Block, columns: Sequence[str]) -> Frame:
    """Decode the requested columns of a block into a frame."""
    return Frame(block.columns(list(columns)), block.num_rows)


def apply_filter(frame: Frame, mask: np.ndarray) -> Frame:
    if len(mask) != frame.num_rows:
        raise ExecutionError(
            f"mask length {len(mask)} != frame rows {frame.num_rows}"
        )
    return frame.take(mask.astype(np.bool_))


def prefix_columns(frame: Frame, binding: str) -> Frame:
    """Qualify all column names with a table binding (pre-join)."""
    return Frame({f"{binding}.{n}": v for n, v in frame.columns.items()}, frame.num_rows)


def equi_join_keys(
    condition: Expr, left_binding: str, right_binding: str
) -> Optional[List[Tuple[Column, Column]]]:
    """Extract equi-join key pairs from an ON condition.

    Returns pairs ``(left_col, right_col)`` when the condition is a
    conjunction of cross-table equalities; None otherwise (the join then
    degrades to filtered cross product).
    """
    pairs: List[Tuple[Column, Column]] = []
    stack = [condition]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryOp) and node.op is BinaryOperator.AND:
            stack.extend((node.left, node.right))
            continue
        if not (
            isinstance(node, BinaryOp)
            and node.op is BinaryOperator.EQ
            and isinstance(node.left, Column)
            and isinstance(node.right, Column)
        ):
            return None
        a, b = node.left, node.right
        if a.table == right_binding or (b.table == left_binding):
            a, b = b, a
        pairs.append((a, b))
    return pairs or None


def _hash_codes(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Dense codes identifying each row's key tuple."""
    combined = None
    for col in arrays:
        uniques, codes = np.unique(col, return_inverse=True)
        codes = codes.astype(np.int64)
        combined = codes if combined is None else combined * np.int64(len(uniques) + 1) + codes
    if combined is None:
        raise ExecutionError("hash join needs at least one key")
    return combined


def hash_join(
    left: Frame,
    right: Frame,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    kind: JoinKind = JoinKind.INNER,
) -> Frame:
    """Hash join on equal-typed key columns.

    Column names must already be disjoint (use :func:`prefix_columns`).
    Outer variants emit unmatched rows with type-default padding (the
    engine's columns are dense; there is no NULL in the storage model).
    """
    overlap = set(left.columns) & set(right.columns)
    if overlap:
        raise ExecutionError(f"join input column collision: {sorted(overlap)}")
    if kind is JoinKind.RIGHT_OUTER:
        return hash_join(right, left, right_keys, left_keys, JoinKind.LEFT_OUTER)

    left_arrays = [left.column(k) for k in left_keys]
    right_arrays = [right.column(k) for k in right_keys]
    # Build the hash table on the smaller (right/build) side.
    table: Dict[Tuple, List[int]] = {}
    for i in range(right.num_rows):
        key = tuple(arr[i] for arr in right_arrays)
        table.setdefault(key, []).append(i)

    left_idx: List[int] = []
    right_idx: List[int] = []
    unmatched: List[int] = []
    for i in range(left.num_rows):
        key = tuple(arr[i] for arr in left_arrays)
        matches = table.get(key)
        if matches:
            left_idx.extend([i] * len(matches))
            right_idx.extend(matches)
        elif kind is JoinKind.LEFT_OUTER:
            unmatched.append(i)

    li = np.asarray(left_idx, dtype=np.int64)
    ri = np.asarray(right_idx, dtype=np.int64)
    out: Dict[str, np.ndarray] = {}
    for name, col in left.columns.items():
        matched_part = col[li]
        if unmatched:
            matched_part = np.concatenate((matched_part, col[np.asarray(unmatched)]))
        out[name] = matched_part
    pad = len(unmatched)
    for name, col in right.columns.items():
        matched_part = col[ri]
        if pad:
            matched_part = np.concatenate((matched_part, _default_pad(col, pad)))
        out[name] = matched_part
    return Frame(out, len(li) + pad)


def cross_join(left: Frame, right: Frame) -> Frame:
    overlap = set(left.columns) & set(right.columns)
    if overlap:
        raise ExecutionError(f"join input column collision: {sorted(overlap)}")
    n, m = left.num_rows, right.num_rows
    out: Dict[str, np.ndarray] = {}
    for name, col in left.columns.items():
        out[name] = np.repeat(col, m)
    for name, col in right.columns.items():
        out[name] = np.tile(col, n)
    return Frame(out, n * m)


def join(
    left: Frame,
    right: Frame,
    kind: JoinKind,
    condition: Optional[Expr],
    left_binding: str,
    right_binding: str,
    resolve: Resolver,
) -> Frame:
    """General join: equi fast path, else filtered cross product."""
    if kind is JoinKind.CROSS:
        return cross_join(left, right)
    if condition is None:
        raise ExecutionError("non-CROSS join requires a condition")
    pairs = equi_join_keys(condition, left_binding, right_binding)
    if pairs is not None:
        try:
            left_keys = [resolve_in(left, p[0]) for p in pairs]
            right_keys = [resolve_in(right, p[1]) for p in pairs]
        except ExecutionError:
            pairs = None
        else:
            return hash_join(left, right, left_keys, right_keys, kind)
    # Fallback: cross product, then filter; outer pads unmatched rows.
    product = cross_join(left, right)
    mask = evaluate(condition, product, resolve).astype(np.bool_)
    matched = product.take(mask)
    if kind is JoinKind.INNER:
        return matched
    # LEFT/RIGHT outer via the fallback path
    probe, build = (left, right) if kind is JoinKind.LEFT_OUTER else (right, left)
    matched_mask = mask.reshape(left.num_rows, right.num_rows)
    if kind is JoinKind.LEFT_OUTER:
        missing = ~matched_mask.any(axis=1)
    else:
        missing = ~matched_mask.any(axis=0)
    missing_rows = probe.take(missing)
    pad = missing_rows.num_rows
    out = {}
    for name, col in matched.columns.items():
        if name in probe.columns:
            out[name] = np.concatenate((col, missing_rows.columns[name]))
        else:
            out[name] = np.concatenate((col, _default_pad(col, pad)))
    return Frame(out, matched.num_rows + pad)


def resolve_in(frame: Frame, col: Column) -> str:
    if col.table is not None and f"{col.table}.{col.name}" in frame.columns:
        return f"{col.table}.{col.name}"
    if col.name in frame.columns:
        return col.name
    for key in frame.columns:
        if key.endswith(f".{col.name}"):
            return key
    raise ExecutionError(f"column {col} not found in join input")


def _default_pad(col: np.ndarray, n: int) -> np.ndarray:
    if col.dtype == object:
        pad = np.empty(n, dtype=object)
        pad[:] = ""
        return pad
    return np.zeros(n, dtype=col.dtype)


def sort_frame(frame: Frame, keys: Sequence[Tuple[np.ndarray, bool]]) -> Frame:
    """Stable multi-key sort; keys are (values, ascending) pairs."""
    order = np.arange(frame.num_rows)
    for values, ascending in reversed(list(keys)):
        take = values[order]
        idx = np.argsort(take, kind="stable")
        if not ascending:
            idx = idx[::-1]
            # keep stability within equal keys on descending sort
            idx = _stable_descending(take, idx)
        order = order[idx]
    return frame.take(order)


def _stable_descending(values: np.ndarray, reversed_idx: np.ndarray) -> np.ndarray:
    """Fix tie order after reversing an ascending stable sort."""
    sorted_vals = values[reversed_idx]
    out = reversed_idx.copy()
    start = 0
    n = len(sorted_vals)
    for i in range(1, n + 1):
        if i == n or sorted_vals[i] != sorted_vals[start]:
            out[start:i] = out[start:i][::-1]
            start = i
    return out


def limit_frame(frame: Frame, n: Optional[int]) -> Frame:
    if n is None:
        return frame
    return frame.head(n)
