"""Sub-plan execution (leaf side) and result finalization (master side).

Leaf path, per block (§IV-C-3 / Fig 7):

1. probe the SmartIndex cache with the scan CNF — fully covered filters
   skip both the block scan and predicate evaluation;
2. otherwise decode the needed column chunks, evaluate only the *missing*
   clauses (optionally through the B+ tree baseline), and insert fresh
   SmartIndex entries for every atom evaluated;
3. join against broadcast dimension tables, apply the post-join residual
   filter;
4. produce either per-group partial aggregates or a projected row frame.

Master path: merge partials bottom-up, materialize aggregate columns,
apply HAVING / ORDER BY / LIMIT, and project the output schema.

Every task returns a :class:`TaskExecutionReport` with the I/O bytes and
CPU ops it *would have* cost on the paper's hardware — the simulated
cluster charges these against its device models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.columnar.block import Block
from repro.columnar.schema import DataType, coerce_array
from repro.engine.aggregates import GroupedPartial, partial_aggregate
from repro.engine.operators import (
    apply_filter,
    join,
    limit_frame,
    prefix_columns,
    scan_block,
    sort_frame,
)
from repro.errors import ExecutionError
from repro.index.btree import BPlusTree
from repro.index.smartindex import ResidualClause, SmartIndexManager
from repro.planner.cnf import Clause, ConjunctiveForm
from repro.planner.cost import (
    OPS_PER_COMPARISON,
    OPS_PER_CONTAINS,
    OPS_PER_DECODE,
    OPS_PER_INDEX_ROW,
    atom_saved_seconds,
)
from repro.planner.expressions import Frame, evaluate, make_qualified_resolver
from repro.planner.physical import PhysicalPlan, ScanTask
from repro.sql.analyzer import AnalyzedQuery
from repro.sql.ast import (
    AggregateCall,
    BinaryOp,
    BinaryOperator,
    Column,
    Expr,
    FunctionCall,
    Negate,
    NotOp,
    OrderItem,
    Star,
)

#: Provides a prebuilt B+ tree for (block_id, column), or None.
BTreeProvider = Callable[[str, str], Optional[BPlusTree]]


@dataclass
class TaskExecutionReport:
    """Cost accounting for one executed scan task."""

    task_id: str
    rows_in_block: int = 0
    rows_matched: int = 0
    io_bytes: int = 0
    io_seeks: int = 0
    cpu_ops: float = 0.0
    index_full_cover: bool = False
    index_clause_hits: int = 0
    index_clause_misses: int = 0
    btree_clauses: int = 0
    scale_factor: float = 1.0
    #: Semantic-index extras (zero unless the manager runs semantic=True):
    #: atoms answered by bitmap-algebra composition, clauses answered by
    #: a candidate mask, and the summed candidate row fraction of those
    #: clauses (mean = sum / clauses).
    index_subsumption_hits: int = 0
    index_residual_clauses: int = 0
    index_residual_fraction: float = 0.0
    #: Fused-pipeline extras (:mod:`repro.engine.pipeline`); defaults
    #: keep operator-at-a-time reports — and the spans built from them —
    #: byte-identical.  ``morsel_wall_s`` is real wall-clock (library
    #: time, never charged to the simulated clock).
    fused: bool = False
    morsels: int = 0
    workers: int = 1
    morsel_wall_s: float = 0.0

    @property
    def modeled_io_bytes(self) -> float:
        return self.io_bytes * self.scale_factor

    @property
    def modeled_cpu_ops(self) -> float:
        return self.cpu_ops * self.scale_factor


@dataclass
class TaskResult:
    """What a leaf returns upstream for one task."""

    task_id: str
    partial: Optional[GroupedPartial] = None
    frame: Optional[Frame] = None
    report: TaskExecutionReport = None  # type: ignore[assignment]

    def payload_bytes(self) -> int:
        """Wire-size estimate of this result for the network model."""
        if self.partial is not None:
            return self.partial.estimated_bytes()
        if self.frame is not None:
            return 64 + sum(
                v.nbytes if v.dtype != object else sum(len(str(x)) + 8 for x in v)
                for v in self.frame.columns.values()
            )
        return 64

    def modeled_payload_bytes(self) -> float:
        """Production-scale wire size.

        Row frames scale with the data (each materialized row models
        ``scale_factor`` production rows); aggregate partials don't —
        their size tracks group cardinality, which is scale-invariant.
        """
        if self.frame is not None and self.report is not None:
            return self.payload_bytes() * self.report.scale_factor
        return float(self.payload_bytes())


def _resolver_for(analyzed: AnalyzedQuery, frame: Frame, qualified: bool):
    """Resolve AST columns against a task frame.

    Leaves produce bare column names for single-table plans and
    ``binding.column`` names once joins are involved.
    """

    def resolve(col: Column) -> str:
        res = analyzed.resolutions.get((col.table, col.name))
        if res is not None:
            key = f"{res.binding}.{res.field.name}" if qualified else res.field.name
            if key in frame.columns:
                return key
        return make_qualified_resolver(frame)(col)

    return resolve


def execute_scan_task(
    task: ScanTask,
    plan: PhysicalPlan,
    block: Block,
    broadcast_frames: Optional[Dict[str, Frame]] = None,
    index_manager: Optional[SmartIndexManager] = None,
    btree_provider: Optional[BTreeProvider] = None,
    now: float = 0.0,
    span=None,
    layout=None,
) -> TaskResult:
    """Run one scan task against its (already fetched) block.

    ``span`` is the attempt's :class:`~repro.obs.trace.Span` (or None);
    the index probe is recorded as a child and the row counts as tags.

    ``layout`` is the :class:`~repro.storage.layouts.LayoutSpec` the
    served block carries (None for the base layout).  It never changes
    *what* is computed — evaluation runs exact on every row — only what
    the scan charges: a sorted variant pays its binary-searched
    candidate fraction of the non-sort chunks, and a co-partitioned
    variant pays the clustered join rate.  The caller is responsible for
    passing ``index_manager=None`` alongside a non-base layout (variant
    row order invalidates whole-block bitvectors, as with row slices).
    """
    row_slice = task.row_slice
    if row_slice is not None:
        layout = None  # slices are defined on base row order only
    if row_slice is not None:
        # Adaptive sub-task (S53): cover only rows [lo, hi) of the block.
        # The SmartIndex and B+ trees are whole-block structures — a mask
        # computed on a slice must neither consult nor feed them, or a
        # partial answer would be reused for a full-block probe.
        index_manager = None
        btree_provider = None
        lo = max(0, min(int(row_slice[0]), block.num_rows))
        hi = max(lo, min(int(row_slice[1]), block.num_rows))
        slice_rows = hi - lo
    report = TaskExecutionReport(
        task_id=task.task_id,
        rows_in_block=block.num_rows if row_slice is None else slice_rows,
        scale_factor=block.scale_factor,
    )
    cnf = plan.scan_cnf
    analyzed = plan.analyzed

    mask, missing, residuals = _filter_mask(
        task, cnf, block, index_manager, btree_provider, now, report, span=span
    )

    payload_columns = _payload_columns(task, plan)
    if report.index_full_cover and mask is not None and not mask.any():
        # Fully index-covered and empty: nothing to read at all.
        frame = Frame({c: np.empty(0, dtype=_np_dtype(analyzed, task, c)) for c in payload_columns}, 0)
    else:
        read_columns = payload_columns if report.index_full_cover else list(task.columns)
        if read_columns:
            if residuals:
                io_bytes, decode_ops = _semantic_read_costs(
                    block, read_columns, residuals, missing, payload_columns
                )
                report.io_bytes += io_bytes
                report.cpu_ops += decode_ops
            elif row_slice is not None:
                # Proportional charge: a slice reads its fraction of every
                # chunk, so summed sub-task costs equal the whole block's.
                fraction = slice_rows / max(1, block.num_rows)
                report.io_bytes += int(round(block.column_bytes(read_columns) * fraction))
                report.cpu_ops += OPS_PER_DECODE * slice_rows * len(read_columns)
            else:
                candidate_rows = (
                    sorted_candidate_rows_for(layout, block, cnf, read_columns)
                    if layout is not None
                    else None
                )
                if candidate_rows is not None:
                    # Sorted variant (S54): a binary search over the sort
                    # column bounds the candidate range, so the scan pays
                    # the sort chunk in full plus only the candidates'
                    # share of every other chunk.  Evaluation below stays
                    # exact over all rows — only the charge shrinks.
                    fraction = candidate_rows / max(1, block.num_rows)
                    sort_col = layout.sort_column
                    rest = [c for c in read_columns if c != sort_col]
                    report.io_bytes += block.column_bytes([sort_col]) + int(
                        round(block.column_bytes(rest) * fraction)
                    )
                    report.cpu_ops += (
                        OPS_PER_DECODE * block.num_rows
                        + OPS_PER_DECODE * candidate_rows * len(rest)
                        + 64.0  # the binary search itself
                    )
                else:
                    report.io_bytes += block.column_bytes(read_columns)
                    report.cpu_ops += OPS_PER_DECODE * block.num_rows * len(read_columns)
            report.io_seeks += 1
        frame = scan_block(block, read_columns) if read_columns else Frame(
            {}, block.num_rows if row_slice is None else slice_rows
        )
        if row_slice is not None and frame.columns:
            frame = Frame({n: v[lo:hi] for n, v in frame.columns.items()}, slice_rows)
        if missing:
            mask = _evaluate_missing(missing, frame, mask, index_manager, task, now, report)
        if residuals:
            mask = _evaluate_residuals(residuals, frame, mask, index_manager, task, now, report)
        if mask is not None:
            frame = apply_filter(frame, mask)
            frame = frame.select(payload_columns)
        else:
            frame = frame.select(payload_columns)
    report.rows_matched = frame.num_rows

    qualified = plan.has_joins
    if qualified:
        frame = prefix_columns(frame, task.binding)
        frame = _apply_broadcast_joins(
            frame, plan, broadcast_frames or {}, report, layout=layout
        )
    if plan.post_filter is not None and frame.num_rows > 0:
        resolve = _resolver_for(analyzed, frame, qualified)
        post_mask = evaluate(plan.post_filter, frame, resolve).astype(np.bool_)
        report.cpu_ops += 2.0 * frame.num_rows
        frame = apply_filter(frame, post_mask)

    if plan.is_aggregate:
        partial = _partial_aggregate(frame, plan, qualified, report)
        return TaskResult(task.task_id, partial=partial, report=report)

    output_frame = _project_task_frame(frame, plan, qualified)
    if analyzed.query.limit is not None:
        output_frame = _push_down_limit(output_frame, plan, qualified)
    return TaskResult(task.task_id, frame=output_frame, report=report)


def _np_dtype(analyzed: AnalyzedQuery, task: ScanTask, column: str):
    table = analyzed.tables[task.binding]
    return table.schema.field(column).dtype.numpy_dtype


def _payload_columns(task: ScanTask, plan: PhysicalPlan) -> List[str]:
    """Columns needed beyond predicate evaluation (outputs, joins,
    grouping, residual filters) — precomputed by the planner."""
    return list(plan.payload_columns)


def _filter_mask(
    task: ScanTask,
    cnf: ConjunctiveForm,
    block: Block,
    index_manager: Optional[SmartIndexManager],
    btree_provider: Optional[BTreeProvider],
    now: float,
    report: TaskExecutionReport,
    span=None,
) -> Tuple[Optional[np.ndarray], List[Clause], List[ResidualClause]]:
    """Resolve as much of the scan filter as possible without scanning.

    Returns ``(mask, missing, residuals)``; ``residuals`` is only ever
    non-empty for a semantic-mode index manager — clauses answered with
    a candidate superset mask that :func:`_evaluate_residuals` finishes
    on candidate rows only.
    """
    if not cnf.clauses:
        return None, [], []
    mask_bv = None
    missing = list(cnf.clauses)
    residuals: List[ResidualClause] = []
    if index_manager is not None:
        probe = span.child("index_probe", now) if span is not None else None
        if index_manager.semantic:
            before_sub = index_manager.stats.subsumption_hits
            mask_bv, missing, residuals = index_manager.cover_semantic(
                block.block_id, cnf, now, span=probe
            )
            report.index_subsumption_hits += (
                index_manager.stats.subsumption_hits - before_sub
            )
            report.index_residual_clauses += len(residuals)
            report.index_residual_fraction += sum(r.fraction for r in residuals)
        else:
            mask_bv, missing = index_manager.cover(block.block_id, cnf, now, span=probe)
        covered = len(cnf.clauses) - len(missing) - len(residuals)
        report.index_clause_hits += covered
        report.index_clause_misses += len(missing)
        # Candidate-mask application costs the same bitvector pass as a
        # covered clause.
        report.cpu_ops += OPS_PER_INDEX_ROW * block.num_rows * max(
            covered + len(residuals), 0
        )
        if probe is not None:
            probe.tag("clauses", len(cnf.clauses))
            probe.tag("covered", covered)
            probe.tag("full_cover", not missing and not residuals)
            probe.finish(now)
        if not missing and not residuals:
            report.index_full_cover = True
            full = mask_bv.to_bool_array() if mask_bv is not None else None
            return full, [], []
    # Try the B+ tree baseline for still-missing single-atom clauses.
    if btree_provider is not None:
        still_missing: List[Clause] = []
        for clause in missing:
            resolved = _btree_clause(clause, block, btree_provider, report)
            if resolved is None:
                still_missing.append(clause)
            else:
                bv_arr = resolved
                if mask_bv is None:
                    combined = bv_arr
                else:
                    combined = mask_bv.to_bool_array() & bv_arr
                from repro.index.bitmap import BitVector

                mask_bv = BitVector.from_bool_array(combined)
        missing = still_missing
        if not missing and not residuals and mask_bv is not None:
            # All clauses answered by B+ trees: same scan-skipping benefit.
            report.index_full_cover = True
            return mask_bv.to_bool_array(), [], []
    return (
        (mask_bv.to_bool_array() if mask_bv is not None else None),
        missing,
        residuals,
    )


def _btree_clause(
    clause: Clause,
    block: Block,
    btree_provider: BTreeProvider,
    report: TaskExecutionReport,
) -> Optional[np.ndarray]:
    if not clause.is_indexable:
        return None
    masks = []
    for atom in clause.atoms:
        tree = btree_provider(block.block_id, atom.column)
        if tree is None or not tree.supports(atom):
            return None
        mask = tree.evaluate(atom)
        # Charge tree traversal + per-match materialization.
        report.cpu_ops += 64.0 * tree.height + 2.0 * int(mask.sum())
        masks.append(mask)
    report.btree_clauses += 1
    out = masks[0]
    for m in masks[1:]:
        out = out | m
    return out


def _evaluate_missing(
    missing: Sequence[Clause],
    frame: Frame,
    mask: Optional[np.ndarray],
    index_manager: Optional[SmartIndexManager],
    task: ScanTask,
    now: float,
    report: TaskExecutionReport,
) -> np.ndarray:
    """Evaluate the uncovered clauses on real data; feed the index."""
    combined = mask
    for clause in missing:
        clause_mask: Optional[np.ndarray] = None
        for atom in clause.atoms:
            values = frame.column(atom.column)
            atom_mask = atom.evaluate(values)
            ops = OPS_PER_CONTAINS if atom.op is BinaryOperator.CONTAINS else OPS_PER_COMPARISON
            report.cpu_ops += ops * len(values)
            if index_manager is not None:
                if index_manager.semantic:
                    index_manager.insert(
                        task.block.block_id,
                        atom,
                        atom_mask,
                        now,
                        saved_s=atom_saved_seconds(task.block, atom),
                    )
                else:
                    index_manager.insert(task.block.block_id, atom, atom_mask, now)
            clause_mask = atom_mask if clause_mask is None else (clause_mask | atom_mask)
        for residual in clause.residuals:
            res_mask = evaluate(residual, frame).astype(np.bool_)
            report.cpu_ops += 2.0 * frame.num_rows
            clause_mask = res_mask if clause_mask is None else (clause_mask | res_mask)
        if clause_mask is None:
            raise ExecutionError("clause with neither atoms nor residuals")
        combined = clause_mask if combined is None else (combined & clause_mask)
    assert combined is not None
    return combined


def sorted_candidate_rows_for(layout, block: Block, cnf, read_columns) -> Optional[int]:
    """Candidate-row count for a sorted-variant read, or None when the
    layout prunes nothing for this CNF (then the full price applies)."""
    if layout.sort_column is None or layout.sort_column not in read_columns:
        return None
    from repro.storage.layouts import sorted_candidate_rows

    return sorted_candidate_rows(block, layout.sort_column, cnf)


def _expr_columns(expr: Expr) -> set:
    """Column names referenced anywhere in an expression tree."""
    out: set = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Column):
            out.add(node.name)
        else:
            stack.extend(node.children())
    return out


def _semantic_read_costs(
    block: Block,
    read_columns: Sequence[str],
    residuals: Sequence[ResidualClause],
    missing: Sequence[Clause],
    payload_columns: Sequence[str],
) -> Tuple[int, float]:
    """I/O bytes and decode ops for a scan with residual candidate masks.

    A column referenced *only* by residual clauses is charged at that
    clause's candidate fraction (the scan touches candidate rows only);
    payload columns and anything a fully-missing clause needs are read
    at full price, same as the non-semantic path.
    """
    fractions: Dict[str, float] = {}
    for r in residuals:
        for col in r.clause.columns:
            fractions[col] = max(fractions.get(col, 0.0), r.fraction)
    full_price = set(payload_columns)
    for clause in missing:
        full_price.update(clause.columns)
        for expr in clause.residuals:
            full_price.update(_expr_columns(expr))
    io = 0.0
    ops = 0.0
    for col in read_columns:
        nbytes = block.column_bytes([col])
        if col in fractions and col not in full_price:
            io += nbytes * fractions[col]
            ops += OPS_PER_DECODE * block.num_rows * fractions[col]
        else:
            io += nbytes
            ops += OPS_PER_DECODE * block.num_rows
    return int(io), ops


def _evaluate_residuals(
    residuals: Sequence[ResidualClause],
    frame: Frame,
    mask: Optional[np.ndarray],
    index_manager: Optional[SmartIndexManager],
    task: ScanTask,
    now: float,
    report: TaskExecutionReport,
) -> np.ndarray:
    """Finish candidate-masked clauses by evaluating on candidate rows.

    Every atom is evaluated over the candidate subset only and scattered
    back into a zeroed full-length mask.  That scatter is *exact*: a row
    where the atom holds satisfies the clause, and the candidate mask is
    a superset of the clause's true-set, so no atom-true row sits
    outside the candidate rows.  The scattered masks are therefore safe
    to insert into the index as ordinary entries.
    """
    combined = mask
    for r in residuals:
        cand = r.mask.to_bool_array()
        idx = np.flatnonzero(cand)
        clause_sub = np.zeros(len(idx), dtype=np.bool_)
        for atom in r.clause.atoms:
            values = frame.column(atom.column)[idx]
            sub = np.asarray(atom.evaluate(values), dtype=np.bool_)
            ops = OPS_PER_CONTAINS if atom.op is BinaryOperator.CONTAINS else OPS_PER_COMPARISON
            report.cpu_ops += ops * len(idx)
            if index_manager is not None:
                full_atom = np.zeros(len(cand), dtype=np.bool_)
                full_atom[idx] = sub
                index_manager.insert(
                    task.block.block_id,
                    atom,
                    full_atom,
                    now,
                    saved_s=atom_saved_seconds(task.block, atom),
                )
            clause_sub |= sub
        clause_full = np.zeros(len(cand), dtype=np.bool_)
        clause_full[idx] = clause_sub
        combined = clause_full if combined is None else (combined & clause_full)
    assert combined is not None
    return combined


def _apply_broadcast_joins(
    frame: Frame,
    plan: PhysicalPlan,
    broadcast_frames: Dict[str, Frame],
    report: TaskExecutionReport,
    layout=None,
) -> Frame:
    analyzed = plan.analyzed
    for bc in plan.broadcasts:
        try:
            dim = broadcast_frames[bc.binding]
        except KeyError:
            raise ExecutionError(f"missing broadcast table {bc.binding!r}") from None
        dim_q = prefix_columns(dim, bc.binding)
        resolve = make_qualified_resolver(frame)
        before = frame.num_rows
        frame = join(
            frame,
            dim_q,
            bc.kind,
            bc.condition,
            left_binding=plan.analyzed.base_binding,
            right_binding=bc.binding,
            resolve=make_qualified_resolver(
                Frame({**frame.columns, **dim_q.columns}, 0)
            ),
        )
        # Co-partitioned variant (S54): when the probe side arrives
        # clustered by the join key, the hash probe's cache behaviour
        # halves the effective per-row rate.
        factor = 3.0
        if layout is not None and layout.copartition_column is not None:
            cond_cols = _expr_columns(bc.condition) if bc.condition is not None else set()
            if layout.copartition_column in cond_cols:
                factor = 1.5
        report.cpu_ops += factor * (before + dim.num_rows)
    return frame


def _rewrite(expr: Expr, mapping: Dict[Expr, Column]) -> Expr:
    """Replace aggregate calls / group keys with materialized columns."""
    if expr in mapping:
        return mapping[expr]
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, _rewrite(expr.left, mapping), _rewrite(expr.right, mapping))
    if isinstance(expr, NotOp):
        return NotOp(_rewrite(expr.operand, mapping))
    if isinstance(expr, Negate):
        return Negate(_rewrite(expr.operand, mapping))
    if isinstance(expr, FunctionCall):
        return FunctionCall(expr.name, tuple(_rewrite(a, mapping) for a in expr.args))
    if isinstance(expr, AggregateCall):
        raise ExecutionError(f"aggregate {expr} was not materialized")
    return expr


def _partial_aggregate(
    frame: Frame, plan: PhysicalPlan, qualified: bool, report: TaskExecutionReport
) -> GroupedPartial:
    analyzed = plan.analyzed
    resolve = _resolver_for(analyzed, frame, qualified)
    key_arrays = [evaluate(k, frame, resolve) for k in analyzed.group_keys]
    agg_arrays: List[Optional[np.ndarray]] = []
    for agg in analyzed.aggregates:
        if isinstance(agg.argument, Star):
            agg_arrays.append(None)
        else:
            agg_arrays.append(evaluate(agg.argument, frame, resolve))
    report.cpu_ops += 2.0 * frame.num_rows * max(1, len(analyzed.aggregates))
    return partial_aggregate(
        key_arrays, [a.func for a in analyzed.aggregates], agg_arrays, frame.num_rows
    )


def _push_down_limit(frame: Frame, plan: PhysicalPlan, qualified: bool) -> Frame:
    """Top-k pushdown: a leaf never ships more rows than the query's
    LIMIT can use.

    Without ORDER BY, any ``limit`` rows do.  With ORDER BY, the leaf
    pre-sorts *when every sort key is a plain column it holds* — the
    master's final sort then re-establishes the global order over at most
    ``tasks x limit`` rows instead of every matching row.  This is the
    kind of interactive-response measure §III-C calls for.
    """
    analyzed = plan.analyzed
    limit = analyzed.query.limit
    assert limit is not None
    if frame.num_rows <= limit:
        return frame
    if not analyzed.query.order_by:
        return limit_frame(frame, limit)
    resolve = _resolver_for(analyzed, frame, qualified)
    keys = []
    for item in analyzed.query.order_by:
        expr = item.expr
        if not isinstance(expr, Column):
            return frame  # expression / alias keys: leave global handling
        try:
            keys.append((frame.column(resolve(expr)), item.ascending))
        except ExecutionError:
            return frame
    return limit_frame(sort_frame(frame, keys), limit)


def _project_task_frame(frame: Frame, plan: PhysicalPlan, qualified: bool) -> Frame:
    """Keep only the columns later stages reference, in canonical names."""
    analyzed = plan.analyzed
    needed: Dict[str, np.ndarray] = {}
    for binding in analyzed.tables:
        for col in analyzed.columns_of(binding):
            key = f"{binding}.{col}" if qualified else col
            if key in frame.columns:
                needed[key] = frame.columns[key]
    return Frame(needed, frame.num_rows)


# -- master-side finalization ---------------------------------------------


@dataclass
class QueryResult:
    """The final answer handed back to the client."""

    columns: List[str]
    frame: Frame
    #: Fraction of planned tasks whose results arrived (1.0 normally;
    #: lower when a time-limited query returned early, §III-C).
    processed_ratio: float = 1.0
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        return self.frame.num_rows

    def rows(self) -> List[Tuple]:
        cols = [self.frame.columns[c] for c in self.columns]
        return [tuple(_python_scalar(c[i]) for c in cols) for i in range(self.frame.num_rows)]

    def column(self, name: str) -> np.ndarray:
        return self.frame.column(name)


def _python_scalar(v):
    if isinstance(v, np.integer):
        return int(v)
    if isinstance(v, np.floating):
        return float(v)
    if isinstance(v, np.bool_):
        return bool(v)
    return v


def finalize(
    plan: PhysicalPlan,
    results: Sequence[TaskResult],
    processed_ratio: float = 1.0,
) -> QueryResult:
    """Combine task results into the client-visible answer."""
    analyzed = plan.analyzed
    if plan.is_aggregate:
        frame = _materialize_aggregates(plan, results)
        mapping = _aggregate_mapping(analyzed)
        qualified = False
        resolve = make_qualified_resolver(frame)
    else:
        frames = [r.frame for r in results if r.frame is not None]
        frame = Frame.concat(frames) if frames else _empty_output(plan)
        mapping = {}
        qualified = plan.has_joins
        resolve = _resolver_for(analyzed, frame, qualified)

    if plan.is_aggregate and analyzed.query.having is not None:
        having = _rewrite(analyzed.query.having, mapping)
        mask = evaluate(having, frame, resolve).astype(np.bool_)
        frame = apply_filter(frame, mask)

    if analyzed.query.order_by:
        keys = []
        for item in analyzed.query.order_by:
            expr = _order_target(item, analyzed, mapping)
            keys.append((evaluate(expr, frame, resolve), item.ascending))
        frame = sort_frame(frame, keys)

    frame = limit_frame(frame, analyzed.query.limit)

    out_columns: Dict[str, np.ndarray] = {}
    for name, expr in zip(analyzed.output_names, analyzed.output_exprs):
        rewritten = _rewrite(expr, mapping) if mapping else expr
        out_columns[name] = evaluate(rewritten, frame, resolve)
    output = Frame(out_columns, frame.num_rows)
    return QueryResult(
        columns=list(analyzed.output_names),
        frame=output,
        processed_ratio=processed_ratio,
    )


def _order_target(item: OrderItem, analyzed: AnalyzedQuery, mapping: Dict[Expr, Column]) -> Expr:
    expr = item.expr
    if isinstance(expr, Column) and expr.table is None:
        if (None, expr.name) not in analyzed.resolutions:
            for name, out in zip(analyzed.output_names, analyzed.output_exprs):
                if name == expr.name:
                    expr = out
                    break
    return _rewrite(expr, mapping) if mapping else expr


def _aggregate_mapping(analyzed: AnalyzedQuery) -> Dict[Expr, Column]:
    mapping: Dict[Expr, Column] = {}
    for i, key in enumerate(analyzed.group_keys):
        mapping[key] = Column(f"__key{i}")
    for i, agg in enumerate(analyzed.aggregates):
        mapping[agg] = Column(f"__agg{i}")
    return mapping


def _materialize_aggregates(plan: PhysicalPlan, results: Sequence[TaskResult]) -> Frame:
    analyzed = plan.analyzed
    merged: Optional[GroupedPartial] = None
    for r in results:
        if r.partial is None:
            continue
        if merged is None:
            merged = GroupedPartial(r.partial.num_keys, list(r.partial.agg_funcs))
        merged.merge(r.partial)
    if merged is None:
        merged = GroupedPartial(len(analyzed.group_keys), [a.func for a in analyzed.aggregates])
        if not analyzed.group_keys:
            merged.state_for(())
    keys = sorted(merged.groups.keys(), key=lambda k: tuple(str(v) for v in k))
    columns: Dict[str, np.ndarray] = {}
    for i, key_expr in enumerate(analyzed.group_keys):
        dtype = analyzed.type_of(key_expr)
        columns[f"__key{i}"] = coerce_array([k[i] for k in keys], dtype)
    for j, agg in enumerate(analyzed.aggregates):
        dtype = analyzed.type_of(agg)
        values = [_final_or_default(merged.groups[k][j], dtype) for k in keys]
        columns[f"__agg{j}"] = coerce_array(values, dtype)
    return Frame(columns, len(keys))


def _final_or_default(state, dtype: DataType):
    value = state.final()
    if value is not None:
        return value
    if dtype is DataType.STRING:
        return ""
    if dtype is DataType.FLOAT64:
        return float("nan")
    return 0


def _empty_output(plan: PhysicalPlan) -> Frame:
    analyzed = plan.analyzed
    qualified = plan.has_joins
    columns: Dict[str, np.ndarray] = {}
    for binding, table in analyzed.tables.items():
        for col in analyzed.columns_of(binding):
            key = f"{binding}.{col}" if qualified else col
            columns[key] = np.empty(0, dtype=table.schema.field(col).dtype.numpy_dtype)
    return Frame(columns, 0)
