"""Task-result serialization for the §V-C write data flow.

"Although queries on Feisu are read-only, Feisu still needs to write
data (e.g., temporary data and intermediate results) during query
execution.  These written data are transmitted in a bypass channel to a
global distributed storage ... If the data are too big, it will be
dumped to global storage and only the location information is passed."

Large task results are therefore *spilled*: the leaf serializes the
result with this module, writes the bytes to the global filesystem over
the WRITE traffic class, and ships only the path upstream; the master
fetches and deserializes on the READ flow.

Wire format: 1 tag byte, then either a columnar block (frames) or a
length-prefixed structure of group keys and aggregate states (partials).
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Tuple

import numpy as np

from repro.columnar.block import Block
from repro.columnar.schema import DataType, Schema, coerce_array
from repro.engine.aggregates import (
    AvgState,
    CountState,
    GroupedPartial,
    MaxState,
    MinState,
    SumState,
    make_state,
)
from repro.engine.executor import TaskExecutionReport, TaskResult
from repro.errors import ExecutionError
from repro.planner.expressions import Frame

_TAG_FRAME = 0x01
_TAG_PARTIAL = 0x02


def _infer_dtype(array: np.ndarray) -> DataType:
    if array.dtype == object:
        return DataType.STRING
    if array.dtype == np.bool_:
        return DataType.BOOL
    if np.issubdtype(array.dtype, np.integer):
        return DataType.INT64
    return DataType.FLOAT64


def _frame_to_bytes(frame: Frame) -> bytes:
    schema = Schema.from_dict(
        {name: _infer_dtype(col).value for name, col in frame.columns.items()}
    )
    columns = {
        name: col if _infer_dtype(col) is DataType.STRING else col.astype(
            schema.field(name).dtype.numpy_dtype
        )
        for name, col in frame.columns.items()
    }
    if not columns:
        # A frame with no columns still carries a row count.
        return json.dumps({"empty_rows": frame.num_rows}).encode()
    return Block.from_arrays("spill", schema, columns).to_bytes()


def _frame_from_bytes(payload: bytes) -> Frame:
    if payload[:1] == b"{":
        return Frame({}, json.loads(payload.decode())["empty_rows"])
    block = Block.from_bytes(payload)
    return Frame({name: block.column(name) for name in block.schema.names}, block.num_rows)


_STATE_PACKERS = {
    "COUNT": lambda s: {"n": s.n},
    "SUM": lambda s: {"total": float(s.total), "seen": s.seen, "int": isinstance(s.total, (int, np.integer))},
    "AVG": lambda s: {"total": s.total, "n": s.n},
    "MIN": lambda s: {"value": _json_value(s.value)},
    "MAX": lambda s: {"value": _json_value(s.value)},
}


def _json_value(v):
    if isinstance(v, np.integer):
        return int(v)
    if isinstance(v, np.floating):
        return float(v)
    if isinstance(v, np.bool_):
        return bool(v)
    return v


def _restore_state(func: str, data: Dict):
    state = make_state(func)
    if func == "COUNT":
        state.n = data["n"]
    elif func == "SUM":
        state.seen = data["seen"]
        state.total = int(data["total"]) if data["int"] else data["total"]
    elif func == "AVG":
        state.total = data["total"]
        state.n = data["n"]
    else:  # MIN / MAX
        state.value = data["value"]
    return state


def _partial_to_bytes(partial: GroupedPartial) -> bytes:
    doc = {
        "num_keys": partial.num_keys,
        "agg_funcs": partial.agg_funcs,
        "rows_scanned": partial.rows_scanned,
        "groups": [
            {
                "key": [_json_value(k) for k in key],
                "states": [
                    _STATE_PACKERS[f](s) for f, s in zip(partial.agg_funcs, states)
                ],
            }
            for key, states in partial.groups.items()
        ],
    }
    return json.dumps(doc).encode()


def _partial_from_bytes(payload: bytes) -> GroupedPartial:
    doc = json.loads(payload.decode())
    partial = GroupedPartial(doc["num_keys"], list(doc["agg_funcs"]))
    partial.rows_scanned = doc["rows_scanned"]
    for group in doc["groups"]:
        key = tuple(group["key"])
        partial.groups[key] = [
            _restore_state(f, data) for f, data in zip(partial.agg_funcs, group["states"])
        ]
    return partial


def serialize_result(result: TaskResult) -> bytes:
    """Serialize a task result for spilling to global storage."""
    report = json.dumps(
        {
            "task_id": result.report.task_id,
            "rows_in_block": result.report.rows_in_block,
            "rows_matched": result.report.rows_matched,
            "io_bytes": result.report.io_bytes,
            "io_seeks": result.report.io_seeks,
            "cpu_ops": result.report.cpu_ops,
            "index_full_cover": result.report.index_full_cover,
            "index_clause_hits": result.report.index_clause_hits,
            "index_clause_misses": result.report.index_clause_misses,
            "btree_clauses": result.report.btree_clauses,
            "scale_factor": result.report.scale_factor,
            "index_subsumption_hits": result.report.index_subsumption_hits,
            "index_residual_clauses": result.report.index_residual_clauses,
            "index_residual_fraction": result.report.index_residual_fraction,
        }
    ).encode()
    if result.frame is not None:
        tag, body = _TAG_FRAME, _frame_to_bytes(result.frame)
    elif result.partial is not None:
        tag, body = _TAG_PARTIAL, _partial_to_bytes(result.partial)
    else:
        raise ExecutionError("cannot serialize a task result with no payload")
    return bytes([tag]) + struct.pack("<I", len(report)) + report + body


def deserialize_result(payload: bytes) -> TaskResult:
    """Inverse of :func:`serialize_result`."""
    tag = payload[0]
    (rlen,) = struct.unpack_from("<I", payload, 1)
    rdoc = json.loads(payload[5 : 5 + rlen].decode())
    report = TaskExecutionReport(
        task_id=rdoc["task_id"],
        rows_in_block=rdoc["rows_in_block"],
        rows_matched=rdoc["rows_matched"],
        io_bytes=rdoc["io_bytes"],
        io_seeks=rdoc["io_seeks"],
        cpu_ops=rdoc["cpu_ops"],
        index_full_cover=rdoc["index_full_cover"],
        index_clause_hits=rdoc["index_clause_hits"],
        index_clause_misses=rdoc["index_clause_misses"],
        btree_clauses=rdoc["btree_clauses"],
        scale_factor=rdoc["scale_factor"],
        # .get(): spills written before the semantic index lack these.
        index_subsumption_hits=rdoc.get("index_subsumption_hits", 0),
        index_residual_clauses=rdoc.get("index_residual_clauses", 0),
        index_residual_fraction=rdoc.get("index_residual_fraction", 0.0),
    )
    body = payload[5 + rlen :]
    if tag == _TAG_FRAME:
        return TaskResult(report.task_id, frame=_frame_from_bytes(body), report=report)
    if tag == _TAG_PARTIAL:
        return TaskResult(report.task_id, partial=_partial_from_bytes(body), report=report)
    raise ExecutionError(f"unknown spill tag {tag}")
