"""Mergeable aggregate states.

Feisu aggregates bottom-up through its server tree: leaves produce
partial states per group, stem servers merge them, and the master
finalizes (§III-B).  Every state here therefore supports the classic
``update / merge / final`` contract, and grouped partials know their own
approximate wire size so the network model can charge realistic transfer
costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import repeat
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.operators import _stable_order
from repro.errors import ExecutionError


class AggregateState:
    """One aggregate's running state for one group."""

    func = "?"

    def update(self, values: Optional[np.ndarray]) -> None:
        raise NotImplementedError

    def merge(self, other: "AggregateState") -> None:
        raise NotImplementedError

    def final(self):
        raise NotImplementedError


class CountState(AggregateState):
    func = "COUNT"

    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def update(self, values: Optional[np.ndarray]) -> None:
        if values is None:
            raise ExecutionError("COUNT update needs a row count or values")
        self.n += len(values)

    def update_count(self, n: int) -> None:
        self.n += n

    def merge(self, other: AggregateState) -> None:
        self.n += other.n  # type: ignore[attr-defined]

    def final(self) -> int:
        return self.n


class SumState(AggregateState):
    func = "SUM"

    __slots__ = ("total", "seen")

    def __init__(self) -> None:
        self.total = 0
        self.seen = False

    def update(self, values: Optional[np.ndarray]) -> None:
        if values is None or len(values) == 0:
            return
        self.total = self.total + values.sum()
        self.seen = True

    def merge(self, other: AggregateState) -> None:
        if other.seen:  # type: ignore[attr-defined]
            self.total = self.total + other.total  # type: ignore[attr-defined]
            self.seen = True

    def final(self):
        if not self.seen:
            return None  # SQL SUM over zero rows is NULL
        if isinstance(self.total, (np.integer, int)):
            return int(self.total)
        return float(self.total)


class MinState(AggregateState):
    func = "MIN"

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = None

    def update(self, values: Optional[np.ndarray]) -> None:
        if values is None or len(values) == 0:
            return
        lo = values.min()
        if self.value is None or lo < self.value:
            self.value = lo

    def merge(self, other: AggregateState) -> None:
        if other.value is not None:  # type: ignore[attr-defined]
            if self.value is None or other.value < self.value:  # type: ignore[attr-defined]
                self.value = other.value  # type: ignore[attr-defined]

    def final(self):
        return _to_python(self.value)


class MaxState(AggregateState):
    func = "MAX"

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = None

    def update(self, values: Optional[np.ndarray]) -> None:
        if values is None or len(values) == 0:
            return
        hi = values.max()
        if self.value is None or hi > self.value:
            self.value = hi

    def merge(self, other: AggregateState) -> None:
        if other.value is not None:  # type: ignore[attr-defined]
            if self.value is None or other.value > self.value:  # type: ignore[attr-defined]
                self.value = other.value  # type: ignore[attr-defined]

    def final(self):
        return _to_python(self.value)


class AvgState(AggregateState):
    func = "AVG"

    __slots__ = ("total", "n")

    def __init__(self) -> None:
        self.total = 0.0
        self.n = 0

    def update(self, values: Optional[np.ndarray]) -> None:
        if values is None or len(values) == 0:
            return
        self.total += float(values.sum())
        self.n += len(values)

    def merge(self, other: AggregateState) -> None:
        self.total += other.total  # type: ignore[attr-defined]
        self.n += other.n  # type: ignore[attr-defined]

    def final(self) -> Optional[float]:
        return self.total / self.n if self.n else None


_STATE_FACTORY = {
    "COUNT": CountState,
    "SUM": SumState,
    "MIN": MinState,
    "MAX": MaxState,
    "AVG": AvgState,
}


def make_state(func: str) -> AggregateState:
    try:
        return _STATE_FACTORY[func]()
    except KeyError:
        raise ExecutionError(f"unknown aggregate function {func!r}") from None


def _to_python(value):
    if value is None:
        return None
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


def group_rows(key_columns: Sequence[np.ndarray], num_rows: int) -> Tuple[np.ndarray, np.ndarray]:
    """Assign each row a dense group id.

    Returns ``(group_ids, representative_indices)`` where
    ``representative_indices[g]`` is the first row of group ``g``.
    With no key columns every row lands in group 0.
    """
    if not key_columns:
        ids = np.zeros(num_rows, dtype=np.int64)
        reps = np.zeros(1 if num_rows else 0, dtype=np.int64)
        if num_rows == 0:
            return ids, reps
        return ids, np.array([0], dtype=np.int64)
    combined = None
    for col in key_columns:
        uniques, codes = np.unique(col, return_inverse=True)
        codes = codes.astype(np.int64)
        if combined is None:
            combined = codes
        else:
            combined = combined * np.int64(len(uniques)) + codes
    _, reps, ids = np.unique(combined, return_index=True, return_inverse=True)
    return ids.astype(np.int64), reps.astype(np.int64)


@dataclass
class GroupedPartial:
    """Partial aggregation result travelling leaf → stem → master.

    ``groups`` maps the tuple of group-key values to one state per
    aggregate, in the plan's aggregate order.
    """

    num_keys: int
    agg_funcs: List[str]
    groups: Dict[Tuple, List[AggregateState]] = field(default_factory=dict)
    #: Rows the producing task actually scanned (partial-result accounting).
    rows_scanned: int = 0

    def state_for(self, key: Tuple) -> List[AggregateState]:
        states = self.groups.get(key)
        if states is None:
            states = [make_state(f) for f in self.agg_funcs]
            self.groups[key] = states
        return states

    def merge(self, other: "GroupedPartial") -> None:
        if other.num_keys != self.num_keys or other.agg_funcs != self.agg_funcs:
            raise ExecutionError("cannot merge incompatible partials")
        for key, states in other.groups.items():
            mine = self.state_for(key)
            for a, b in zip(mine, states):
                a.merge(b)
        self.rows_scanned += other.rows_scanned

    def estimated_bytes(self) -> int:
        """Wire-size estimate for the network cost model."""
        per_group = 16 * self.num_keys + 24 * len(self.agg_funcs)
        return 64 + per_group * len(self.groups)


#: The one NaN used in every group-key tuple.  ``nan != nan``, but tuple
#: equality (and dict hashing in Python ≥3.10) short-circuits on object
#: identity — so distinct NaN floats produced by different tasks would
#: never merge into one group, while a single shared object always does.
_NAN_KEY = float("nan")


def _canonical_key_values(values: List) -> List:
    """Replace every NaN key component with the shared ``_NAN_KEY``."""
    return [_NAN_KEY if isinstance(v, float) and v != v else v for v in values]


def _group_order(key_arrays: Sequence[np.ndarray], num_rows: int):
    """One stable sort bringing equal key tuples together.

    Returns ``(order, starts)``: ``order`` permutes rows so each group is
    a contiguous run beginning at ``starts[g]``; groups appear in key
    sort order (matching ``np.unique``), rows within a group in input
    order.  The single-key fast path needs no factorize pass at all —
    one argsort plus one adjacent-difference over the sorted values.
    """
    if len(key_arrays) == 1:
        col = key_arrays[0]
        if np.issubdtype(col.dtype, np.floating) and np.isnan(col).any():
            # NaN != NaN would split every NaN row into its own group;
            # factorize like the multi-key path (np.unique collapses
            # NaNs into one code) so all NaN rows share a group.
            col = np.unique(col, return_inverse=True)[1].astype(np.int64)
        order = _stable_order(col)
        svals = col[order]
        change = svals[1:] != svals[:-1]
    else:
        combined = None
        for col in key_arrays:
            uniques, codes = np.unique(col, return_inverse=True)
            codes = codes.astype(np.int64)
            if combined is None:
                combined = codes
            else:
                combined = combined * np.int64(len(uniques)) + codes
        order = _stable_order(combined)
        svals = combined[order]
        change = svals[1:] != svals[:-1]
    starts = np.concatenate(([0], np.flatnonzero(change) + 1))
    return order, starts


def _state_column(func: str, arr: Optional[np.ndarray], sorted_arr, starts, counts):
    """All groups' states for one aggregate, built from bulk reductions.

    One ``np.ufunc.reduceat`` (or the shared ``counts`` list) computes
    every group's value; states are then mass-allocated via ``__new__``
    and filled in a tight loop — no per-group slicing or dispatch.

    ``reduceat`` accumulates float64 sums sequentially where the scalar
    path's ``values.sum()`` used pairwise summation, so SUM/AVG over
    float columns can differ from the scalar result in the last ulps for
    large groups; COUNT/MIN/MAX and integer SUM/AVG stay exact.
    """
    num_groups = len(starts)
    if func == "COUNT" or arr is None:
        states = list(map(CountState.__new__, repeat(CountState, num_groups)))
        for state, n in zip(states, counts):
            state.n = n
        return states
    if func == "SUM":
        if np.issubdtype(sorted_arr.dtype, np.integer):
            # match np.sum's promotion of narrow ints to platform int
            sorted_arr = sorted_arr.astype(np.int64)
        sums = np.add.reduceat(sorted_arr, starts)
        states = list(map(SumState.__new__, repeat(SumState, num_groups)))
        for state, total in zip(states, sums.tolist()):
            state.total = total
            state.seen = True
        return states
    if func == "MIN" or func == "MAX":
        ufunc = np.minimum if func == "MIN" else np.maximum
        values = ufunc.reduceat(sorted_arr, starts)
        cls = MinState if func == "MIN" else MaxState
        states = list(map(cls.__new__, repeat(cls, num_groups)))
        for state, value in zip(states, values.tolist()):
            state.value = value
        return states
    if func == "AVG":
        if np.issubdtype(sorted_arr.dtype, np.integer):
            # Sum exactly in int64 and convert each group total once:
            # element-wise float conversion first would lose low bits of
            # values beyond 2**53.
            totals = [
                float(t) for t in np.add.reduceat(sorted_arr.astype(np.int64), starts).tolist()
            ]
        else:
            if sorted_arr.dtype != np.float64:
                sorted_arr = sorted_arr.astype(np.float64)
            totals = np.add.reduceat(sorted_arr, starts).tolist()
        states = list(map(AvgState.__new__, repeat(AvgState, num_groups)))
        for state, total, n in zip(states, totals, counts):
            state.total = total
            state.n = n
        return states
    raise ExecutionError(f"unknown aggregate function {func!r}")


def partial_aggregate(
    key_arrays: Sequence[np.ndarray],
    agg_funcs: Sequence[str],
    agg_arrays: Sequence[Optional[np.ndarray]],
    num_rows: int,
) -> GroupedPartial:
    """Aggregate one frame into per-group partial states.

    ``agg_arrays[i]`` is None for COUNT(*) (row counting needs no column).

    All reductions are vectorized: one stable sort brings each group's
    rows together, then every aggregate computes all groups' values in a
    single ``np.ufunc.reduceat`` / counts pass over the sorted values —
    no per-group slicing loop.
    """
    partial = GroupedPartial(num_keys=len(key_arrays), agg_funcs=list(agg_funcs))
    partial.rows_scanned = num_rows
    if num_rows == 0:
        if not key_arrays:
            partial.state_for(())  # global aggregate over zero rows still yields a row
        return partial
    if not key_arrays:
        order = np.arange(num_rows, dtype=np.int64)
        starts = np.zeros(1, dtype=np.int64)
    else:
        order, starts = _group_order(key_arrays, num_rows)
    counts = np.diff(np.append(starts, num_rows)).tolist()
    # Sorted gathers are shared between aggregates over the same column
    # (COUNT(x) / SUM(x) / AVG(x) all reference x once).
    sorted_cache: Dict[int, np.ndarray] = {}
    columns = []
    for func, arr in zip(partial.agg_funcs, agg_arrays):
        sorted_arr = None
        if arr is not None and func != "COUNT":
            sorted_arr = sorted_cache.get(id(arr))
            if sorted_arr is None:
                sorted_arr = np.asarray(arr)[order]
                sorted_cache[id(arr)] = sorted_arr
        columns.append(_state_column(func, arr, sorted_arr, starts, counts))
    # Group-key tuples, converted to Python scalars in one pass per column.
    reps = order[starts]
    key_cols = [_canonical_key_values(col[reps].tolist()) for col in key_arrays]
    if key_cols:
        keys = zip(*key_cols)
    else:
        keys = [()]
    partial.groups = dict(zip(keys, map(list, zip(*columns))))
    return partial
