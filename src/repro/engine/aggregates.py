"""Mergeable aggregate states.

Feisu aggregates bottom-up through its server tree: leaves produce
partial states per group, stem servers merge them, and the master
finalizes (§III-B).  Every state here therefore supports the classic
``update / merge / final`` contract, and grouped partials know their own
approximate wire size so the network model can charge realistic transfer
costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExecutionError


class AggregateState:
    """One aggregate's running state for one group."""

    func = "?"

    def update(self, values: Optional[np.ndarray]) -> None:
        raise NotImplementedError

    def merge(self, other: "AggregateState") -> None:
        raise NotImplementedError

    def final(self):
        raise NotImplementedError


class CountState(AggregateState):
    func = "COUNT"

    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def update(self, values: Optional[np.ndarray]) -> None:
        if values is None:
            raise ExecutionError("COUNT update needs a row count or values")
        self.n += len(values)

    def update_count(self, n: int) -> None:
        self.n += n

    def merge(self, other: AggregateState) -> None:
        self.n += other.n  # type: ignore[attr-defined]

    def final(self) -> int:
        return self.n


class SumState(AggregateState):
    func = "SUM"

    __slots__ = ("total", "seen")

    def __init__(self) -> None:
        self.total = 0
        self.seen = False

    def update(self, values: Optional[np.ndarray]) -> None:
        if values is None or len(values) == 0:
            return
        self.total = self.total + values.sum()
        self.seen = True

    def merge(self, other: AggregateState) -> None:
        if other.seen:  # type: ignore[attr-defined]
            self.total = self.total + other.total  # type: ignore[attr-defined]
            self.seen = True

    def final(self):
        if not self.seen:
            return None  # SQL SUM over zero rows is NULL
        if isinstance(self.total, (np.integer, int)):
            return int(self.total)
        return float(self.total)


class MinState(AggregateState):
    func = "MIN"

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = None

    def update(self, values: Optional[np.ndarray]) -> None:
        if values is None or len(values) == 0:
            return
        lo = values.min()
        if self.value is None or lo < self.value:
            self.value = lo

    def merge(self, other: AggregateState) -> None:
        if other.value is not None:  # type: ignore[attr-defined]
            if self.value is None or other.value < self.value:  # type: ignore[attr-defined]
                self.value = other.value  # type: ignore[attr-defined]

    def final(self):
        return _to_python(self.value)


class MaxState(AggregateState):
    func = "MAX"

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = None

    def update(self, values: Optional[np.ndarray]) -> None:
        if values is None or len(values) == 0:
            return
        hi = values.max()
        if self.value is None or hi > self.value:
            self.value = hi

    def merge(self, other: AggregateState) -> None:
        if other.value is not None:  # type: ignore[attr-defined]
            if self.value is None or other.value > self.value:  # type: ignore[attr-defined]
                self.value = other.value  # type: ignore[attr-defined]

    def final(self):
        return _to_python(self.value)


class AvgState(AggregateState):
    func = "AVG"

    __slots__ = ("total", "n")

    def __init__(self) -> None:
        self.total = 0.0
        self.n = 0

    def update(self, values: Optional[np.ndarray]) -> None:
        if values is None or len(values) == 0:
            return
        self.total += float(values.sum())
        self.n += len(values)

    def merge(self, other: AggregateState) -> None:
        self.total += other.total  # type: ignore[attr-defined]
        self.n += other.n  # type: ignore[attr-defined]

    def final(self) -> Optional[float]:
        return self.total / self.n if self.n else None


_STATE_FACTORY = {
    "COUNT": CountState,
    "SUM": SumState,
    "MIN": MinState,
    "MAX": MaxState,
    "AVG": AvgState,
}


def make_state(func: str) -> AggregateState:
    try:
        return _STATE_FACTORY[func]()
    except KeyError:
        raise ExecutionError(f"unknown aggregate function {func!r}") from None


def _to_python(value):
    if value is None:
        return None
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


def group_rows(key_columns: Sequence[np.ndarray], num_rows: int) -> Tuple[np.ndarray, np.ndarray]:
    """Assign each row a dense group id.

    Returns ``(group_ids, representative_indices)`` where
    ``representative_indices[g]`` is the first row of group ``g``.
    With no key columns every row lands in group 0.
    """
    if not key_columns:
        ids = np.zeros(num_rows, dtype=np.int64)
        reps = np.zeros(1 if num_rows else 0, dtype=np.int64)
        if num_rows == 0:
            return ids, reps
        return ids, np.array([0], dtype=np.int64)
    combined = None
    for col in key_columns:
        uniques, codes = np.unique(col, return_inverse=True)
        codes = codes.astype(np.int64)
        if combined is None:
            combined = codes
        else:
            combined = combined * np.int64(len(uniques)) + codes
    _, reps, ids = np.unique(combined, return_index=True, return_inverse=True)
    return ids.astype(np.int64), reps.astype(np.int64)


@dataclass
class GroupedPartial:
    """Partial aggregation result travelling leaf → stem → master.

    ``groups`` maps the tuple of group-key values to one state per
    aggregate, in the plan's aggregate order.
    """

    num_keys: int
    agg_funcs: List[str]
    groups: Dict[Tuple, List[AggregateState]] = field(default_factory=dict)
    #: Rows the producing task actually scanned (partial-result accounting).
    rows_scanned: int = 0

    def state_for(self, key: Tuple) -> List[AggregateState]:
        states = self.groups.get(key)
        if states is None:
            states = [make_state(f) for f in self.agg_funcs]
            self.groups[key] = states
        return states

    def merge(self, other: "GroupedPartial") -> None:
        if other.num_keys != self.num_keys or other.agg_funcs != self.agg_funcs:
            raise ExecutionError("cannot merge incompatible partials")
        for key, states in other.groups.items():
            mine = self.state_for(key)
            for a, b in zip(mine, states):
                a.merge(b)
        self.rows_scanned += other.rows_scanned

    def estimated_bytes(self) -> int:
        """Wire-size estimate for the network cost model."""
        per_group = 16 * self.num_keys + 24 * len(self.agg_funcs)
        return 64 + per_group * len(self.groups)


def partial_aggregate(
    key_arrays: Sequence[np.ndarray],
    agg_funcs: Sequence[str],
    agg_arrays: Sequence[Optional[np.ndarray]],
    num_rows: int,
) -> GroupedPartial:
    """Aggregate one frame into per-group partial states.

    ``agg_arrays[i]`` is None for COUNT(*) (row counting needs no column).
    """
    partial = GroupedPartial(num_keys=len(key_arrays), agg_funcs=list(agg_funcs))
    partial.rows_scanned = num_rows
    if num_rows == 0:
        if not key_arrays:
            partial.state_for(())  # global aggregate over zero rows still yields a row
        return partial
    ids, reps = group_rows(key_arrays, num_rows)
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    boundaries = np.flatnonzero(np.concatenate(([True], sorted_ids[1:] != sorted_ids[:-1])))
    slices = np.append(boundaries, len(sorted_ids))
    for gi in range(len(boundaries)):
        rows = order[slices[gi] : slices[gi + 1]]
        rep = rows[0]
        key = tuple(_to_python(col[rep]) for col in key_arrays)
        states = partial.state_for(key)
        for state, arr in zip(states, agg_arrays):
            if arr is None:
                state.update_count(len(rows))  # type: ignore[attr-defined]
            else:
                state.update(arr[rows])
    return partial
