"""Vectorized execution engine: operators, aggregates, task executor."""

from repro.engine.aggregates import (
    AggregateState,
    GroupedPartial,
    group_rows,
    make_state,
    partial_aggregate,
)
from repro.engine.executor import (
    QueryResult,
    TaskExecutionReport,
    TaskResult,
    execute_scan_task,
    finalize,
)
from repro.engine.serialize import deserialize_result, serialize_result
from repro.engine.operators import (
    apply_filter,
    cross_join,
    hash_join,
    join,
    limit_frame,
    prefix_columns,
    scan_block,
    sort_frame,
)

__all__ = [
    "AggregateState",
    "GroupedPartial",
    "QueryResult",
    "TaskExecutionReport",
    "TaskResult",
    "apply_filter",
    "cross_join",
    "execute_scan_task",
    "finalize",
    "group_rows",
    "hash_join",
    "join",
    "limit_frame",
    "make_state",
    "partial_aggregate",
    "prefix_columns",
    "scan_block",
    "serialize_result",
    "deserialize_result",
    "sort_frame",
]
