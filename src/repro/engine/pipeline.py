"""Fused scan pipelines with morsel-driven parallelism (DESIGN.md S51).

The operator-at-a-time path in :mod:`repro.engine.executor` materializes
a full intermediate :class:`~repro.planner.expressions.Frame` between
scan, filter, project and partial-aggregate for every block — every read
column (predicate-only columns included) is gathered through the
selection mask before the payload projection throws most of it away.

A :class:`FusedPipeline` compiles one scan task into a single pass per
column batch:

* the SmartIndex / B+ tree probe runs once per block on the driving
  thread (it is block-granular by construction);
* each needed column chunk is decoded exactly once and sliced per
  morsel — no per-operator copies;
* selection stays a lazy mask until the gather step, which touches only
  the *payload* columns of *matching* rows (one ``flatnonzero`` per
  morsel instead of one boolean-mask pass per read column);
* partial-aggregate accumulators are updated in place through the
  existing reduceat kernels and merged with the existing
  :meth:`~repro.engine.aggregates.GroupedPartial.merge` path.

The driver splits the block's row range into ~64K-row morsels and runs
them on a shared :class:`~concurrent.futures.ThreadPoolExecutor` (numpy
comparison/gather kernels release the GIL; ``CONTAINS`` predicates run
a Python-level substring loop and stay GIL-bound — see docs/API.md).
Pool size comes from ``LeafConfig.worker_threads`` (0 = ``os.cpu_count()``).

Byte-identity contract (enforced by the differential suite): with the
flag on, every :class:`~repro.engine.executor.TaskResult` — rows, bytes,
partial states *and* the cost-accounting report driving the simulated
clock — is identical to the unfused path.  Two mechanisms guarantee it:

1. Morsel-local partial aggregation is used only when every aggregate
   merges without floating-point reassociation (``COUNT`` always;
   ``SUM``/``MIN``/``MAX`` over integer arguments).  Float ``SUM`` /
   ``AVG`` sum in morsel order, which differs from one whole-block
   ``reduceat`` in the last ulps — those plans (and anything with joins
   or a post-join filter) instead concatenate the gathered morsels in
   block-row order and run the single-pass tail, which is the unfused
   code operating on a bit-identical frame.
2. Cost accounting is computed centrally from whole-block row counts
   with the exact formulas of the unfused path, never accumulated from
   per-morsel execution, so simulated-clock charges cannot drift.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.columnar.block import Block
from repro.columnar.schema import DataType
from repro.engine import executor as _exec
from repro.engine.aggregates import GroupedPartial, partial_aggregate
from repro.engine.executor import (
    BTreeProvider,
    TaskExecutionReport,
    TaskResult,
)
from repro.engine.operators import apply_filter, prefix_columns
from repro.errors import ExecutionError
from repro.index.smartindex import SmartIndexManager
from repro.planner.cost import (
    OPS_PER_COMPARISON,
    OPS_PER_CONTAINS,
    OPS_PER_DECODE,
    atom_saved_seconds,
)
from repro.planner.expressions import Frame, evaluate
from repro.planner.physical import PhysicalPlan, ScanTask
from repro.sql.ast import BinaryOperator, Star

#: Default morsel granularity; ~64K rows keeps per-morsel numpy calls
#: well past their fixed-overhead knee while leaving enough morsels per
#: block for the pool to balance.
DEFAULT_MORSEL_ROWS = 64 * 1024

_pools_lock = threading.Lock()
_pools: Dict[int, ThreadPoolExecutor] = {}


def resolve_worker_threads(configured: int = 0) -> int:
    """Effective pool size: ``configured`` if positive, else ``os.cpu_count()``."""
    if configured and configured > 0:
        return int(configured)
    return os.cpu_count() or 1


def worker_pool(threads: int) -> ThreadPoolExecutor:
    """The shared morsel pool for ``threads`` workers (lazily created).

    Pools are module-level and reused across leaves and queries: leaf
    servers are simulation objects, and giving each its own OS threads
    would leak a pool per simulated node.
    """
    with _pools_lock:
        pool = _pools.get(threads)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix="feisu-morsel"
            )
            _pools[threads] = pool
        return pool


def merge_exact_aggregation(plan: PhysicalPlan) -> bool:
    """True when morsel-local partials merge to bit-identical finals.

    Joins and post-join filters force the single-pass tail (their
    charges and row order are whole-block notions); float ``SUM`` and
    every ``AVG`` reassociate additions across morsels.
    """
    if not plan.is_aggregate or plan.has_joins or plan.post_filter is not None:
        return False
    analyzed = plan.analyzed
    for agg in analyzed.aggregates:
        if agg.func == "COUNT":
            continue
        if agg.func not in ("SUM", "MIN", "MAX"):
            return False
        if isinstance(agg.argument, Star):
            return False
        try:
            if analyzed.type_of(agg.argument) is not DataType.INT64:
                return False
        except Exception:  # noqa: BLE001 - untyped expression: stay safe
            return False
    return True


class FusedPipeline:
    """One scan task compiled to a fused, morsel-parallel block pass.

    Lifecycle: :meth:`compile` probes the index, prices the I/O and
    predicate work, and plans the morsel ranges; :meth:`run` decodes the
    columns once, executes the morsels (on the worker pool when it has
    more than one thread and more than one morsel), feeds the SmartIndex
    from the assembled full-block atom masks on the driving thread, and
    finishes with either the merge path or the single-pass tail.
    """

    def __init__(
        self,
        task: ScanTask,
        plan: PhysicalPlan,
        block: Block,
        index_manager: Optional[SmartIndexManager],
        now: float,
    ):
        self.task = task
        self.plan = plan
        self.block = block
        self.index_manager = index_manager
        self.now = now
        self.report = TaskExecutionReport(
            task_id=task.task_id,
            rows_in_block=block.num_rows,
            scale_factor=block.scale_factor,
        )
        self.payload_columns: List[str] = list(plan.payload_columns)
        self.mask: Optional[np.ndarray] = None
        self.missing: List = []
        self.residuals: List = []
        self.read_columns: List[str] = []
        #: Fully decoded arrays — only the columns that actually need
        #: materializing (see :meth:`_decode`).
        self.columns: Dict[str, np.ndarray] = {}
        #: ``(uniques, codes)`` for dictionary-encoded columns served
        #: without materializing: predicates evaluate on the unique set
        #: (:attr:`_missing_luts`), gathers go through the codes.
        self._dict: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        #: Zero-copy views of plain-encoded numeric columns.
        self._views: Dict[str, np.ndarray] = {}
        #: Per-atom boolean lookup tables over the unique sets
        #: (``lut[codes] == atom.evaluate(decoded)`` elementwise).
        self._missing_luts: List[List[Optional[np.ndarray]]] = []
        self._residual_luts: List[List[Optional[np.ndarray]]] = []
        self.morsels: List[Tuple[int, int]] = []
        self._cands: List[np.ndarray] = []
        #: Full-block per-atom masks assembled from disjoint morsel
        #: slices (thread-safe by construction), inserted once per block
        #: on the driving thread in the unfused path's insert order.
        self._atom_buffers: List[List[np.ndarray]] = []
        self._residual_buffers: List[List[np.ndarray]] = []
        self._empty_shortcut = False

    # -- compile ----------------------------------------------------------

    @classmethod
    def compile(
        cls,
        task: ScanTask,
        plan: PhysicalPlan,
        block: Block,
        index_manager: Optional[SmartIndexManager] = None,
        btree_provider: Optional[BTreeProvider] = None,
        now: float = 0.0,
        span=None,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
    ) -> "FusedPipeline":
        pipe = cls(task, plan, block, index_manager, now)
        report = pipe.report
        mask, missing, residuals = _exec._filter_mask(
            task, plan.scan_cnf, block, index_manager, btree_provider, now, report,
            span=span,
        )
        pipe.mask, pipe.missing, pipe.residuals = mask, list(missing), list(residuals)
        if report.index_full_cover and mask is not None and not mask.any():
            pipe._empty_shortcut = True
            return pipe
        pipe.read_columns = (
            pipe.payload_columns if report.index_full_cover else list(task.columns)
        )
        if pipe.read_columns:
            if residuals:
                io_bytes, decode_ops = _exec._semantic_read_costs(
                    block, pipe.read_columns, residuals, missing, pipe.payload_columns
                )
                report.io_bytes += io_bytes
                report.cpu_ops += decode_ops
            else:
                report.io_bytes += block.column_bytes(pipe.read_columns)
                report.cpu_ops += OPS_PER_DECODE * block.num_rows * len(pipe.read_columns)
            report.io_seeks += 1
        # Whole-block predicate charges, same formulas as the unfused path.
        for clause in pipe.missing:
            for atom in clause.atoms:
                ops = (
                    OPS_PER_CONTAINS
                    if atom.op is BinaryOperator.CONTAINS
                    else OPS_PER_COMPARISON
                )
                report.cpu_ops += ops * block.num_rows
            report.cpu_ops += 2.0 * block.num_rows * len(clause.residuals)
        for r in pipe.residuals:
            cand = r.mask.to_bool_array()
            pipe._cands.append(cand)
            n_cand = int(np.count_nonzero(cand))
            for atom in r.clause.atoms:
                ops = (
                    OPS_PER_CONTAINS
                    if atom.op is BinaryOperator.CONTAINS
                    else OPS_PER_COMPARISON
                )
                report.cpu_ops += ops * n_cand
        if index_manager is not None:
            pipe._atom_buffers = [
                [np.zeros(block.num_rows, dtype=np.bool_) for _ in clause.atoms]
                for clause in pipe.missing
            ]
            pipe._residual_buffers = [
                [np.zeros(block.num_rows, dtype=np.bool_) for _ in r.clause.atoms]
                for r in pipe.residuals
            ]
        n = block.num_rows
        step = max(1, int(morsel_rows))
        pipe.morsels = [(lo, min(lo + step, n)) for lo in range(0, n, step)] or [(0, 0)]
        return pipe

    # -- morsel kernel ----------------------------------------------------

    def _atom_mask(
        self, atom, lut: Optional[np.ndarray], lo: int, hi: int,
        idx: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Evaluate one atom over rows ``[lo, hi)`` (or a subset ``idx``
        of that range).  Dictionary-encoded columns map the precomputed
        unique-set verdicts through the codes instead of touching values."""
        if lut is not None:
            _u, codes = self._dict[atom.column]
            sel = codes[lo:hi]
            return lut[sel if idx is None else sel[idx]]
        arr = self.columns.get(atom.column)
        if arr is None:
            arr = self._views[atom.column]
        sel = arr[lo:hi]
        return np.asarray(
            atom.evaluate(sel if idx is None else sel[idx]), dtype=np.bool_
        )

    def _gather(self, c: str, rows: np.ndarray) -> np.ndarray:
        """Materialize column ``c`` at ``rows`` only (fancy indexing
        always copies, so the result is a fresh writable array)."""
        parts = self._dict.get(c)
        if parts is not None:
            uniques, codes = parts
            return uniques[codes[rows]]
        arr = self.columns.get(c)
        if arr is None:
            arr = self._views[c]
        return arr[rows]

    def _slice_col(self, c: str, lo: int, hi: int) -> np.ndarray:
        """Materialize the full ``[lo, hi)`` range of column ``c``."""
        parts = self._dict.get(c)
        if parts is not None:
            uniques, codes = parts
            return uniques[codes[lo:hi]]
        arr = self.columns.get(c)
        if arr is not None:
            return arr[lo:hi]
        return np.array(self._views[c][lo:hi])  # writable, off the ro view

    def _run_morsel(self, m: int, exact: bool):
        """Filter + gather (+ optionally aggregate) rows ``[lo, hi)``.

        Returns ``(matched_rows, frame_or_None, partial_or_None)``.
        Touches only preallocated buffers at this morsel's disjoint
        slice, decoded arrays / code views (read-only) and morsel-local
        temporaries — safe under the worker pool without locks.
        """
        lo, hi = self.morsels[m]
        n = hi - lo
        combined = self.mask[lo:hi] if self.mask is not None else None
        for ci, clause in enumerate(self.missing):
            clause_mask: Optional[np.ndarray] = None
            for ai, atom in enumerate(clause.atoms):
                atom_mask = self._atom_mask(atom, self._missing_luts[ci][ai], lo, hi)
                if self._atom_buffers:
                    self._atom_buffers[ci][ai][lo:hi] = atom_mask
                clause_mask = (
                    atom_mask if clause_mask is None else (clause_mask | atom_mask)
                )
            for residual in clause.residuals:
                # Opaque expression: needs real values for every column it
                # might touch — _decode fully materialized them for this case.
                frame = Frame({c: arr[lo:hi] for c, arr in self.columns.items()}, n)
                res_mask = evaluate(residual, frame).astype(np.bool_)
                clause_mask = (
                    res_mask if clause_mask is None else (clause_mask | res_mask)
                )
            if clause_mask is None:
                raise ExecutionError("clause with neither atoms nor residuals")
            combined = (
                clause_mask if combined is None else (combined & clause_mask)
            )
        for ri, r in enumerate(self.residuals):
            cand = self._cands[ri][lo:hi]
            idx = np.flatnonzero(cand)
            clause_sub = np.zeros(len(idx), dtype=np.bool_)
            for ai, atom in enumerate(r.clause.atoms):
                sub = self._atom_mask(atom, self._residual_luts[ri][ai], lo, hi, idx)
                if self._residual_buffers:
                    self._residual_buffers[ri][ai][lo + idx] = sub
                clause_sub |= sub
            clause_full = np.zeros(n, dtype=np.bool_)
            clause_full[idx] = clause_sub
            combined = clause_full if combined is None else (combined & clause_full)
        # Lazy selection ends here: gather payload columns of matched rows.
        if combined is None:
            gathered = {c: self._slice_col(c, lo, hi) for c in self.payload_columns}
            count = n
        else:
            rows = np.flatnonzero(combined) + lo
            gathered = {c: self._gather(c, rows) for c in self.payload_columns}
            count = int(len(rows))
        out = Frame(gathered, count)
        if exact:
            return count, None, self._morsel_partial(out)
        return count, out, None

    def _morsel_partial(self, frame: Frame) -> GroupedPartial:
        analyzed = self.plan.analyzed
        resolve = _exec._resolver_for(analyzed, frame, False)
        key_arrays = [evaluate(k, frame, resolve) for k in analyzed.group_keys]
        agg_arrays: List[Optional[np.ndarray]] = [
            None if isinstance(a.argument, Star) else evaluate(a.argument, frame, resolve)
            for a in analyzed.aggregates
        ]
        return partial_aggregate(
            key_arrays, [a.func for a in analyzed.aggregates], agg_arrays, frame.num_rows
        )

    # -- driver -----------------------------------------------------------

    def _decode(self, pool: Optional[ThreadPoolExecutor]) -> None:
        """Open every read column exactly once, materializing as little
        as possible.

        Dictionary-encoded columns stay as ``(uniques, codes)``: each
        predicate atom becomes a boolean lookup table over the unique
        set (computed here, once per block), and payload gathers go
        ``uniques[codes[rows]]``.  Plain-encoded numeric columns stay as
        zero-copy views.  Only columns an opaque residual expression
        might touch — or ones in codecs without selective access — pay
        the full ``decode()`` the unfused path pays for every column.
        """
        need_full: List[str] = []
        has_residual_exprs = any(clause.residuals for clause in self.missing)
        for c in self.read_columns:
            chunk = self.block.chunks[c]
            if has_residual_exprs:
                need_full.append(c)
                continue
            parts = chunk.dictionary_parts()
            if parts is not None:
                self._dict[c] = parts
                continue
            view = chunk.plain_view()
            if view is not None:
                self._views[c] = view
                continue
            need_full.append(c)
        if pool is not None and len(need_full) > 1:
            futures = [(c, pool.submit(self.block.column, c)) for c in need_full]
            self.columns = {c: f.result() for c, f in futures}
        else:
            self.columns = {c: self.block.column(c) for c in need_full}
        for luts, clauses in (
            (self._missing_luts, [cl.atoms for cl in self.missing]),
            (self._residual_luts, [r.clause.atoms for r in self.residuals]),
        ):
            for atoms in clauses:
                row: List[Optional[np.ndarray]] = []
                for atom in atoms:
                    parts = self._dict.get(atom.column)
                    if parts is None:
                        row.append(None)
                    else:
                        row.append(
                            np.asarray(atom.evaluate(parts[0]), dtype=np.bool_)
                        )
                luts.append(row)

    def _insert_index_entries(self) -> None:
        """Feed the SmartIndex once per block, in the unfused insert order."""
        mgr = self.index_manager
        if mgr is None:
            return
        block_id = self.task.block.block_id
        for ci, clause in enumerate(self.missing):
            for ai, atom in enumerate(clause.atoms):
                buf = self._atom_buffers[ci][ai]
                if mgr.semantic:
                    mgr.insert(
                        block_id, atom, buf, self.now,
                        saved_s=atom_saved_seconds(self.task.block, atom),
                    )
                else:
                    mgr.insert(block_id, atom, buf, self.now)
        for ri, r in enumerate(self.residuals):
            for ai, atom in enumerate(r.clause.atoms):
                mgr.insert(
                    block_id, atom, self._residual_buffers[ri][ai], self.now,
                    saved_s=atom_saved_seconds(self.task.block, atom),
                )

    def run(
        self,
        broadcast_frames: Optional[Dict[str, Frame]] = None,
        worker_threads: int = 0,
    ) -> TaskResult:
        task, plan, report = self.task, self.plan, self.report
        analyzed = plan.analyzed
        t0 = time.perf_counter()
        threads = resolve_worker_threads(worker_threads)
        report.fused = True
        report.workers = threads
        if self._empty_shortcut:
            report.morsels = 0
            frame = Frame(
                {
                    c: np.empty(0, dtype=_exec._np_dtype(analyzed, task, c))
                    for c in self.payload_columns
                },
                0,
            )
            report.rows_matched = 0
            report.morsel_wall_s = time.perf_counter() - t0
            return self._finish_single_pass(frame, broadcast_frames)

        report.morsels = len(self.morsels)
        pool = (
            worker_pool(threads)
            if threads > 1 and len(self.morsels) > 1
            else None
        )
        self._decode(pool)
        exact = merge_exact_aggregation(plan)
        indices = range(len(self.morsels))
        if pool is not None:
            outs = list(pool.map(lambda m: self._run_morsel(m, exact), indices))
        else:
            outs = [self._run_morsel(m, exact) for m in indices]
        self._insert_index_entries()
        report.rows_matched = sum(count for count, _f, _p in outs)
        report.morsel_wall_s = time.perf_counter() - t0

        if exact:
            merged = GroupedPartial(
                len(analyzed.group_keys), [a.func for a in analyzed.aggregates]
            )
            for _count, _frame, partial in outs:
                merged.merge(partial)
            if not analyzed.group_keys and not merged.groups:
                merged.state_for(())
            report.cpu_ops += 2.0 * report.rows_matched * max(
                1, len(analyzed.aggregates)
            )
            return TaskResult(task.task_id, partial=merged, report=report)

        frame = Frame.concat([f for _c, f, _p in outs])
        return self._finish_single_pass(frame, broadcast_frames)

    def _finish_single_pass(
        self, frame: Frame, broadcast_frames: Optional[Dict[str, Frame]]
    ) -> TaskResult:
        """The unfused tail (joins, post-filter, aggregate/project) over
        the gathered frame — bit-identical rows in, bit-identical
        result and charges out."""
        task, plan, report = self.task, self.plan, self.report
        analyzed = plan.analyzed
        qualified = plan.has_joins
        if qualified:
            frame = prefix_columns(frame, task.binding)
            frame = _exec._apply_broadcast_joins(
                frame, plan, broadcast_frames or {}, report
            )
        if plan.post_filter is not None and frame.num_rows > 0:
            resolve = _exec._resolver_for(analyzed, frame, qualified)
            post_mask = evaluate(plan.post_filter, frame, resolve).astype(np.bool_)
            report.cpu_ops += 2.0 * frame.num_rows
            frame = apply_filter(frame, post_mask)
        if plan.is_aggregate:
            partial = _exec._partial_aggregate(frame, plan, qualified, report)
            return TaskResult(task.task_id, partial=partial, report=report)
        output_frame = _exec._project_task_frame(frame, plan, qualified)
        if analyzed.query.limit is not None:
            output_frame = _exec._push_down_limit(output_frame, plan, qualified)
        return TaskResult(task.task_id, frame=output_frame, report=report)


def execute_fused_scan_task(
    task: ScanTask,
    plan: PhysicalPlan,
    block: Block,
    broadcast_frames: Optional[Dict[str, Frame]] = None,
    index_manager: Optional[SmartIndexManager] = None,
    btree_provider: Optional[BTreeProvider] = None,
    now: float = 0.0,
    span=None,
    worker_threads: int = 0,
    morsel_rows: int = DEFAULT_MORSEL_ROWS,
) -> TaskResult:
    """Drop-in fused replacement for
    :func:`repro.engine.executor.execute_scan_task` — same signature plus
    the pool/morsel knobs, same :class:`TaskResult` bytes and charges."""
    pipe = FusedPipeline.compile(
        task, plan, block,
        index_manager=index_manager,
        btree_provider=btree_provider,
        now=now,
        span=span,
        morsel_rows=morsel_rows,
    )
    return pipe.run(broadcast_frames, worker_threads=worker_threads)
