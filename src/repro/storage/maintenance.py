"""Replica repair: keeping storage systems at target replication.

The scheduler tolerates replica loss by reading surviving copies
(§III-B), but a healthy deployment *re-replicates*: this maintenance
process periodically scans each block-replicated system for
under-replicated files and copies them onto fresh nodes, charging the
copy traffic to the WRITE class.  It is the substrate-side complement to
Feisu's task-level fault tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional, Tuple

from repro.sim.events import Event, Simulator
from repro.sim.netmodel import NetworkTopology, NodeAddress, TrafficClass
from repro.storage.systems import DistributedFS

#: How often the repair scanner wakes up, simulated seconds.
DEFAULT_SCAN_PERIOD_S = 60.0


@dataclass
class RepairReport:
    """Outcome of one repair scan."""

    files_scanned: int = 0
    under_replicated: int = 0
    repairs_done: int = 0
    bytes_copied: int = 0
    unrepairable: List[str] = field(default_factory=list)


class ReplicaRepairer:
    """Scans one DistributedFS and restores its replication factor."""

    def __init__(
        self,
        sim: Simulator,
        net: NetworkTopology,
        system: DistributedFS,
        scan_period_s: float = DEFAULT_SCAN_PERIOD_S,
        liveness: Optional[Callable[[NodeAddress], bool]] = None,
    ):
        self.sim = sim
        self.net = net
        self.system = system
        self.scan_period_s = scan_period_s
        #: Optional target-eligibility predicate (wire to
        #: ``ClusterManager.is_alive`` / drain state): repairing onto a
        #: dead or draining node restores nothing.
        self.liveness = liveness
        self.total_repairs = 0
        self._running = False

    # -- one-shot scan ------------------------------------------------------

    def find_under_replicated(self) -> List[Tuple[str, int]]:
        """(path, missing_count) for every file below target replication."""
        out = []
        target = self.system.replication
        for path in self.system.list_paths():
            have = len(self.system.locations(path))
            if have < target:
                out.append((path, target - have))
        return out

    def repair_once(self) -> Generator[Event, None, RepairReport]:
        """Process generator: scan and repair everything found."""
        report = RepairReport()
        report.files_scanned = len(self.system.list_paths())
        for path, missing in self.find_under_replicated():
            report.under_replicated += 1
            survivors = self.system.locations(path)
            if not survivors:
                report.unrepairable.append(path)
                continue
            data = self.system.read(path)
            for _ in range(missing):
                target_node = self._pick_target(path, survivors)
                if target_node is None:
                    report.unrepairable.append(path)
                    break
                source = min(survivors, key=lambda s: self.net.distance(s, target_node))
                # A replica is its *bytes plus its physical layout* (S54):
                # re-replicating from a source serving a rewritten variant
                # must copy that variant and its metadata, not silently
                # revert the new copy to the base layout.
                variant = self.system.replica_variant(path, source)
                variant_meta = self.system.replica_meta(path, source)
                copy_bytes = variant if variant is not None else data
                yield self.net.transfer(
                    source, target_node, len(copy_bytes), TrafficClass.WRITE
                )
                if not self.system.exists(path):
                    # Deleted (e.g. tiering demotion) while the copy was in
                    # flight — nothing to repair any more.
                    break
                self.system.add_replica(path, target_node)
                if variant is not None:
                    # The copy raced a layout rewrite or a block write: if
                    # the source no longer serves the captured variant the
                    # shipped bytes are stale — the new replica falls back
                    # to the base payload instead of publishing a layout
                    # that no longer matches any live copy.
                    if (
                        source in self.system.locations(path)
                        and self.system.replica_variant(path, source) == variant
                        and self.system.replica_meta(path, source) == variant_meta
                    ):
                        self.system.set_replica_variant(
                            path, target_node, variant, meta=variant_meta
                        )
                survivors = self.system.locations(path)
                report.repairs_done += 1
                report.bytes_copied += len(copy_bytes)
                self.total_repairs += 1
        return report

    def _pick_target(self, path: str, existing: List[NodeAddress]) -> Optional[NodeAddress]:
        """A live-ish node not already holding the file, preferring a rack
        no current replica occupies (the HDFS placement invariant)."""
        held = set(existing)
        held_racks = {(a.datacenter, a.rack) for a in existing}
        candidates = [
            n
            for n in self.system._nodes  # noqa: SLF001
            if n not in held and (self.liveness is None or self.liveness(n))
        ]
        if not candidates:
            return None
        off_rack = [n for n in candidates if (n.datacenter, n.rack) not in held_racks]
        pool = off_rack or candidates
        return pool[self.system._rng.randrange(len(pool))]  # noqa: SLF001

    # -- background loop ------------------------------------------------------

    def start(self) -> None:
        """Run repair scans forever on the simulation clock."""
        if self._running:
            return
        self._running = True
        self.sim.process(self._loop(), name=f"repair-{self.system.name}")

    def _loop(self) -> Generator[Event, None, None]:
        while True:
            yield self.sim.timeout(self.scan_period_s)
            yield self.sim.process(self.repair_once(), name="repair-scan")
