"""Per-node SSD data cache (§IV-B).

Feisu layers an LRU-managed SSD cache under its storage access path.  The
paper is candid that without manual interference the ad-hoc workload
thrashes it ("more than 80% ... cache miss rates"), so "cache
preferences" are set manually for business-critical datasets.  This
implementation reproduces both behaviours:

* plain LRU over cached objects keyed by full path;
* a preference set — only preferred paths are admitted when
  ``admit_preferred_only`` is on (the production configuration), while
  benchmarks can switch to admit-all to reproduce the 80 %-miss
  observation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Set, Tuple

from repro.errors import StorageError


class SsdCache:
    """An LRU byte cache with manual preference admission control."""

    def __init__(
        self,
        capacity_bytes: int,
        admit_preferred_only: bool = True,
    ):
        if capacity_bytes <= 0:
            raise StorageError("SSD cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.admit_preferred_only = admit_preferred_only
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._bytes = 0
        self._preferred: Set[str] = set()
        self.hits = 0
        self.misses = 0

    # -- preferences (the "manual interference" of §IV-B) ---------------

    def prefer(self, path_prefix: str) -> None:
        """Mark a path prefix as business-critical: admitted and favoured."""
        self._preferred.add(path_prefix)

    def unprefer(self, path_prefix: str) -> None:
        self._preferred.discard(path_prefix)

    def is_preferred(self, path: str) -> bool:
        return any(path.startswith(p) for p in self._preferred)

    # -- cache operations -------------------------------------------------

    def get(self, path: str) -> Optional[bytes]:
        data = self._entries.get(path)
        if data is None:
            self.misses += 1
            return None
        self._entries.move_to_end(path)
        self.hits += 1
        return data

    def put(self, path: str, data: bytes) -> bool:
        """Insert unless admission policy rejects; returns admitted?"""
        if self.admit_preferred_only and not self.is_preferred(path):
            return False
        if len(data) > self.capacity_bytes:
            return False
        if path in self._entries:
            self._bytes -= len(self._entries.pop(path))
        while self._bytes + len(data) > self.capacity_bytes and self._entries:
            self._evict_one()
        self._entries[path] = data
        self._bytes += len(data)
        return True

    def _evict_one(self) -> None:
        """Evict LRU, preferring to sacrifice non-preferred entries."""
        victim = None
        for path in self._entries:  # OrderedDict iterates LRU -> MRU
            if not self.is_preferred(path):
                victim = path
                break
        if victim is None:
            victim = next(iter(self._entries))
        self._bytes -= len(self._entries.pop(victim))

    def invalidate(self, path: str) -> None:
        if path in self._entries:
            self._bytes -= len(self._entries.pop(path))

    @property
    def used_bytes(self) -> int:
        return self._bytes

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "miss_ratio": self.miss_ratio(),
            "used_bytes": self._bytes,
            "entries": len(self._entries),
        }
