"""Per-node SSD data cache (§IV-B).

Feisu layers an LRU-managed SSD cache under its storage access path.  The
paper is candid that without manual interference the ad-hoc workload
thrashes it ("more than 80% ... cache miss rates"), so "cache
preferences" are set manually for business-critical datasets.  This
implementation reproduces both behaviours:

* plain LRU over cached objects keyed by full path;
* a preference set — only preferred paths are admitted when
  ``admit_preferred_only`` is on (the production configuration), while
  benchmarks can switch to admit-all to reproduce the 80 %-miss
  observation.

Preference entries are path *prefixes*; they come either from operators
(the paper's manual interference) or from the automatic tiering daemon
(:mod:`repro.storage.tiering`), which derives them from observed heat.

Two policy guarantees (regression-pinned in ``tests/test_ssd_cache.py``):

* a **rejected update never leaves stale bytes** — if a path is being
  rewritten and the new payload cannot be admitted, the old entry is
  invalidated rather than kept serving the previous contents;
* **preferred entries are never sacrificed for non-preferred
  admissions** — when only preferred entries remain, a non-preferred
  insert is rejected instead of evicting business-critical data.
"""

from __future__ import annotations

import functools
import threading
from collections import OrderedDict
from typing import Dict, Optional, Set

from repro.errors import StorageError

#: Bound on the memoized per-path preference lookups; the map is cleared
#: wholesale when it outgrows this (preference changes also clear it).
_PREF_CACHE_LIMIT = 65536


def _locked(method):
    """Serialize a public entry point on the instance's ``_lock``.

    Leaves consult one cache per node from the fused pipeline's morsel
    worker threads (engine.pipeline); an RLock (``put`` recurses into
    ``invalidate``/``_evict_one``) keeps ``_bytes`` and the LRU order
    consistent under concurrent get/put.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


class SsdCache:
    """An LRU byte cache with preference admission control."""

    def __init__(
        self,
        capacity_bytes: int,
        admit_preferred_only: bool = True,
    ):
        if capacity_bytes <= 0:
            raise StorageError("SSD cache capacity must be positive")
        self._lock = threading.RLock()
        self.capacity_bytes = capacity_bytes
        self.admit_preferred_only = admit_preferred_only
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._bytes = 0
        self._preferred: Set[str] = set()
        #: Memoized path -> preferred flag; eviction consults preference
        #: once per candidate, so rescanning the whole prefix set there
        #: made every eviction O(entries × prefixes).
        self._pref_cache: Dict[str, bool] = {}
        self.hits = 0
        self.misses = 0
        self.stale_invalidations = 0
        self.rejected_for_preferred = 0

    # -- preferences (manual §IV-B interference, or tiering-derived) -----

    @_locked
    def prefer(self, path_prefix: str) -> None:
        """Mark a path prefix as business-critical: admitted and favoured."""
        if path_prefix not in self._preferred:
            self._preferred.add(path_prefix)
            self._pref_cache.clear()

    @_locked
    def unprefer(self, path_prefix: str) -> None:
        if path_prefix in self._preferred:
            self._preferred.discard(path_prefix)
            self._pref_cache.clear()

    @_locked
    def preferred_prefixes(self) -> Set[str]:
        return set(self._preferred)

    @_locked
    def is_preferred(self, path: str) -> bool:
        flag = self._pref_cache.get(path)
        if flag is None:
            flag = any(path.startswith(p) for p in self._preferred)
            if len(self._pref_cache) >= _PREF_CACHE_LIMIT:
                self._pref_cache.clear()
            self._pref_cache[path] = flag
        return flag

    # -- cache operations -------------------------------------------------

    @_locked
    def get(self, path: str) -> Optional[bytes]:
        data = self._entries.get(path)
        if data is None:
            self.misses += 1
            return None
        self._entries.move_to_end(path)
        self.hits += 1
        return data

    @_locked
    def put(self, path: str, data: bytes) -> bool:
        """Insert unless admission policy rejects; returns admitted?

        Any rejected *update* (admission, oversize, or preferred-only
        eviction pressure) invalidates the existing entry: a path that
        was just rewritten must never keep serving its old bytes.
        """
        preferred = self.is_preferred(path)
        if self.admit_preferred_only and not preferred:
            self.invalidate(path)
            return False
        if len(data) > self.capacity_bytes:
            self.invalidate(path)
            return False
        if path in self._entries:
            self._bytes -= len(self._entries.pop(path))
        while self._bytes + len(data) > self.capacity_bytes and self._entries:
            if not self._evict_one(allow_preferred=preferred):
                # Only preferred entries remain and this insert is not
                # preferred: reject it rather than sacrifice them.  The
                # stale previous version (if any) was popped above.
                self.rejected_for_preferred += 1
                return False
        self._entries[path] = data
        self._bytes += len(data)
        return True

    def _evict_one(self, allow_preferred: bool = True) -> bool:
        """Evict the LRU non-preferred entry; fall back to the LRU
        preferred entry only when the admission itself is preferred.
        Returns whether anything was evicted."""
        victim = None
        for path in self._entries:  # OrderedDict iterates LRU -> MRU
            if not self.is_preferred(path):
                victim = path
                break
        if victim is None:
            if not allow_preferred:
                return False
            victim = next(iter(self._entries))
        self._bytes -= len(self._entries.pop(victim))
        return True

    @_locked
    def invalidate(self, path: str) -> None:
        if path in self._entries:
            self._bytes -= len(self._entries.pop(path))

    @_locked
    def invalidate_stale(self, path: str) -> None:
        """Drop an entry the caller found to disagree with the backing
        store, and correct the hit it was just (wrongly) served as."""
        if path in self._entries:
            self._bytes -= len(self._entries.pop(path))
        self.hits = max(0, self.hits - 1)
        self.misses += 1
        self.stale_invalidations += 1

    @property
    def used_bytes(self) -> int:
        return self._bytes

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    @_locked
    def stats(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "miss_ratio": self.miss_ratio(),
            "used_bytes": self._bytes,
            "entries": len(self._entries),
            "stale_invalidations": self.stale_invalidations,
            "rejected_for_preferred": self.rejected_for_preferred,
        }
