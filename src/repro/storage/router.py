"""The common storage layer (§III-C).

"All data files are given full paths with prefix flags to activate
different storage plugins": ``/hdfs/a/b`` routes to the HDFS plugin as
``/a/b``, ``/ffs/...`` to Fatman, ``/kv/...`` to the label store, and an
unrecognized prefix falls back to the local filesystem.  Cross-domain
access is mediated by SSO credentials mapped onto each plugin's domain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import AccessDeniedError, PathError
from repro.security.auth import Credential, SSOAuthority
from repro.sim.netmodel import NodeAddress
from repro.storage.base import StorageSystem


class StorageRouter:
    """Prefix-based plugin routing plus SSO domain enforcement."""

    def __init__(self, authority: Optional[SSOAuthority] = None):
        self._systems: Dict[str, StorageSystem] = {}
        self._default: Optional[StorageSystem] = None
        self._authority = authority

    def register(self, system: StorageSystem, default: bool = False) -> None:
        if not system.scheme:
            raise PathError(f"storage system {system.name!r} declares no scheme")
        if system.scheme in self._systems:
            raise PathError(f"scheme {system.scheme!r} already registered")
        self._systems[system.scheme] = system
        if default:
            self._default = system

    def systems(self) -> List[StorageSystem]:
        return list(self._systems.values())

    def system_for_scheme(self, scheme: str) -> StorageSystem:
        try:
            return self._systems[scheme]
        except KeyError:
            raise PathError(f"no storage plugin for scheme {scheme!r}") from None

    def resolve(self, full_path: str) -> Tuple[StorageSystem, str]:
        """Split a full path into (plugin, plugin-internal path).

        An unrecognized prefix activates the local filesystem by default,
        exactly as §III-C specifies.
        """
        if not full_path.startswith("/"):
            raise PathError(f"paths must be absolute, got {full_path!r}")
        parts = full_path.split("/", 2)
        prefix = parts[1] if len(parts) > 1 else ""
        if full_path != "/" and not prefix:
            # "//foo" has an empty scheme segment; silently routing it to
            # the default FS makes a typo'd prefix unreachable forever.
            raise PathError(f"empty scheme segment in {full_path!r}")
        if prefix in self._systems:
            inner = "/" + (parts[2] if len(parts) > 2 else "")
            return self._systems[prefix], inner
        if self._default is None:
            raise PathError(f"no plugin for {full_path!r} and no default filesystem")
        return self._default, full_path

    # -- credentialed operations -----------------------------------------

    def _check(self, system: StorageSystem, cred: Optional[Credential], now: float) -> None:
        if self._authority is None:
            return  # router deployed without security (unit tests)
        if cred is None:
            raise AccessDeniedError(f"domain {system.domain!r} requires a credential")
        self._authority.validate(cred, now=now)
        if not cred.allows_domain(system.domain):
            raise AccessDeniedError(
                f"user {cred.user!r} lacks SSO access to domain {system.domain!r}"
            )

    def read(self, full_path: str, cred: Optional[Credential] = None, now: float = 0.0) -> bytes:
        system, inner = self.resolve(full_path)
        self._check(system, cred, now)
        return system.read(inner)

    def write(
        self,
        full_path: str,
        data: bytes,
        cred: Optional[Credential] = None,
        node: Optional[NodeAddress] = None,
        now: float = 0.0,
    ) -> None:
        system, inner = self.resolve(full_path)
        self._check(system, cred, now)
        system.write(inner, data, node=node)

    def exists(self, full_path: str) -> bool:
        """False only for resolvable-but-missing paths.

        A malformed path (relative, empty scheme segment) raises exactly
        as :meth:`size` and :meth:`locations` do — the three accessors
        agree on what constitutes a routing error.
        """
        system, inner = self.resolve(full_path)
        return system.exists(inner)

    def size(self, full_path: str) -> int:
        system, inner = self.resolve(full_path)
        return system.size(inner)

    def locations(self, full_path: str) -> List[NodeAddress]:
        system, inner = self.resolve(full_path)
        return system.locations(inner)

    def full_path(self, system: StorageSystem, inner: str) -> str:
        """Inverse of :meth:`resolve` for a registered system.

        Always uses the explicit scheme prefix; :meth:`resolve` also
        accepts prefix-less paths via the default-filesystem fallback.
        """
        if not inner.startswith("/"):
            raise PathError(f"inner paths must be absolute, got {inner!r}")
        return f"/{system.scheme}{inner}"
