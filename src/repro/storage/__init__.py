"""Heterogeneous storage substrates and the common storage layer."""

from repro.storage.base import ServiceProfile, StorageSystem
from repro.storage.loader import load_block, make_block_ref, read_table_frame, store_table, store_table_striped
from repro.storage.maintenance import RepairReport, ReplicaRepairer
from repro.storage.router import StorageRouter
from repro.storage.ssd_cache import SsdCache
from repro.storage.systems import (
    DistributedFS,
    FatmanFS,
    KeyValueStore,
    LocalFS,
)
from repro.storage.tiering import HeatTracker, TieringDaemon, TieringStats

__all__ = [
    "DistributedFS",
    "FatmanFS",
    "HeatTracker",
    "KeyValueStore",
    "LocalFS",
    "RepairReport",
    "ReplicaRepairer",
    "ServiceProfile",
    "SsdCache",
    "StorageRouter",
    "StorageSystem",
    "TieringDaemon",
    "TieringStats",
    "load_block",
    "make_block_ref",
    "read_table_frame",
    "store_table",
    "store_table_striped",
]
