"""Concrete storage substrates: local FS, HDFS-like, Fatman, KV store.

Placement policies:

* :class:`LocalFS` — data stays on the node that produced it (log data on
  online service machines, §II).  Reads from other nodes cross the
  network.
* :class:`DistributedFS` — HDFS-style: three replicas, first on the
  writer's node (or random), second on the same rack, third on a
  different rack.  Business/global data (§II).
* :class:`FatmanFS` — the cold archival store built on volunteer
  resources [Fatman, VLDB'14]: two replicas scattered across
  datacenters, high first-byte latency, tight per-node task agreement —
  archival product data (§II, case 3).
* :class:`KeyValueStore` — label storage: small values hash-partitioned
  across nodes.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional, Sequence

from repro.errors import StorageError
from repro.sim.netmodel import NodeAddress
from repro.storage.base import ServiceProfile, StorageSystem

#: Default profiles, calibrated to the relative service levels in §II/§VI.
LOCAL_PROFILE = ServiceProfile(first_byte_latency_s=0.0, bandwidth_factor=1.0, tasks_per_node=2)
HDFS_PROFILE = ServiceProfile(first_byte_latency_s=0.002, bandwidth_factor=1.0, tasks_per_node=4)
FATMAN_PROFILE = ServiceProfile(first_byte_latency_s=0.25, bandwidth_factor=0.5, tasks_per_node=1)
KV_PROFILE = ServiceProfile(first_byte_latency_s=0.001, bandwidth_factor=1.0, tasks_per_node=4)


def _stable_index(key: str, modulus: int) -> int:
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") % modulus


class LocalFS(StorageSystem):
    """Per-node local filesystems presented as one namespace.

    Every write *must* name its owner node; the file has exactly one
    "replica" — the producing machine — so remote readers pay network.
    """

    scheme = "local"

    def __init__(self, nodes: Sequence[NodeAddress], name: str = "localfs"):
        super().__init__(name, domain="online-service", profile=LOCAL_PROFILE)
        self._nodes = list(nodes)
        if not self._nodes:
            raise StorageError("LocalFS needs at least one node")

    def _place(self, path: str, nbytes: int, node: Optional[NodeAddress]) -> List[NodeAddress]:
        if node is None:
            raise StorageError("LocalFS writes must name the producing node")
        if node not in self._nodes:
            raise StorageError(f"{node} is not part of this cluster")
        return [node]


class DistributedFS(StorageSystem):
    """HDFS-like block-replicated distributed filesystem."""

    scheme = "hdfs"

    def __init__(
        self,
        nodes: Sequence[NodeAddress],
        name: str = "hdfs",
        replication: int = 3,
        seed: int = 7,
        profile: ServiceProfile = HDFS_PROFILE,
        domain: str = "hdfs-domain",
    ):
        super().__init__(name, domain=domain, profile=profile)
        self._nodes = list(nodes)
        self._rng = random.Random(seed)
        self.replication = replication
        if len(self._nodes) < 1:
            raise StorageError("DistributedFS needs at least one node")

    def _same_rack(self, a: NodeAddress, b: NodeAddress) -> bool:
        return (a.datacenter, a.rack) == (b.datacenter, b.rack)

    def _place(self, path: str, nbytes: int, node: Optional[NodeAddress]) -> List[NodeAddress]:
        first = node if node in self._nodes else self._rng.choice(self._nodes)
        replicas = [first]
        same_rack = [n for n in self._nodes if self._same_rack(n, first) and n != first]
        if same_rack and len(replicas) < self.replication:
            replicas.append(self._rng.choice(same_rack))
        other_rack = [n for n in self._nodes if not self._same_rack(n, first)]
        self._rng.shuffle(other_rack)
        for cand in other_rack:
            if len(replicas) >= self.replication:
                break
            if cand not in replicas:
                replicas.append(cand)
        # Small clusters may not satisfy full replication; degrade gracefully.
        for cand in self._nodes:
            if len(replicas) >= self.replication:
                break
            if cand not in replicas:
                replicas.append(cand)
        return replicas


class FatmanFS(DistributedFS):
    """Baidu's cost-saving archival store on volunteer resources.

    Replicas land in *different datacenters* when possible (volunteer
    nodes are wherever spare capacity is), reads pay a large first-byte
    latency, and the per-node agreement grants Feisu a single task slot.
    """

    scheme = "ffs"

    def __init__(self, nodes: Sequence[NodeAddress], name: str = "fatman", seed: int = 11):
        super().__init__(
            nodes,
            name=name,
            replication=2,
            seed=seed,
            profile=FATMAN_PROFILE,
            domain="fatman-domain",
        )

    def _place(self, path: str, nbytes: int, node: Optional[NodeAddress]) -> List[NodeAddress]:
        by_dc: dict = {}
        for n in self._nodes:
            by_dc.setdefault(n.datacenter, []).append(n)
        dcs = sorted(by_dc)
        self._rng.shuffle(dcs)
        replicas = [self._rng.choice(by_dc[dc]) for dc in dcs[: self.replication]]
        while len(replicas) < self.replication and len(replicas) < len(self._nodes):
            cand = self._rng.choice(self._nodes)
            if cand not in replicas:
                replicas.append(cand)
        return replicas


class KeyValueStore(StorageSystem):
    """Hash-partitioned label storage (model-training labels, §II)."""

    scheme = "kv"

    def __init__(self, nodes: Sequence[NodeAddress], name: str = "kvstore", replication: int = 2):
        super().__init__(name, domain="kv-domain", profile=KV_PROFILE)
        self._nodes = list(nodes)
        self.replication = min(replication, len(self._nodes))
        if not self._nodes:
            raise StorageError("KeyValueStore needs at least one node")

    def _place(self, path: str, nbytes: int, node: Optional[NodeAddress]) -> List[NodeAddress]:
        start = _stable_index(path, len(self._nodes))
        return [self._nodes[(start + i) % len(self._nodes)] for i in range(self.replication)]

    # Dict-flavoured aliases for label producers.
    def put(self, key: str, value: bytes) -> None:
        self.write(key if key.startswith("/") else f"/{key}", value)

    def get(self, key: str) -> bytes:
        return self.read(key if key.startswith("/") else f"/{key}")
