"""Per-replica heterogeneous physical layouts — "Trojan" replicas (S54).

Replicas in Feisu (and in the storage substrates underneath it) are
byte-identical copies, so every scan pays the same cost no matter which
copy it reads.  "Only Aggressive Elephants are Fast Elephants" showed
that this redundancy is free performance: give each replica of a block a
*different* physical design — a sort order, a column-subset projection,
an attached per-replica index, a join-co-partitioned clustering — and
route each task to the best-fitting copy.

This module supplies:

* :class:`LayoutSpec` — the per-replica physical design (primary sort
  column, column-subset projection, attached B+ tree column,
  co-partitioned join column), serialized into the replica's variant
  metadata so the storage layer stays the single source of truth;
* :func:`apply_layout` — the pure rewrite: stable re-sort, column
  subset, re-encode through the ordinary :class:`Block` codecs;
* :class:`LayoutDaemon` — rides the :class:`TieringDaemon` pattern: a
  predicate/join census (leaf scan hooks + attached
  :class:`~repro.client.history.QueryHistory`) plus the shared
  :class:`HeatTracker` decide which layouts each hot block's replicas
  deserve, then the daemon rewrites **one replica per block per cycle**
  through the idempotent publish-after-write path.  The base payload in
  ``StorageSystem._files`` is never touched, so a readable copy always
  exists and the replication floor holds by construction.

The scheduler scores each candidate replica with the existing
benefit-per-byte shape (sorted replica → binary-search range pruning,
column-subset replica → smaller read, attached index → covered probe),
and the leaf charges the chosen replica's actual cheaper I/O — the
variant block's own encoded chunk sizes plus sorted-range fractional
charging in the executor.

Everything is flag-gated behind ``LeafConfig.enable_layouts`` — with the
flag off the daemon is never constructed and no simulation event, trace
tag or figure byte changes.

Correctness note: SmartIndex bitvectors and whole-block B+ trees are
keyed by ``block_id`` and assume the *base* row order.  A task served
from a non-base variant must not consult or feed them — the leaf passes
``index_manager=None`` for variant reads (exactly like adaptive row
slices do) and attached B+ trees are cached under a layout-tagged key.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.columnar.block import Block
from repro.columnar.schema import Schema
from repro.errors import FaultInjectedError, PathError
from repro.planner.cnf import AtomicPredicate, ConjunctiveForm
from repro.planner.cost import CostModel
from repro.sim.events import Event, Simulator
from repro.sim.netmodel import NetworkTopology, NodeAddress, TrafficClass
from repro.sql.ast import BinaryOperator, Column
from repro.storage.router import StorageRouter
from repro.storage.tiering import HeatTracker

__all__ = ["LayoutSpec", "LayoutDaemon", "LayoutStats", "apply_layout"]

#: Ordered comparisons a sorted replica can binary-search and an
#: attached B+ tree can answer (mirrors ``BPlusTree.supports``).
RANGE_OPS = frozenset(
    {
        BinaryOperator.EQ,
        BinaryOperator.LT,
        BinaryOperator.LE,
        BinaryOperator.GT,
        BinaryOperator.GE,
    }
)


@dataclass(frozen=True)
class LayoutSpec:
    """One replica's physical design.

    All-``None`` means the base layout.  ``columns`` is a projection: the
    variant only stores those chunks, so it can only serve tasks whose
    column set it covers (:meth:`serves`).
    """

    #: Rows stably sorted by this column (enables range pruning).
    sort_column: Optional[str] = None
    #: Column-subset projection; None keeps every column.
    columns: Optional[Tuple[str, ...]] = None
    #: Attached per-replica B+ tree over this column (covered probes).
    index_column: Optional[str] = None
    #: Rows clustered by this join column (cache-friendly probe side;
    #: the executor charges the cheaper co-partitioned join rate).
    copartition_column: Optional[str] = None

    @property
    def is_base(self) -> bool:
        return (
            self.sort_column is None
            and self.columns is None
            and self.index_column is None
            and self.copartition_column is None
        )

    @property
    def order_column(self) -> Optional[str]:
        """The column the variant's rows are physically ordered by."""
        return self.sort_column or self.copartition_column

    def serves(self, columns: Sequence[str]) -> bool:
        """Can this variant answer a scan reading ``columns``?"""
        return self.columns is None or set(columns) <= set(self.columns)

    def describe(self) -> str:
        parts: List[str] = []
        if self.sort_column:
            parts.append(f"sorted({self.sort_column})")
        if self.copartition_column:
            parts.append(f"copart({self.copartition_column})")
        if self.columns is not None:
            parts.append(f"cols({','.join(self.columns)})")
        if self.index_column:
            parts.append(f"btree({self.index_column})")
        return "+".join(parts) if parts else "base"

    def narrowed_to(self, names: Sequence[str]) -> "LayoutSpec":
        """Drop aspects referring to columns the block doesn't have.

        The census works from query text and history; a stale entry may
        name a column a block never stored.  Order/index columns are
        force-kept inside the projection so the variant can always
        evaluate its own ordering predicate.
        """
        avail = set(names)
        cols = self.columns
        if cols is not None:
            kept = set(cols) & avail
            for extra in (self.sort_column, self.index_column, self.copartition_column):
                if extra is not None and extra in avail:
                    kept.add(extra)
            cols = None if kept == avail else tuple(sorted(kept))

        def _ok(c: Optional[str]) -> bool:
            return c is not None and c in avail and (cols is None or c in cols)

        return LayoutSpec(
            sort_column=self.sort_column if _ok(self.sort_column) else None,
            columns=cols,
            index_column=self.index_column if _ok(self.index_column) else None,
            copartition_column=(
                self.copartition_column if _ok(self.copartition_column) else None
            ),
        )

    # -- variant-metadata serialization (storage is the source of truth) --

    def to_meta(self) -> dict:
        return {
            "spec": {
                "sort": self.sort_column,
                "columns": list(self.columns) if self.columns is not None else None,
                "index": self.index_column,
                "copartition": self.copartition_column,
            }
        }

    @classmethod
    def from_meta(cls, meta: Optional[dict]) -> Optional["LayoutSpec"]:
        if not meta or "spec" not in meta:
            return None
        s = meta["spec"]
        cols = s.get("columns")
        return cls(
            sort_column=s.get("sort"),
            columns=tuple(cols) if cols is not None else None,
            index_column=s.get("index"),
            copartition_column=s.get("copartition"),
        )


def apply_layout(block: Block, spec: LayoutSpec) -> Block:
    """Rewrite ``block`` into ``spec``'s physical design.

    Pure and deterministic: stable argsort by the order column, project
    to the column subset, and re-encode through the standard codecs —
    the variant keeps the block id and scale factor so every downstream
    accounting path works unchanged.
    """
    spec = spec.narrowed_to([f.name for f in block.schema.fields])
    keep = [
        f for f in block.schema.fields if spec.columns is None or f.name in spec.columns
    ]
    arrays = {f.name: block.column(f.name) for f in keep}
    order_col = spec.order_column
    if order_col is not None and order_col in arrays:
        # Stable sort: equal-key rows keep their base relative order, so
        # the rewrite is a deterministic permutation.
        order = np.argsort(arrays[order_col], kind="stable")
        arrays = {name: values[order] for name, values in arrays.items()}
    return Block.from_arrays(
        block.block_id, Schema(keep), arrays, scale_factor=block.scale_factor
    )


def base_join_columns(plan) -> Tuple[str, ...]:
    """Base-table columns appearing in the plan's broadcast-join
    conditions — the layout census's join-column signal."""
    analyzed = plan.analyzed
    out: Set[str] = set()
    for bc in plan.broadcasts:
        if bc.condition is None:
            continue
        stack = [bc.condition]
        while stack:
            node = stack.pop()
            if isinstance(node, Column):
                res = analyzed.resolutions.get((node.table, node.name))
                if res is not None and res.binding == analyzed.base_binding:
                    out.add(res.field.name)
            else:
                stack.extend(node.children())
    return tuple(sorted(out))


@dataclass
class _PathCensus:
    """What queries actually do to one block path."""

    #: Range/equality predicate column frequencies (sortable/indexable).
    predicate_cols: Counter = field(default_factory=Counter)
    #: Full read-set frequencies (the projection signal).
    read_cols: Counter = field(default_factory=Counter)
    #: Broadcast-join key frequencies (the co-partition signal).
    join_cols: Counter = field(default_factory=Counter)
    scans: int = 0


@dataclass
class LayoutStats:
    cycles: int = 0
    rewrites: int = 0
    failed_rewrites: int = 0
    rewritten_bytes: int = 0
    #: Reads actually served from a non-base variant.
    variant_reads: int = 0
    #: Variant serves declined because the projection missed a column.
    ineligible_reads: int = 0


class LayoutDaemon:
    """Background per-replica layout rewriter on the simulated clock.

    One daemon serves the whole cluster: leaves call :meth:`record_scan`
    from their execution path and :meth:`payload_for` when reading, the
    scheduler calls :meth:`scan_seconds` / :meth:`replica_bytes` for
    layout-aware placement, and clients attach their
    :class:`~repro.client.history.QueryHistory` so the §IV-A log
    analysis feeds the census too.

    Replica 0 of every block is **never** rewritten — with the base
    payload authoritative in storage this is belt on top of braces, but
    it keeps one replica cheap to repair from and makes the heterogeneity
    explicit: copies *diverge*, the block doesn't.
    """

    def __init__(
        self,
        sim: Simulator,
        net: NetworkTopology,
        router: StorageRouter,
        heat: Optional[HeatTracker] = None,
        cost_model: Optional[CostModel] = None,
        period_s: float = 45.0,
        heat_threshold: float = 2.0,
        min_evidence: int = 2,
        max_rewrites_per_cycle: int = 4,
        census_top_k: int = 32,
    ):
        self.sim = sim
        self.net = net
        self.router = router
        self.heat = heat if heat is not None else HeatTracker()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.period_s = period_s
        self.heat_threshold = heat_threshold
        self.min_evidence = min_evidence
        self.max_rewrites_per_cycle = max_rewrites_per_cycle
        self.census_top_k = census_top_k
        #: Optional placement-eligibility predicate over node addresses
        #: (S55): when wired to membership drain/liveness state the
        #: daemon stops planning rewrites onto nodes that are dead or
        #: draining — their replicas are being evacuated, variants and
        #: all, not improved in place.
        self.placement_ok = None
        self.stats = LayoutStats()
        self._census: Dict[str, _PathCensus] = {}
        self._histories: List = []
        #: History-derived column frequencies, rebuilt each cycle (the
        #: history recomputes over its full log; accumulating would
        #: double-count).
        self._history_pred: Counter = Counter()
        self._history_reads: Counter = Counter()
        self._running = False

    # -- census (leaf + history facing) -----------------------------------

    def record_scan(
        self,
        path: str,
        cnf: ConjunctiveForm,
        columns: Sequence[str],
        join_columns: Sequence[str] = (),
        reader: Optional[NodeAddress] = None,
        nbytes: int = 0,
        now: float = 0.0,
    ) -> None:
        """Called by leaves per executed scan task, original catalog path."""
        self.heat.record(path, nbytes, reader=reader, now=now)
        census = self._census.get(path)
        if census is None:
            census = self._census[path] = _PathCensus()
        census.scans += 1
        census.read_cols.update(columns)
        census.join_cols.update(join_columns)
        for clause in cnf.clauses:
            # Only single-atom residual-free clauses pin down one column
            # a sort order or attached index can serve.
            if len(clause.atoms) == 1 and not clause.residuals:
                atom = clause.atoms[0]
                if atom.op in RANGE_OPS and not atom.negated:
                    census.predicate_cols[atom.column] += 1

    def attach_history(self, history) -> None:
        """Wire a client's QueryHistory into the census (§IV-A signal)."""
        if history not in self._histories:
            self._histories.append(history)

    def _ingest_histories(self) -> None:
        self._history_pred = Counter()
        self._history_reads = Counter()
        for history in self._histories:
            for key, count in history.frequent_predicates(self.census_top_k):
                parts = key.split()
                if len(parts) < 3 or parts[0] == "NOT":
                    continue
                column, op = parts[0], parts[1]
                if op in ("<", "<=", ">", ">=", "="):
                    self._history_pred[column] += count
            for column, count in history.frequent_columns(self.census_top_k):
                self._history_reads[column] += count

    # -- read-path hooks (leaf facing) -------------------------------------

    def serving_replica(self, system, inner: str, reader: NodeAddress):
        """Which replica a read from ``reader`` is served by: the local
        copy when the reader holds one, else the nearest replica — the
        same rule :meth:`LeafServer._charge_io` prices."""
        try:
            locations = system.locations(inner)
        except PathError:
            return None
        if not locations:
            return None
        if reader in locations:
            return reader
        return min(locations, key=lambda addr: self.net.distance(addr, reader))

    def spec_at(self, system, inner: str, node) -> Optional[LayoutSpec]:
        if node is None:
            return None
        return LayoutSpec.from_meta(system.replica_meta(inner, node))

    def payload_for(
        self, system, inner: str, node, columns: Sequence[str]
    ) -> Tuple[bytes, Optional[LayoutSpec]]:
        """Bytes a read served by ``node`` returns plus the layout they
        carry — base payload when no variant is published or the variant's
        projection can't cover ``columns``."""
        if node is not None:
            spec = self.spec_at(system, inner, node)
            if spec is not None:
                if spec.serves(columns):
                    variant = system.replica_variant(inner, node)
                    if variant is not None:
                        self.stats.variant_reads += 1
                        return variant, spec
                else:
                    self.stats.ineligible_reads += 1
        return system.read(inner), None

    def layout_of(self, path: str, node) -> Optional[LayoutSpec]:
        """Convenience for tests/EXPLAIN: the spec ``node`` serves for a
        full catalog path, or None."""
        try:
            system, inner = self.router.resolve(path)
        except PathError:
            return None
        return self.spec_at(system, inner, node)

    # -- placement scoring (scheduler facing) ------------------------------

    def replica_bytes(self, task, addr) -> float:
        """Modeled bytes a scan of ``task.columns`` reads from ``addr``'s
        replica — the variant's own encoded chunk sizes when it serves
        the column set, the catalog estimate otherwise."""
        base = task.block.bytes_for(task.columns) * task.block.scale_factor
        try:
            system, inner = self.router.resolve(task.block.path)
        except PathError:
            return base
        meta = system.replica_meta(inner, addr)
        spec = LayoutSpec.from_meta(meta)
        if spec is None or not spec.serves(task.columns):
            return base
        column_bytes = meta.get("column_bytes", {})
        if not column_bytes:
            return base
        return (
            sum(column_bytes.get(c, 0) for c in task.columns)
            * task.block.scale_factor
        )

    def scan_seconds(self, task, cnf: ConjunctiveForm, leaf_address) -> float:
        """Placement estimate for ``leaf_address`` running ``task``, priced
        against the layout of the replica that would serve the read.

        Sorted replica → binary-search range pruning (fractional read),
        column-subset replica → smaller read, attached index → covered
        probe; non-holders additionally pay the variant-sized transfer.
        """
        try:
            system, inner = self.router.resolve(task.block.path)
        except PathError:
            return self.cost_model.task_seconds(task, cnf)
        serving = self.serving_replica(system, inner, leaf_address)
        spec = self.spec_at(system, inner, serving)
        if spec is not None and not spec.serves(task.columns):
            spec = None
        est = self._layout_task_seconds(task, cnf, system, serving, spec)
        if serving is not None and serving != leaf_address:
            est += self.net.transfer_time_estimate(
                serving, leaf_address, int(self.replica_bytes(task, serving))
            )
        return est

    def _layout_task_seconds(self, task, cnf, system, serving, spec) -> float:
        profile = system.profile
        if spec is None:
            return self.cost_model.task_seconds(
                task,
                cnf,
                bandwidth_factor=profile.bandwidth_factor,
                extra_latency_s=profile.first_byte_latency_s,
            )
        if spec.index_column is not None and _index_covers(cnf, spec.index_column):
            # Covered probe: same shape the SmartIndex full-cover path uses.
            return self.cost_model.index_cpu_seconds(task, max(1, len(cnf.clauses)))
        nbytes = self.replica_bytes(task, serving)
        if spec.sort_column is not None and spec.sort_column in task.columns:
            _, inner = self.router.resolve(task.block.path)
            meta = system.replica_meta(inner, serving) or {}
            fraction = _meta_range_fraction(meta, cnf, spec.sort_column)
            if fraction < 1.0:
                sort_bytes = meta.get("column_bytes", {}).get(
                    spec.sort_column, 0
                ) * task.block.scale_factor
                nbytes = sort_bytes + fraction * max(0.0, nbytes - sort_bytes)
        return self.cost_model.sized_task_seconds(
            nbytes,
            task.block.modeled_rows,
            cnf,
            len(task.columns),
            bandwidth_factor=profile.bandwidth_factor,
            extra_latency_s=profile.first_byte_latency_s,
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.process(self._loop(), name="layout-daemon")

    def _loop(self) -> Generator[Event, None, None]:
        while True:
            yield self.sim.timeout(self.period_s)
            yield self.sim.process(self.run_once(), name="layout-cycle")

    # -- one decision cycle ------------------------------------------------

    def desired_layouts(self, path: str) -> Dict[NodeAddress, LayoutSpec]:
        """The per-replica layout plan the census currently justifies for
        ``path`` (replica 0 excluded — it stays base)."""
        try:
            system, inner = self.router.resolve(path)
        except PathError:
            return {}
        if not system.exists(inner):
            return {}
        replicas = system.locations(inner)
        if len(replicas) < 2:
            return {}
        census = self._census.get(path, _PathCensus())
        pred_cols = census.predicate_cols + self._history_pred
        read_cols = census.read_cols + self._history_reads
        pred = _top_with_evidence(pred_cols, self.min_evidence)
        join = _top_with_evidence(census.join_cols, self.min_evidence)

        subset: Optional[Tuple[str, ...]] = None
        if read_cols:
            wanted = set(read_cols)
            wanted.update(c for c in (pred, join) if c is not None)
            subset = tuple(sorted(wanted))

        desired: Dict[NodeAddress, LayoutSpec] = {}
        if pred is not None:
            # Replica 1: sorted projection on the dominant predicate
            # column — binary-search range pruning plus a smaller read.
            desired[replicas[1]] = LayoutSpec(sort_column=pred, columns=subset)
        if len(replicas) > 2:
            if join is not None and join != pred:
                # Replica 2: join-co-partitioned, with the predicate
                # column's attached B+ tree for covered probes.
                desired[replicas[2]] = LayoutSpec(
                    columns=subset, index_column=pred, copartition_column=join
                )
            elif pred is not None and subset is not None:
                desired[replicas[2]] = LayoutSpec(columns=subset, index_column=pred)
        return {
            node: spec
            for node, spec in desired.items()
            if not spec.is_base
            and (self.placement_ok is None or self.placement_ok(node))
        }

    def run_once(self) -> Generator[Event, None, None]:
        now = self.sim.now
        self.stats.cycles += 1
        self._ingest_histories()
        rewrites = 0
        for path, heat in self.heat.hottest(now, self.census_top_k):
            if rewrites >= self.max_rewrites_per_cycle:
                break
            if heat < self.heat_threshold:
                continue
            try:
                system, inner = self.router.resolve(path)
            except PathError:
                continue
            if not system.exists(inner):
                continue
            for node, spec in self.desired_layouts(path).items():
                current = self.spec_at(system, inner, node)
                if current == spec:
                    continue  # already published: adopt, don't re-copy
                try:
                    done = yield from self._rewrite(system, inner, node, spec)
                except FaultInjectedError:
                    self.stats.failed_rewrites += 1
                    break
                if done:
                    rewrites += 1
                    # One replica of a block per cycle: the block's other
                    # copies stay readable at their current layout while
                    # this one settles.
                    break

    def _rewrite(
        self, system, inner: str, node, spec: LayoutSpec
    ) -> Generator[Event, None, bool]:
        """Rewrite one replica into ``spec`` via publish-after-write.

        The base payload is read (always available), transformed, shipped
        to the replica holder, and only then published as that node's
        variant.  A fault killing the transfer leaves no published
        variant — the replica keeps serving its previous bytes and the
        next cycle retries from scratch; an unchanged base plus the
        deterministic rewrite make the retry idempotent.
        """
        base = system.read(inner)
        block = Block.from_bytes(base)
        spec = spec.narrowed_to([f.name for f in block.schema.fields])
        if spec.is_base:
            return False
        variant = apply_layout(block, spec)
        data = variant.to_bytes()
        meta = spec.to_meta()
        meta["column_bytes"] = {
            name: chunk.encoded_bytes for name, chunk in variant.chunks.items()
        }
        meta["num_rows"] = variant.num_rows
        order_col = spec.order_column
        if order_col is not None and order_col in variant.chunks:
            stats = variant.chunks[order_col].stats
            if _json_scalar(stats.min_value) is not None:
                meta["order_range"] = [
                    _json_scalar(stats.min_value),
                    _json_scalar(stats.max_value),
                ]
        sources = [addr for addr in system.locations(inner) if addr != node]
        source = (
            min(sources, key=lambda s: self.net.distance(s, node)) if sources else node
        )
        yield self.net.transfer(source, node, len(data), TrafficClass.WRITE)
        if not system.exists(inner):
            return False  # block deleted while the rewrite was in flight
        if node not in system.locations(inner):
            return False  # replica lost mid-rewrite; nothing to publish onto
        system.set_replica_variant(inner, node, data, meta=meta)
        self.stats.rewrites += 1
        self.stats.rewritten_bytes += len(data)
        return True


def _top_with_evidence(counter: Counter, min_evidence: int) -> Optional[str]:
    """Most frequent entry when it clears the evidence floor; ties break
    lexicographically so cycles are deterministic."""
    best = None
    for name, count in counter.items():
        if count < min_evidence:
            continue
        if best is None or count > best[1] or (count == best[1] and name < best[0]):
            best = (name, count)
    return best[0] if best is not None else None


def _index_covers(cnf: ConjunctiveForm, index_column: str) -> bool:
    """Can an attached B+ tree on ``index_column`` answer the whole CNF?
    Mirrors the executor's full-cover condition: every clause single-atom,
    residual-free, on the indexed column, with a supported operator."""
    if not cnf.clauses:
        return False
    for clause in cnf.clauses:
        if clause.residuals or len(clause.atoms) != 1:
            return False
        atom = clause.atoms[0]
        if atom.column != index_column or atom.negated or atom.op not in RANGE_OPS:
            return False
    return True


def _meta_range_fraction(meta: Optional[dict], cnf: ConjunctiveForm, sort_column: str) -> float:
    """Estimated candidate-row fraction a sorted replica's binary search
    leaves for ``cnf``, from the variant's published order-column range.
    1.0 when nothing prunable; the executor computes the exact fraction."""
    if not meta:
        return 1.0
    rng = meta.get("order_range")
    if not rng:
        return 1.0
    lo, hi = rng
    if not isinstance(lo, (int, float)) or not isinstance(hi, (int, float)) or hi <= lo:
        return 1.0
    width = float(hi) - float(lo)
    fraction = 1.0
    for clause in cnf.clauses:
        if clause.residuals or len(clause.atoms) != 1:
            continue
        atom = clause.atoms[0]
        if atom.column != sort_column or atom.negated:
            continue
        if not isinstance(atom.value, (int, float)) or isinstance(atom.value, bool):
            continue
        v = float(atom.value)
        if atom.op in (BinaryOperator.LT, BinaryOperator.LE):
            f = (v - lo) / width
        elif atom.op in (BinaryOperator.GT, BinaryOperator.GE):
            f = (hi - v) / width
        elif atom.op is BinaryOperator.EQ:
            f = 1.0 / max(1.0, width)
        else:
            continue
        fraction = min(fraction, max(0.0, min(1.0, f)))
    return fraction


def _json_scalar(value):
    """Chunk stats hold numpy scalars; variant meta must stay JSON-able."""
    if isinstance(value, (bool, np.bool_)):
        return None  # bool ranges prune nothing worth modeling
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        v = float(value)
        return v if v == v else None  # NaN min/max: unusable for pruning
    return None


def sorted_candidate_rows(
    block: Block, sort_column: str, cnf: ConjunctiveForm
) -> Optional[int]:
    """Exact candidate-row count a binary search over ``sort_column``
    leaves on a sorted block, or None when no clause prunes.

    Used by the executor to charge a sorted variant's fractional read;
    evaluation itself stays exact on every row, so answers are identical
    to the base replica's.
    """
    if sort_column not in block.chunks:
        return None
    usable: List[AtomicPredicate] = []
    for clause in cnf.clauses:
        if clause.residuals or len(clause.atoms) != 1:
            continue
        atom = clause.atoms[0]
        if atom.column == sort_column and not atom.negated and atom.op in RANGE_OPS:
            usable.append(atom)
    if not usable:
        return None
    values = block.column(sort_column)
    # Literal/column kind mismatch (e.g. a string literal against a
    # numeric sort column): numpy's comparison is not meaningful for
    # pruning even when searchsorted doesn't raise — skip those atoms.
    numeric = values.dtype.kind in "iuf"
    usable = [
        atom
        for atom in usable
        if (isinstance(atom.value, (int, float)) and not isinstance(atom.value, bool))
        == numeric
    ]
    if not usable:
        return None
    lo_idx, hi_idx = 0, len(values)
    try:
        for atom in usable:
            if atom.op is BinaryOperator.EQ:
                lo_idx = max(lo_idx, int(np.searchsorted(values, atom.value, side="left")))
                hi_idx = min(hi_idx, int(np.searchsorted(values, atom.value, side="right")))
            elif atom.op is BinaryOperator.LT:
                hi_idx = min(hi_idx, int(np.searchsorted(values, atom.value, side="left")))
            elif atom.op is BinaryOperator.LE:
                hi_idx = min(hi_idx, int(np.searchsorted(values, atom.value, side="right")))
            elif atom.op is BinaryOperator.GT:
                lo_idx = max(lo_idx, int(np.searchsorted(values, atom.value, side="right")))
            elif atom.op is BinaryOperator.GE:
                lo_idx = max(lo_idx, int(np.searchsorted(values, atom.value, side="left")))
    except TypeError:
        return None  # incomparable literal (e.g. string vs. numeric column)
    return max(0, hi_idx - lo_idx)
