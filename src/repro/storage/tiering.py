"""Heat-based adaptive tiering across storage substrates (S50).

Feisu §IV-B leaves SSD cache preferences to *manual* operator
interference, and cold archival data stays on Fatman forever no matter
how often analysts hammer it.  This module closes both gaps with one
observation loop:

* a :class:`HeatTracker` records per-block access mass with exponential
  decay — frequency, recency and modeled bytes in one number — plus the
  per-node reader census;
* a :class:`TieringDaemon` on the simulated clock ranks blocks by
  benefit-per-byte (``heat × tier_saved_seconds / nbytes``, mirroring the
  SmartIndex cache policy) and

  1. derives SSD cache preferences automatically from the hottest paths
     (no more manual ``prefer()`` calls),
  2. **promotes** hot cold-tier blocks (FatmanFS: 0.25 s first byte,
     half disk bandwidth, one task slot) into the hot
     :class:`~repro.storage.systems.DistributedFS`, placing the first
     replica on the block's most frequent reader,
  3. **demotes** promoted blocks whose heat has decayed, and
  4. exposes ``effective_path``/``tier_of`` hints that the leaf read
     path and the :class:`~repro.cluster.scheduler.JobScheduler` consume
     for locality.

Promotion is a *copy*, never a move: the cold replica set is untouched,
so the :class:`~repro.faults.invariants.InvariantMonitor` replication
floor holds on both systems throughout.  A promotion killed mid-transfer
by the fault injector leaves no published hint and no placement entry;
the next cycle retries, and an ``exists`` check first makes the retry
idempotent (a completed copy whose publish was lost is adopted, not
re-copied or double-counted).

Everything is flag-gated behind ``LeafConfig.enable_tiering`` — with the
flag off the daemon is never constructed and no simulation event, trace
tag or figure byte changes.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.errors import FaultInjectedError, PathError
from repro.planner.cost import CostModel
from repro.sim.events import Event, Simulator
from repro.sim.netmodel import NetworkTopology, NodeAddress, TrafficClass
from repro.storage.base import StorageSystem
from repro.storage.router import StorageRouter
from repro.storage.ssd_cache import SsdCache

__all__ = ["HeatRecord", "HeatTracker", "TieringDaemon", "TieringStats"]

#: Mount point inside the hot system for promoted cold blocks; the cold
#: scheme is embedded so two substrates with colliding inner paths cannot
#: overwrite each other's promotions.
PROMOTED_MOUNT = "/_tier"


@dataclass
class HeatRecord:
    """Decayed access mass and reader census for one full path."""

    mass: float = 0.0
    last_access_s: float = 0.0
    #: Largest modeled I/O charge observed for the path — the stable
    #: per-read byte denominator for benefit scoring.
    nbytes: int = 0
    accesses: int = 0
    readers: Counter = field(default_factory=Counter)

    def decayed(self, now: float, half_life_s: float) -> float:
        age = max(0.0, now - self.last_access_s)
        return self.mass * math.pow(0.5, age / half_life_s)


class HeatTracker:
    """Per-path exponentially-decayed access heat.

    Each access adds one unit of mass; mass halves every
    ``half_life_s`` simulated seconds.  Heat therefore blends frequency
    and recency exactly like the SmartIndex benefit score blends hit
    counts with aging (PR 4), and the tracker never touches the
    simulator — callers pass ``now`` in.
    """

    def __init__(self, half_life_s: float = 120.0):
        if half_life_s <= 0:
            raise ValueError("half_life_s must be positive")
        self.half_life_s = half_life_s
        self._records: Dict[str, HeatRecord] = {}

    def record(
        self,
        path: str,
        nbytes: int,
        reader: Optional[NodeAddress] = None,
        now: float = 0.0,
    ) -> None:
        rec = self._records.get(path)
        if rec is None:
            rec = self._records[path] = HeatRecord()
        rec.mass = rec.decayed(now, self.half_life_s) + 1.0
        rec.last_access_s = now
        rec.nbytes = max(rec.nbytes, int(nbytes))
        rec.accesses += 1
        if reader is not None:
            rec.readers[reader] += 1

    def heat(self, path: str, now: float) -> float:
        rec = self._records.get(path)
        return rec.decayed(now, self.half_life_s) if rec is not None else 0.0

    def nbytes(self, path: str) -> int:
        rec = self._records.get(path)
        return rec.nbytes if rec is not None else 0

    def top_reader(self, path: str) -> Optional[NodeAddress]:
        rec = self._records.get(path)
        if rec is None or not rec.readers:
            return None
        return rec.readers.most_common(1)[0][0]

    def paths(self) -> List[str]:
        return sorted(self._records)

    def hottest(self, now: float, k: int) -> List[Tuple[str, float]]:
        """Top-``k`` (path, heat) pairs, hottest first, zero-heat dropped."""
        scored = [(p, r.decayed(now, self.half_life_s)) for p, r in self._records.items()]
        scored = [(p, h) for p, h in scored if h > 0.0]
        scored.sort(key=lambda ph: (-ph[1], ph[0]))
        return scored[:k]


@dataclass
class TieringStats:
    cycles: int = 0
    promotions: int = 0
    demotions: int = 0
    failed_promotions: int = 0
    adopted_promotions: int = 0
    replica_extensions: int = 0
    promoted_bytes: int = 0


class TieringDaemon:
    """Background promotion/demotion loop on the simulated clock.

    One daemon serves the whole cluster: leaves call
    :meth:`record_access` from their I/O charge path and
    :meth:`effective_path` before resolving a block, the scheduler calls
    :meth:`effective_path` for placement, and
    :meth:`attach_cache` wires each leaf's :class:`SsdCache` for
    automatic preference management.
    """

    def __init__(
        self,
        sim: Simulator,
        net: NetworkTopology,
        router: StorageRouter,
        hot_system: StorageSystem,
        heat: Optional[HeatTracker] = None,
        cost_model: Optional[CostModel] = None,
        period_s: float = 30.0,
        promote_threshold: float = 3.0,
        demote_threshold: float = 0.75,
        max_promoted_bytes: int = 256 * 1024 * 1024,
        max_promotions_per_cycle: int = 8,
        prefer_top_k: int = 8,
    ):
        self.sim = sim
        self.net = net
        self.router = router
        self.hot_system = hot_system
        self.heat = heat if heat is not None else HeatTracker()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.period_s = period_s
        self.promote_threshold = promote_threshold
        self.demote_threshold = demote_threshold
        self.max_promoted_bytes = max_promoted_bytes
        self.max_promotions_per_cycle = max_promotions_per_cycle
        self.prefer_top_k = prefer_top_k
        self.stats = TieringStats()
        #: Optional placement-eligibility predicate over node addresses
        #: (S55): when set — the elastic manager wires it to membership
        #: drain/liveness state — promotions and replica extensions skip
        #: nodes that are dead or draining out of the cluster.
        self.placement_ok = None
        #: cold full path -> hot full path, published only after the hot
        #: copy is fully written (crash before publish ⇒ clean retry).
        self._promoted: Dict[str, str] = {}
        self._promoted_bytes: Dict[str, int] = {}
        self._caches: List[SsdCache] = []
        self._auto_preferred: Set[str] = set()
        self._running = False

    # -- leaf/scheduler-facing hints --------------------------------------

    def record_access(self, path: str, nbytes: int, reader=None, now: float = 0.0) -> None:
        """Called with the *original* catalog path so heat survives
        promotion and demotion transitions."""
        self.heat.record(path, nbytes, reader=reader, now=now)

    def effective_path(self, path: str) -> str:
        """Where reads for ``path`` should actually go right now."""
        return self._promoted.get(path, path)

    def tier_of(self, path: str) -> str:
        """``promoted`` | ``cold`` | ``hot`` for trace tags and EXPLAIN."""
        if path in self._promoted:
            return "promoted"
        try:
            system, _ = self.router.resolve(path)
        except PathError:
            return "hot"
        if system.profile.first_byte_latency_s > self.hot_system.profile.first_byte_latency_s:
            return "cold"
        return "hot"

    def promoted_paths(self) -> Dict[str, str]:
        return dict(self._promoted)

    def attach_cache(self, cache: SsdCache) -> None:
        self._caches.append(cache)
        for prefix in self._auto_preferred:
            cache.prefer(prefix)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.process(self._loop(), name="tiering-daemon")

    def _loop(self) -> Generator[Event, None, None]:
        while True:
            yield self.sim.timeout(self.period_s)
            yield self.sim.process(self.run_once(), name="tiering-cycle")

    # -- one decision cycle -----------------------------------------------

    def _benefit_per_byte(self, path: str, now: float) -> float:
        """``heat × saved_seconds / nbytes`` — the SmartIndex score shape
        applied to substrate promotion."""
        nbytes = self.heat.nbytes(path)
        if nbytes <= 0:
            return 0.0
        try:
            system, _ = self.router.resolve(path)
        except PathError:
            return 0.0
        saved = self.cost_model.tier_saved_seconds(
            nbytes, system.profile, self.hot_system.profile
        )
        return self.heat.heat(path, now) * saved / nbytes

    def _promotion_candidates(self, now: float) -> List[str]:
        out = []
        for path in self.heat.paths():
            if path in self._promoted:
                continue
            if self.heat.heat(path, now) < self.promote_threshold:
                continue
            try:
                system, inner = self.router.resolve(path)
            except PathError:
                continue
            if system is self.hot_system:
                continue
            if system.profile.first_byte_latency_s <= self.hot_system.profile.first_byte_latency_s:
                continue  # already on an equally-hot substrate
            if not system.exists(inner):
                continue
            out.append(path)
        out.sort(key=lambda p: (-self._benefit_per_byte(p, now), p))
        return out

    def run_once(self) -> Generator[Event, None, None]:
        now = self.sim.now
        self.stats.cycles += 1
        # Demote first: decayed blocks free promoted-byte budget this cycle.
        for path in list(self._promoted):
            if self.heat.heat(path, now) <= self.demote_threshold:
                self._demote(path)
        budget = self.max_promoted_bytes - sum(self._promoted_bytes.values())
        promoted = 0
        for path in self._promotion_candidates(now):
            if promoted >= self.max_promotions_per_cycle:
                break
            est = self.heat.nbytes(path)
            if est > budget:
                continue
            try:
                done = yield from self._promote(path)
            except FaultInjectedError:
                self.stats.failed_promotions += 1
                continue
            if done:
                promoted += 1
                budget -= self._promoted_bytes.get(path, est)
        # Placement follows the readers: a promoted block whose dominant
        # reader shifted gains a replica there.
        for path in list(self._promoted):
            reader = self.heat.top_reader(path)
            if reader is None:
                continue
            try:
                yield from self.extend_replica(path, reader)
            except FaultInjectedError:
                self.stats.failed_promotions += 1
        self._refresh_preferences(now)

    def _promote(self, path: str) -> Generator[Event, None, bool]:
        """Copy one cold block into the hot system near its top reader.

        Idempotent: an already-written hot copy (publish lost to an
        earlier fault) is adopted without a second transfer, and the hint
        is only published after the hot replica set exists in full.
        """
        cold_system, cold_inner = self.router.resolve(path)
        hot_inner = f"{PROMOTED_MOUNT}/{cold_system.scheme}{cold_inner}"
        hot_full = self.router.full_path(self.hot_system, hot_inner)
        if self.hot_system.exists(hot_inner):
            self._publish(path, hot_full, self.hot_system.size(hot_inner))
            self.stats.adopted_promotions += 1
            return True
        data = cold_system.read(cold_inner)
        reader = self.heat.top_reader(path)
        sources = cold_system.locations(cold_inner)
        if not sources:
            return False
        if reader is not None and self.placement_ok is not None and not self.placement_ok(reader):
            reader = None  # the top reader is dead or draining away
        if reader is None:
            eligible = [
                s for s in sources if self.placement_ok is None or self.placement_ok(s)
            ]
            if not eligible:
                return False
            reader = eligible[0]
        source = min(sources, key=lambda s: self.net.distance(s, reader))
        yield self.net.transfer(source, reader, len(data), TrafficClass.WRITE)
        if not cold_system.exists(cold_inner):
            return False  # source block deleted while the copy was in flight
        self.hot_system.write(hot_inner, data, node=reader)
        self._publish(path, hot_full, len(data))
        self.stats.promotions += 1
        return True

    def _publish(self, path: str, hot_full: str, nbytes: int) -> None:
        self._promoted[path] = hot_full
        self._promoted_bytes[path] = nbytes
        self.stats.promoted_bytes += nbytes

    def _demote(self, path: str) -> None:
        """Retract the hint *first*, then drop the hot copy — a reader
        racing the demotion either sees the hint and a live hot copy, or
        no hint and the cold copy; never a dangling redirect."""
        hot_full = self._promoted.pop(path, None)
        self._promoted_bytes.pop(path, None)
        if hot_full is None:
            return
        _, hot_inner = self.router.resolve(hot_full)
        if self.hot_system.exists(hot_inner):
            self.hot_system.delete(hot_inner)
        self.stats.demotions += 1

    def extend_replica(self, path: str, reader: NodeAddress) -> Generator[Event, None, bool]:
        """Grow a promoted block's hot replica set toward a new frequent
        reader (placement follows the readers, §III-B locality)."""
        hot_full = self._promoted.get(path)
        if hot_full is None:
            return False
        _, hot_inner = self.router.resolve(hot_full)
        if not self.hot_system.exists(hot_inner):
            return False
        holders = self.hot_system.locations(hot_inner)
        if reader in holders or not holders:
            return False
        if self.placement_ok is not None and not self.placement_ok(reader):
            return False  # never grow the replica set onto a departing node
        nbytes = self.hot_system.size(hot_inner)
        source = min(holders, key=lambda s: self.net.distance(s, reader))
        yield self.net.transfer(source, reader, nbytes, TrafficClass.WRITE)
        if self.hot_system.add_replica(hot_inner, reader):
            self.stats.replica_extensions += 1
            return True
        return False

    # -- automatic SSD preferences ----------------------------------------

    def _refresh_preferences(self, now: float) -> None:
        """Diff the hottest-path set against current auto preferences and
        apply it to every attached cache.  Promoted blocks are preferred
        under *both* names so a cache entry keyed by either survives."""
        desired: Set[str] = set()
        for path, heat in self.heat.hottest(now, self.prefer_top_k):
            if heat <= self.demote_threshold:
                continue  # decayed residue is not worth pinning
            desired.add(path)
            hot_full = self._promoted.get(path)
            if hot_full is not None:
                desired.add(hot_full)
        for prefix in self._auto_preferred - desired:
            for cache in self._caches:
                cache.unprefer(prefix)
        for prefix in desired - self._auto_preferred:
            for cache in self._caches:
                cache.prefer(prefix)
        self._auto_preferred = desired

    def auto_preferred(self) -> Set[str]:
        return set(self._auto_preferred)
