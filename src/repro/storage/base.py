"""Storage-substrate interface.

Baidu's data lives on business-specific systems — local filesystems on
online service machines, HDFS, the Fatman cold store, KV label storage
(§II).  Each substrate here implements the same small interface so the
common storage layer (:mod:`repro.storage.router`) can route by path
prefix, and so the scheduler can ask any of them where a file's replicas
live.

The bytes are real (blocks round-trip through them); the *service
characteristics* — first-byte latency, per-node task agreements — are the
knobs the paper's leaf servers must honour so that Feisu "doesn't affect
the business critical applications on top of the storage system".
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import PathError, StorageError
from repro.sim.netmodel import NodeAddress


@dataclass(frozen=True)
class ServiceProfile:
    """Per-substrate service characteristics honoured by leaf servers."""

    #: Extra latency before the first byte (cold stores pay spin-up).
    first_byte_latency_s: float = 0.0
    #: Multiplier on the node disk's bandwidth when serving this system.
    bandwidth_factor: float = 1.0
    #: Resource consumption agreement (§V-A): concurrent Feisu tasks a
    #: node serving this system will grant before queueing.
    tasks_per_node: int = 4


class StorageSystem(abc.ABC):
    """One storage domain: a namespace of paths plus replica placement."""

    #: Path prefix (without slashes) that routes to this system, e.g. "hdfs".
    scheme: str = ""

    def __init__(self, name: str, domain: str, profile: ServiceProfile):
        self.name = name
        #: Security domain; credentials must carry it (§V-A SSO).
        self.domain = domain
        self.profile = profile
        self._files: Dict[str, bytes] = {}
        self._placement: Dict[str, List[NodeAddress]] = {}
        #: Per-replica physical variants ("Trojan" layouts, S54): an
        #: individual replica holder may serve an alternative encoding of
        #: the same logical file, published by the layout daemon.  The
        #: base payload in ``_files`` stays authoritative — variants are
        #: an overlay, so replication accounting and readability never
        #: depend on them.  Each entry is ``(bytes, meta)`` where meta is
        #: an opaque JSON-able dict describing the layout.
        self._variants: Dict[str, Dict[NodeAddress, Tuple[bytes, Optional[dict]]]] = {}

    # -- namespace ------------------------------------------------------

    def write(self, path: str, data: bytes, node: Optional[NodeAddress] = None) -> None:
        """Store ``data`` at ``path`` with system-specific placement."""
        if not path.startswith("/"):
            raise PathError(f"storage paths must be absolute, got {path!r}")
        placement = self._place(path, len(data), node)
        if not placement:
            raise StorageError(f"{self.name}: no placement for {path!r}")
        self._files[path] = bytes(data)
        self._placement[path] = placement
        # A rewritten base payload invalidates every replica variant: the
        # variants were derived from the old bytes.
        self._variants.pop(path, None)

    def read(self, path: str) -> bytes:
        try:
            return self._files[path]
        except KeyError:
            raise PathError(f"{self.name}: no such path {path!r}") from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def size(self, path: str) -> int:
        return len(self.read(path))

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise PathError(f"{self.name}: no such path {path!r}")
        del self._files[path]
        del self._placement[path]
        self._variants.pop(path, None)

    # -- per-replica layout variants (S54) -------------------------------

    def set_replica_variant(
        self, path: str, node: NodeAddress, data: bytes, meta: Optional[dict] = None
    ) -> None:
        """Publish an alternative physical encoding of ``path`` served by
        ``node``'s replica.  The node must currently hold a replica; the
        base payload is untouched, so readability and the replication
        floor never depend on a variant."""
        if node not in self.locations(path):
            raise StorageError(
                f"{self.name}: {node} holds no replica of {path!r}; "
                "cannot attach a layout variant"
            )
        self._variants.setdefault(path, {})[node] = (bytes(data), meta)

    def replica_variant(self, path: str, node: NodeAddress) -> Optional[bytes]:
        """The variant bytes ``node`` serves for ``path``, or None."""
        entry = self._variants.get(path, {}).get(node)
        return entry[0] if entry is not None else None

    def replica_meta(self, path: str, node: NodeAddress) -> Optional[dict]:
        """The layout metadata attached to ``node``'s replica, or None."""
        entry = self._variants.get(path, {}).get(node)
        return entry[1] if entry is not None else None

    def read_replica(self, path: str, node: NodeAddress) -> bytes:
        """What a read served by ``node`` returns: its layout variant
        when one is published, the base payload otherwise."""
        variant = self.replica_variant(path, node)
        return variant if variant is not None else self.read(path)

    def clear_replica_variant(self, path: str, node: NodeAddress) -> None:
        """Retract a variant; the replica falls back to the base payload."""
        per_node = self._variants.get(path)
        if per_node is not None:
            per_node.pop(node, None)
            if not per_node:
                del self._variants[path]

    def variant_nodes(self, path: str) -> List[NodeAddress]:
        """Replica holders currently serving a non-base layout."""
        return list(self._variants.get(path, {}))

    def list_paths(self, prefix: str = "/") -> List[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    @property
    def total_bytes(self) -> int:
        return sum(len(v) for v in self._files.values())

    # -- node pool (S55 elastic membership) ------------------------------

    def nodes(self) -> List[NodeAddress]:
        """The nodes this system may place new replicas on."""
        return list(getattr(self, "_nodes", []))

    def add_node(self, node: NodeAddress) -> bool:
        """Admit a joined node to the placement pool; returns whether it
        was new.  Existing placements are untouched."""
        pool = getattr(self, "_nodes", None)
        if pool is None:
            raise StorageError(f"{self.name}: system has no node pool")
        if node in pool:
            return False
        pool.append(node)
        return True

    def remove_node(self, node: NodeAddress) -> None:
        """Retire a node from the placement pool (S55 decommission).

        Replicas it still holds must be evacuated *first*: retiring a
        node that appears in any placement would strand those blocks on
        a machine that is about to leave."""
        pool = getattr(self, "_nodes", None)
        if pool is None or node not in pool:
            raise StorageError(f"{self.name}: {node} is not in the node pool")
        stranded = self.held_paths(node)
        if stranded:
            raise StorageError(
                f"{self.name}: {node} still holds {len(stranded)} replica(s) "
                f"(e.g. {stranded[0]!r}); evacuate before removal"
            )
        pool.remove(node)

    def held_paths(self, node: NodeAddress) -> List[str]:
        """Paths whose placement includes ``node`` — the evacuation
        work-list for a draining machine."""
        return sorted(p for p, locs in self._placement.items() if node in locs)

    def bytes_on(self, node: NodeAddress) -> int:
        """Total payload bytes replicated onto ``node`` (load-balancing
        input for the rebalancer)."""
        return sum(
            len(self._files[p]) for p, locs in self._placement.items() if node in locs
        )

    # -- placement -------------------------------------------------------

    def locations(self, path: str) -> List[NodeAddress]:
        """Nodes holding a replica of ``path`` — the scheduler's locality
        input (§III-B: schedule to the data, else to a replica)."""
        try:
            return list(self._placement[path])
        except KeyError:
            raise PathError(f"{self.name}: no such path {path!r}") from None

    def drop_replica(self, path: str, node: NodeAddress) -> None:
        """Simulate replica loss (node crash / disk failure)."""
        replicas = self._placement.get(path)
        if not replicas:
            raise PathError(f"{self.name}: no such path {path!r}")
        if node in replicas:
            replicas.remove(node)
            # The node's payload is gone with the replica — a later
            # re-add must not resurrect a stale layout variant.
            self.clear_replica_variant(path, node)

    def add_replica(self, path: str, node: NodeAddress) -> bool:
        """Record an extra replica holder; idempotent (a node already in
        the placement is not double-counted).  Returns whether added."""
        try:
            replicas = self._placement[path]
        except KeyError:
            raise PathError(f"{self.name}: no such path {path!r}") from None
        if node in replicas:
            return False
        replicas.append(node)
        return True

    @abc.abstractmethod
    def _place(
        self, path: str, nbytes: int, node: Optional[NodeAddress]
    ) -> List[NodeAddress]:
        """Choose replica holders for a new file."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} files={len(self._files)}>"
