"""Storage-substrate interface.

Baidu's data lives on business-specific systems — local filesystems on
online service machines, HDFS, the Fatman cold store, KV label storage
(§II).  Each substrate here implements the same small interface so the
common storage layer (:mod:`repro.storage.router`) can route by path
prefix, and so the scheduler can ask any of them where a file's replicas
live.

The bytes are real (blocks round-trip through them); the *service
characteristics* — first-byte latency, per-node task agreements — are the
knobs the paper's leaf servers must honour so that Feisu "doesn't affect
the business critical applications on top of the storage system".
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import PathError, StorageError
from repro.sim.netmodel import NodeAddress


@dataclass(frozen=True)
class ServiceProfile:
    """Per-substrate service characteristics honoured by leaf servers."""

    #: Extra latency before the first byte (cold stores pay spin-up).
    first_byte_latency_s: float = 0.0
    #: Multiplier on the node disk's bandwidth when serving this system.
    bandwidth_factor: float = 1.0
    #: Resource consumption agreement (§V-A): concurrent Feisu tasks a
    #: node serving this system will grant before queueing.
    tasks_per_node: int = 4


class StorageSystem(abc.ABC):
    """One storage domain: a namespace of paths plus replica placement."""

    #: Path prefix (without slashes) that routes to this system, e.g. "hdfs".
    scheme: str = ""

    def __init__(self, name: str, domain: str, profile: ServiceProfile):
        self.name = name
        #: Security domain; credentials must carry it (§V-A SSO).
        self.domain = domain
        self.profile = profile
        self._files: Dict[str, bytes] = {}
        self._placement: Dict[str, List[NodeAddress]] = {}

    # -- namespace ------------------------------------------------------

    def write(self, path: str, data: bytes, node: Optional[NodeAddress] = None) -> None:
        """Store ``data`` at ``path`` with system-specific placement."""
        if not path.startswith("/"):
            raise PathError(f"storage paths must be absolute, got {path!r}")
        placement = self._place(path, len(data), node)
        if not placement:
            raise StorageError(f"{self.name}: no placement for {path!r}")
        self._files[path] = bytes(data)
        self._placement[path] = placement

    def read(self, path: str) -> bytes:
        try:
            return self._files[path]
        except KeyError:
            raise PathError(f"{self.name}: no such path {path!r}") from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def size(self, path: str) -> int:
        return len(self.read(path))

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise PathError(f"{self.name}: no such path {path!r}")
        del self._files[path]
        del self._placement[path]

    def list_paths(self, prefix: str = "/") -> List[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    @property
    def total_bytes(self) -> int:
        return sum(len(v) for v in self._files.values())

    # -- placement -------------------------------------------------------

    def locations(self, path: str) -> List[NodeAddress]:
        """Nodes holding a replica of ``path`` — the scheduler's locality
        input (§III-B: schedule to the data, else to a replica)."""
        try:
            return list(self._placement[path])
        except KeyError:
            raise PathError(f"{self.name}: no such path {path!r}") from None

    def drop_replica(self, path: str, node: NodeAddress) -> None:
        """Simulate replica loss (node crash / disk failure)."""
        replicas = self._placement.get(path)
        if not replicas:
            raise PathError(f"{self.name}: no such path {path!r}")
        if node in replicas:
            replicas.remove(node)

    def add_replica(self, path: str, node: NodeAddress) -> bool:
        """Record an extra replica holder; idempotent (a node already in
        the placement is not double-counted).  Returns whether added."""
        try:
            replicas = self._placement[path]
        except KeyError:
            raise PathError(f"{self.name}: no such path {path!r}") from None
        if node in replicas:
            return False
        replicas.append(node)
        return True

    @abc.abstractmethod
    def _place(
        self, path: str, nbytes: int, node: Optional[NodeAddress]
    ) -> List[NodeAddress]:
        """Choose replica holders for a new file."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} files={len(self._files)}>"
