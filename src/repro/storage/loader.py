"""Loading tables into storage and reading blocks back.

The light-weight per-node process of §III converts newly arrived data
into Feisu's columnar format; :func:`store_table` is its bulk analogue —
it splits columns into blocks, serializes each through the common storage
layer, and registers the resulting :class:`~repro.columnar.table.Table`
descriptor with catalog-grade statistics (per-column ranges for pruning).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.columnar.block import DEFAULT_BLOCK_ROWS, Block, split_into_blocks
from repro.columnar.schema import Schema
from repro.columnar.stats import ColumnHistogram
from repro.columnar.table import BlockRef, Catalog, Table
from repro.errors import StorageError
from repro.sim.netmodel import NodeAddress
from repro.storage.base import StorageSystem
from repro.storage.router import StorageRouter


def store_table(
    name: str,
    schema: Schema,
    columns: Mapping[str, np.ndarray],
    router: StorageRouter,
    system: StorageSystem,
    base_path: str = "",
    block_rows: int = DEFAULT_BLOCK_ROWS,
    scale_factor: float = 1.0,
    node: Optional[NodeAddress] = None,
    catalog: Optional[Catalog] = None,
    description: str = "",
) -> Table:
    """Split, serialize and place a table; return its descriptor.

    ``scale_factor`` records how many production rows each materialized
    row stands for (DESIGN.md §1) — it flows into every block reference
    so the cost model charges production-proportional I/O.
    """
    base_path = base_path or f"/tables/{name}"
    blocks = split_into_blocks(name, schema, dict(columns), block_rows, scale_factor)
    table = Table(name=name, schema=schema, description=description)
    for f in schema:
        if f.dtype.is_numeric:
            table.column_stats[f.name] = ColumnHistogram.build(
                np.asarray(columns[f.name])
            )
    for block in blocks:
        inner = f"{base_path}/{block.block_id}"
        full = router.full_path(system, inner)
        payload = block.to_bytes()
        system.write(inner, payload, node=node)
        table.add_block(make_block_ref(block, full, payload))
    if catalog is not None:
        catalog.register(table)
    return table


def store_table_striped(
    name: str,
    schema: Schema,
    columns: Mapping[str, np.ndarray],
    router: StorageRouter,
    systems: Sequence[StorageSystem],
    base_path: str = "",
    block_rows: int = DEFAULT_BLOCK_ROWS,
    scale_factor: float = 1.0,
    catalog: Optional[Catalog] = None,
    description: str = "",
) -> Table:
    """Like :func:`store_table` but striping blocks round-robin across
    several storage systems.

    This is the paper's data-integration scenario in its purest form:
    *one* logical table whose data lives on heterogeneous systems (hot
    HDFS + cold Fatman, say), queried through one SQL statement — each
    scan task resolves its own block's system through the common storage
    layer, honouring that system's service profile.
    """
    if not systems:
        raise StorageError("store_table_striped needs at least one system")
    base_path = base_path or f"/tables/{name}"
    blocks = split_into_blocks(name, schema, dict(columns), block_rows, scale_factor)
    table = Table(name=name, schema=schema, description=description)
    for f in schema:
        if f.dtype.is_numeric:
            table.column_stats[f.name] = ColumnHistogram.build(
                np.asarray(columns[f.name])
            )
    for i, block in enumerate(blocks):
        system = systems[i % len(systems)]
        inner = f"{base_path}/{block.block_id}"
        full = router.full_path(system, inner)
        payload = block.to_bytes()
        system.write(inner, payload)
        table.add_block(make_block_ref(block, full, payload))
    if catalog is not None:
        catalog.register(table)
    return table


def make_block_ref(block: Block, full_path: str, payload: bytes) -> BlockRef:
    column_bytes = tuple((n, c.encoded_bytes) for n, c in block.chunks.items())
    ranges = tuple(
        (n, c.stats.min_value, c.stats.max_value)
        for n, c in block.chunks.items()
        if c.stats.min_value is not None
    )
    return BlockRef(
        block_id=block.block_id,
        path=full_path,
        num_rows=block.num_rows,
        encoded_bytes=len(payload),
        column_bytes=column_bytes,
        scale_factor=block.scale_factor,
        column_ranges=ranges,
    )


def load_block(
    router: StorageRouter, ref: BlockRef, cred=None, now: float = 0.0, tiering=None
) -> Block:
    """Fetch and decode one block through the common storage layer.

    ``tiering`` (a :class:`~repro.storage.tiering.TieringDaemon`, or
    None) redirects the read to the promoted hot copy when one exists.
    """
    path = tiering.effective_path(ref.path) if tiering is not None else ref.path
    payload = router.read(path, cred=cred, now=now)
    block = Block.from_bytes(payload)
    if block.block_id != ref.block_id:
        raise StorageError(
            f"block identity mismatch: ref {ref.block_id!r} vs stored {block.block_id!r}"
        )
    return block


def read_table_frame(
    router: StorageRouter,
    table: Table,
    columns: Sequence[str],
    cred=None,
    now: float = 0.0,
    span=None,
    tiering=None,
) -> Dict[str, np.ndarray]:
    """Materialize selected columns of a whole table (broadcast tables).

    ``span`` (a :class:`~repro.obs.trace.Span`) gains one child per table
    read, tagged with the block count and encoded bytes touched.
    """
    parts: Dict[str, list] = {c: [] for c in columns}
    read_bytes = 0
    for ref in table.blocks:
        block = load_block(router, ref, cred=cred, now=now, tiering=tiering)
        read_bytes += ref.bytes_for(columns)
        for c in columns:
            parts[c].append(block.column(c))
    if span is not None:
        span.child(f"read_table.{table.name}", now).tag("blocks", len(table.blocks)).tag(
            "encoded_bytes", read_bytes
        ).finish(now)
    return {
        c: (np.concatenate(v) if v else np.empty(0, dtype=table.schema.field(c).dtype.numpy_dtype))
        for c, v in parts.items()
    }
