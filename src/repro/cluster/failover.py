"""Primary/backup replication for master components (§III-C).

"For reliability, components (the primary) are running with backups,
which don't provide service until the primary ones crash.  The backup
components get checkpoint and operations log from the primary in
realtime, so that they will reach the same running state as the primary.
Since the backup ones are shadows of the primary, they can provide
functionalities such as monitoring running information to reduce the
burdens on the primary."

:class:`PrimaryBackup` is a generic replicated state machine capturing
exactly that contract: writes go through :meth:`apply` on the primary and
stream to the shadow with a replication lag; reads for *monitoring*
purposes may be served by the shadow; on primary failure the shadow
replays any remaining log and takes over.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Generic, List, Optional, Tuple, TypeVar

from repro.errors import ClusterStateError
from repro.sim.events import Simulator

S = TypeVar("S")

#: How far (in applied ops) the shadow may trail the primary.
DEFAULT_MAX_LAG_OPS = 32


@dataclass
class _Replica(Generic[S]):
    state: S
    applied: int = 0


class PrimaryBackup(Generic[S]):
    """A replicated component: one primary, one shadow, one op log.

    ``make_state`` builds an empty state; ``ops`` are ``(fn, args)``
    closures applied identically to both replicas.  Determinism of ops is
    the caller's contract (all our cluster state ops are deterministic).
    """

    def __init__(
        self,
        sim: Simulator,
        make_state: Callable[[], S],
        name: str = "component",
        checkpoint_interval_ops: Optional[int] = None,
    ):
        self.sim = sim
        self.name = name
        self._make_state = make_state
        self._primary: Optional[_Replica[S]] = _Replica(make_state())
        self._shadow: Optional[_Replica[S]] = _Replica(make_state())
        self._log: List[Tuple[Callable[..., None], Tuple[Any, ...]]] = []
        #: Ops folded into the checkpoint; log entry i is global op
        #: ``_log_base + i``.  The log holds only the checkpoint's tail,
        #: so it no longer grows without bound across a long-lived master.
        self._log_base = 0
        self._checkpoint_state: Optional[S] = None
        #: Auto-checkpoint (sync + truncate) once the tail reaches this
        #: many ops; None = only explicit sync_shadow() checkpoints.
        self.checkpoint_interval_ops = checkpoint_interval_ops
        self.failovers = 0

    # -- writes ------------------------------------------------------------

    def apply(self, op: Callable[..., None], *args: Any) -> None:
        """Apply a mutation through the primary and log it for the shadow."""
        if self._primary is None:
            raise ClusterStateError(f"{self.name}: no primary to serve writes")
        self._log.append((op, args))
        op(self._primary.state, *args)
        self._primary.applied += 1
        self._replicate()
        if (
            self.checkpoint_interval_ops is not None
            and len(self._log) >= self.checkpoint_interval_ops
        ):
            self.sync_shadow()

    def _replicate(self) -> None:
        """Stream the op log to the shadow, keeping lag bounded."""
        if self._shadow is None:
            return
        while self._primary.applied - self._shadow.applied > DEFAULT_MAX_LAG_OPS:
            self._catch_up_one()

    def _catch_up_one(self) -> None:
        assert self._shadow is not None
        op, args = self._log[self._shadow.applied - self._log_base]
        op(self._shadow.state, *args)
        self._shadow.applied += 1

    def sync_shadow(self) -> None:
        """Drain the full log into the shadow, then checkpoint.

        After the drain both replicas agree, so the op log's only
        remaining consumer is a *future* shadow bootstrap — which the
        checkpoint now serves.  The log is therefore truncated here,
        bounding its memory to one checkpoint interval's tail.
        """
        if self._shadow is None:
            return
        while self._shadow.applied < self._primary.applied:
            self._catch_up_one()
        self._checkpoint_state = copy.deepcopy(self._primary.state)
        self._log_base = self._primary.applied
        self._log = []

    @property
    def log_length(self) -> int:
        """Ops retained in the in-memory tail (post-checkpoint)."""
        return len(self._log)

    # -- reads ----------------------------------------------------------------

    @property
    def state(self) -> S:
        """Authoritative state (primary)."""
        if self._primary is None:
            raise ClusterStateError(f"{self.name}: component entirely down")
        return self._primary.state

    def monitoring_state(self) -> S:
        """Possibly stale state served by the shadow (paper: shadows serve
        monitoring to offload the primary)."""
        if self._shadow is not None:
            return self._shadow.state
        return self.state

    @property
    def shadow_lag_ops(self) -> int:
        if self._shadow is None or self._primary is None:
            return 0
        return self._primary.applied - self._shadow.applied

    # -- failure handling --------------------------------------------------------

    def fail_primary(self) -> None:
        """Crash the primary; the shadow replays the log and takes over."""
        if self._primary is None:
            raise ClusterStateError(f"{self.name}: primary already down")
        if self._shadow is None:
            self._primary = None
            raise ClusterStateError(f"{self.name}: lost both replicas")
        # The shadow replays from the durable op log — not from the dead
        # primary — so recovery needs only the log entries it missed.
        while self._shadow.applied < self._log_base + len(self._log):
            self._catch_up_one()
        self._primary = self._shadow
        self._shadow = None
        self.failovers += 1

    def start_new_shadow(self) -> None:
        """Bring up a fresh shadow from checkpoint-plus-tail.

        Bootstraps from the last checkpoint (if any) and replays only the
        log tail recorded since — not the component's full history.
        """
        if self._checkpoint_state is not None:
            replica: _Replica[S] = _Replica(
                copy.deepcopy(self._checkpoint_state), applied=self._log_base
            )
        else:
            replica = _Replica(self._make_state(), applied=self._log_base)
        for op, args in self._log:
            op(replica.state, *args)
            replica.applied += 1
        self._shadow = replica
