"""The Feisu master: entry guard, job manager, scheduler, finalization.

Mirrors §III-C's component split: the :class:`EntryGuard` admits traffic
(identity, rights, quota), the job manager analyzes semantics and reuses
identical tasks, the job scheduler creates the scheduling plan, and task
results are summarized bottom-up (leaf → stem → master) before the
client sees them.  Oversized results take the §V-C write flow: dumped to
global storage with only the location passed upstream.  Primary/backup
replication of master-component state is provided by
:class:`repro.cluster.failover.PrimaryBackup`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Set, Tuple

from repro.cluster.jobs import (
    Job,
    TaskTiming,
    JobManager,
    JobOptions,
    JobStatus,
    new_job,
    task_signature,
)
from repro.cluster.membership import ClusterManager
from repro.cluster.messages import DISPATCH_BASE_BYTES, STATUS_BYTES, send
from repro.cluster.node import LeafServer, StemServer
from repro.cluster.scheduler import JobScheduler, Placement
from repro.columnar.table import Catalog
from repro.storage.loader import read_table_frame
from repro.engine.executor import QueryResult, TaskResult, finalize
from repro.errors import (
    AccessDeniedError,
    ClusterStateError,
    FeisuError,
    QueryTimeout,
    SchedulingError,
)
from repro.planner.expressions import Frame
from repro.planner.physical import PhysicalPlan, ScanTask, build_plan
from repro.security.acl import AccessControl, QuotaPolicy, RateLimiter
from repro.security.auth import Credential, SSOAuthority
from repro.sim.events import Event, Simulator
from repro.sim.netmodel import NetworkTopology, NodeAddress, TrafficClass
from repro.sql.analyzer import analyze
from repro.sql.parser import parse

#: How many distinct leaves one task may be attempted on before failing.
MAX_TASK_ATTEMPTS = 4

#: Default cap on concurrently running jobs (§III-C candidate queue);
#: deployments size it via ``FeisuConfig.max_concurrent_jobs``.
DEFAULT_MAX_CONCURRENT_JOBS = 64


class CandidateQueue:
    """The master's admitted-but-not-yet-emitted job queue (§III-C).

    Extracted from the master so the emission *policy* is pluggable: the
    default is strict FIFO (the paper's candidate queue); a serving
    front-end may install a subclass whose :meth:`pop_next` implements a
    different order.  The master only ever calls these five methods, so
    a policy override cannot corrupt job bookkeeping.
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[Job, Event]] = []

    def push(self, job: Job, done: Event) -> None:
        self._queue.append((job, done))

    def pop_next(self) -> Optional[Tuple[Job, Event]]:
        """The next job to emit, or None when empty."""
        if not self._queue:
            return None
        return self._queue.pop(0)

    def remove(self, job_id: str) -> Optional[Tuple[Job, Event]]:
        """Withdraw a queued job (cancellation) without emitting it."""
        for i, (job, done) in enumerate(self._queue):
            if job.job_id == job_id:
                del self._queue[i]
                return job, done
        return None

    def drain(self) -> List[Tuple[Job, Event]]:
        """Empty the queue, returning what was waiting (master failover)."""
        waiting, self._queue = self._queue, []
        return waiting

    def jobs(self) -> List[Tuple[Job, Event]]:
        return list(self._queue)

    def __len__(self) -> int:
        return len(self._queue)


def _straggler_watchdog(
    sim: Simulator,
    deadline_for,
    done: Event,
    attempts: List[Event],
    estimates: List[float],
    launch_times: List[float],
    launch,
) -> Generator[Event, None, None]:
    """Back up the *newest in-flight* attempt once it is overdue.

    Watches one attempt at a time.  When its deadline passes:

    * a newer attempt exists (retry after failure, launched by the
      supervisor's completion callback) → rebase the deadline on it
      instead of speculating against a clock that no longer matters;
    * the watched attempt already failed at this very instant → yield
      once at zero delay so the failure callback can schedule its retry,
      then rebase (or stop if the task resolved / no retry appeared);
    * otherwise the attempt is a genuine straggler → launch one backup.

    The shared ``attempts``/``estimates``/``launch_times`` lists are the
    supervisor's own records; ``launch`` is its placement closure.
    """
    watched = 0
    while not done.triggered:
        target = launch_times[watched] + deadline_for(estimates[watched])
        if target > sim.now:
            yield sim.timeout(target - sim.now)
        if done.triggered:
            return
        newest = len(attempts) - 1
        if newest != watched:
            watched = newest
            continue
        if attempts[watched].triggered:
            # Failed attempt; its retry (if any) is scheduled behind us
            # in this timestamp's callback queue.  One zero-delay yield
            # lets it appear — looping without it would spin forever.
            yield sim.timeout(0.0)
            if done.triggered or len(attempts) - 1 == watched:
                return
            watched = len(attempts) - 1
            continue
        launch()
        return


class EntryGuard:
    """The system's entry point: authentication, authorization, quota."""

    def __init__(
        self,
        authority: SSOAuthority,
        acl: AccessControl,
        quota: QuotaPolicy,
        rate_limiter: Optional["RateLimiter"] = None,
    ):
        self.authority = authority
        self.acl = acl
        self.quota = quota
        #: Capability protection against malicious/runaway clients.
        self.rate_limiter = rate_limiter
        self.admitted = 0
        self.rejected = 0

    def admit(self, user: str, cred: Optional[Credential], tables: List[str], now: float) -> None:
        try:
            if cred is None:
                raise AccessDeniedError(f"user {user!r} presented no credential")
            self.authority.validate(cred, now=now)
            if cred.user != user:
                raise AccessDeniedError(
                    f"credential belongs to {cred.user!r}, not {user!r}"
                )
            if self.rate_limiter is not None:
                self.rate_limiter.check(user, now)
            self.acl.check_read(user, tables)
            self.quota.admit_query(user, now)
        except AccessDeniedError:
            self.rejected += 1
            raise
        self.admitted += 1


class Master:
    """Root of the server tree."""

    def __init__(
        self,
        sim: Simulator,
        net: NetworkTopology,
        router,
        catalog: Catalog,
        cluster_manager: ClusterManager,
        scheduler: JobScheduler,
        entry_guard: EntryGuard,
        address: NodeAddress = NodeAddress(0, 0, 0),
        reuse_completed_window_s: float = 0.0,
        service_credential: Optional[Credential] = None,
        ledger=None,
        max_concurrent_jobs: int = DEFAULT_MAX_CONCURRENT_JOBS,
        candidate_queue: Optional[CandidateQueue] = None,
        adaptive=None,
    ):
        #: Cross-domain credential the master uses for internal data
        #: movement (broadcast-table reads); mirrors SSO's "mapping their
        #: authentication information to running job credential" (§III-C).
        self.service_credential = service_credential
        self.sim = sim
        self.net = net
        self.router = router
        self.catalog = catalog
        self.cluster_manager = cluster_manager
        self.scheduler = scheduler
        self.entry_guard = entry_guard
        self.address = address
        self.job_manager = JobManager(sim, reuse_completed_window_s)
        self._stems: Dict[Tuple[int, int], StemServer] = {}
        self._dc_stems: Dict[int, StemServer] = {}
        #: §III-C: admitted jobs wait in a candidate queue until the
        #: scheduler emits them; this caps concurrently running jobs —
        #: the master-level "resource agreement" knob.
        self.max_concurrent_jobs = max_concurrent_jobs
        self._running_jobs = 0
        self._candidate_queue = candidate_queue if candidate_queue is not None else CandidateQueue()
        #: Durable job history replicated to the backup master (§III-C).
        self.ledger = ledger
        #: Adaptive re-optimization config (S53,
        #: :class:`repro.planner.adaptive.AdaptiveConfig`); None keeps
        #: every job on the frozen single-wave path.
        self.adaptive = adaptive
        self._active: Dict[str, Tuple[Job, Event]] = {}
        self._shut_down = False
        sim.process(self._sweep_loop(), name="master.sweep")

    def register_stem(self, stem: StemServer) -> None:
        """Register a rack-level stem (the tree's lowest internal layer)."""
        key = (stem.address.datacenter, stem.address.rack)
        self._stems[key] = stem

    def register_dc_stem(self, stem: StemServer) -> None:
        """Register a datacenter-level stem above the rack stems.

        The server tree then has three internal hops — leaf → rack stem →
        dc stem → master — matching the paper's arbitrary-depth tree for
        geo-distributed deployments.
        """
        self._dc_stems[stem.address.datacenter] = stem

    def _stem_for(self, address: NodeAddress) -> Optional[StemServer]:
        stem = self._stems.get((address.datacenter, address.rack))
        if stem is not None and stem.alive:
            return stem
        # Fall back to any live stem (rack stem down).
        for s in self._stems.values():
            if s.alive:
                return s
        return None

    def _dc_stem_for(self, address: NodeAddress) -> Optional[StemServer]:
        stem = self._dc_stems.get(address.datacenter)
        if stem is not None and stem.alive:
            return stem
        return None

    def _aggregation_path(self, leaf_address: NodeAddress) -> List[StemServer]:
        """The live internal nodes a result crosses, bottom-up."""
        path: List[StemServer] = []
        rack_stem = self._stem_for(leaf_address)
        if rack_stem is not None:
            path.append(rack_stem)
        dc_stem = self._dc_stem_for(leaf_address)
        if dc_stem is not None and dc_stem is not rack_stem:
            path.append(dc_stem)
        return path

    def _sweep_loop(self) -> Generator[Event, None, None]:
        while True:
            yield self.sim.timeout(5.0)
            self.cluster_manager.sweep()

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        sql: str,
        user: str,
        cred: Optional[Credential],
        options: Optional[JobOptions] = None,
    ) -> Tuple[Job, Event]:
        """Admit, plan and launch a query; returns (job, completion event).

        The completion event's value is the job (inspect ``job.result``);
        admission failures raise synchronously, exactly like the paper's
        client-side verification.
        """
        job = self.admit(sql, user, cred, options)
        return self.launch(job)

    def admit(
        self,
        sql: str,
        user: str,
        cred: Optional[Credential],
        options: Optional[JobOptions] = None,
    ) -> Job:
        """The admission half of :meth:`submit`: parse, analyze, entry
        guard, plan, register.  Raises synchronously on any rejection;
        the returned job has not yet entered the candidate queue."""
        if self._shut_down:
            raise ClusterStateError("this master has shut down; resubmit to its successor")
        options = options or JobOptions()
        query = parse(sql)
        analyzed = analyze(query, self.catalog)
        self.entry_guard.admit(user, cred, [t.name for t in analyzed.tables.values()], self.sim.now)
        plan = build_plan(analyzed)
        job = new_job(user, sql, plan, options, self.sim.now)
        self.job_manager.register(job)
        return job

    def launch(self, job: Job) -> Tuple[Job, Event]:
        """The emission half of :meth:`submit`: run now if a slot is
        free, otherwise wait in the candidate queue.  Reentrant — any
        number of launched jobs interleave on the event loop."""
        done = self.sim.event(name=f"{job.job_id}.done")
        if self._running_jobs < self.max_concurrent_jobs:
            self._emit(job, done)
        else:
            self._candidate_queue.push(job, done)
        return job, done

    def _emit(self, job: Job, done: Event) -> None:
        """Move a job from the candidate queue into execution."""
        self._running_jobs += 1
        job.started_at = self.sim.now
        if job.trace is not None and job.trace.root is not None:
            job.trace.root.tag("queued_s", job.started_at - job.submitted_at)
        self._active[job.job_id] = (job, done)
        if self.ledger is not None:
            self.ledger.record_submitted(job.job_id, job.user, job.sql, job.submitted_at)
        proc = self.sim.process(self._job_body(job, done), name=job.job_id)

        def on_proc_outcome(ev) -> None:
            # Safety net: an uncaught orchestration failure must resolve
            # the client's wait with the error, never strand it.
            if not ev.ok and not done.triggered:
                self._finish_failed(job, done, ev._exc)  # noqa: SLF001

        proc.add_callback(on_proc_outcome)

    def _record_terminal(self, job: Job) -> None:
        self._active.pop(job.job_id, None)
        if job.trace is not None and job.trace.root is not None:
            # Close the root and clamp any attempt spans a timeout or
            # cancel left open; root duration == job.response_time_s.
            end = job.finished_at if job.finished_at is not None else self.sim.now
            job.trace.root.tag("status", job.status.value)
            job.trace.root.finish_tree(end)
        if self.ledger is not None:
            if job.started_at is None:
                # A job aborted straight from the candidate queue was
                # never emitted; give the ledger its submission first so
                # history carries the user/sql context.
                self.ledger.record_submitted(
                    job.job_id, job.user, job.sql, job.submitted_at
                )
            self.ledger.record_finished(job.job_id, job.status.value, self.sim.now)

    def shutdown(self) -> int:
        """Crash this master: every active job fails over to the client.

        Returns how many in-flight/queued jobs were aborted.  Mirrors the
        production failover contract — the backup takes over the durable
        state (the ledger), clients resubmit interrupted queries.
        """
        self._shut_down = True
        aborted = 0
        exc = ClusterStateError("master failed over; resubmit the query")
        for job, done in list(self._active.values()) + self._candidate_queue.jobs():
            if job.status in (JobStatus.PENDING, JobStatus.RUNNING):
                job.status = JobStatus.FAILED
                job.error = exc
                job.finished_at = self.sim.now
                job.stats.response_time_s = job.response_time_s
                self._record_terminal(job)
                if not done.triggered:
                    done.succeed(job)
                aborted += 1
        self._candidate_queue.drain()
        self._running_jobs = 0
        return aborted

    def _job_finished(self) -> None:
        self._running_jobs -= 1
        if len(self._candidate_queue) and self._running_jobs < self.max_concurrent_jobs:
            hit = self._candidate_queue.pop_next()
            if hit is not None:
                self._emit(*hit)

    @property
    def queued_jobs(self) -> int:
        return len(self._candidate_queue)

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued or running job.

        Queued jobs leave the candidate queue; running jobs resolve
        immediately with :class:`~repro.errors.QueryCancelled` (their
        outstanding leaf tasks finish and are discarded — the paper's
        tasks are side-effect-free reads).  Returns False for unknown or
        already-finished jobs.
        """
        from repro.errors import QueryCancelled

        queued = self._candidate_queue.remove(job_id)
        if queued is not None:
            job, done = queued
            job.status = JobStatus.FAILED
            job.error = QueryCancelled(f"{job_id} cancelled while queued")
            job.finished_at = self.sim.now
            self._record_terminal(job)
            done.succeed(job)
            return True
        hit = self._active.get(job_id)
        if hit is None:
            return False
        job, done = hit
        if job.status not in (JobStatus.RUNNING, JobStatus.PENDING):
            return False
        job.status = JobStatus.FAILED
        job.error = QueryCancelled(f"{job_id} cancelled by the user")
        job.finished_at = self.sim.now
        job.stats.response_time_s = job.response_time_s
        self._record_terminal(job)
        self._job_finished()
        if not done.triggered:
            done.succeed(job)
        return True

    @staticmethod
    def _sampled_tasks(plan: PhysicalPlan, options: JobOptions) -> List[ScanTask]:
        """Deterministic block sample (§II case 3's sampled indicators).

        Selection hashes task ids, so the same query samples the same
        blocks run-to-run — periodic indicator reports stay comparable.
        """
        ratio = options.sample_block_ratio
        if ratio is None or ratio >= 1.0 or not plan.tasks:
            return list(plan.tasks)
        if ratio <= 0.0:
            return []
        import hashlib
        import math

        keep = max(1, math.ceil(len(plan.tasks) * ratio))
        scored = sorted(
            plan.tasks,
            key=lambda t: hashlib.blake2b(
                t.block.block_id.encode(), digest_size=8
            ).digest(),
        )
        return scored[:keep]

    # -- job orchestration -------------------------------------------------------

    def _job_body(self, job: Job, done: Event) -> Generator[Event, None, None]:
        """Pick the execution path: frozen single wave, or adaptive (S53).

        Adaptive runs only for plain full-scan jobs — block sampling and
        early-return ratios change which rows a job *intends* to read,
        and the two-wave bookkeeping would misreport them; those jobs
        keep the frozen path, as does anything below ``min_tasks``.
        """
        adaptive = self.adaptive
        if (
            adaptive is not None
            and job.options.sample_block_ratio is None
            and job.options.min_processed_ratio >= 1.0
            and len(job.plan.tasks) >= max(1, adaptive.min_tasks)
        ):
            return self._job_process_adaptive(job, done)
        return self._job_process(job, done)

    def _job_process(self, job: Job, done: Event) -> Generator[Event, None, None]:
        job.status = JobStatus.RUNNING
        plan = job.plan
        root = job.trace.root if job.trace is not None else None
        fetch_span = None
        if root is not None and plan.broadcasts:
            fetch_span = root.child("fetch_broadcasts", self.sim.now)
        try:
            broadcasts = yield from self._fetch_broadcasts(plan, span=fetch_span)
        except FeisuError as exc:
            if fetch_span is not None:
                fetch_span.tag("error", str(exc)).finish(self.sim.now)
            self._finish_failed(job, done, exc)
            return
        if fetch_span is not None:
            fetch_span.finish(self.sim.now)

        tasks = self._sampled_tasks(plan, job.options)
        total = len(tasks)
        if total == 0:
            self._finish_ok(job, done, [], 1.0)
            return

        arrived: Dict[str, TaskResult] = {}
        failed: Set[str] = set()
        reused: Set[str] = set()
        job_gate = self.sim.event(name=f"{job.job_id}.gate")
        early_ratio = (
            job.options.min_processed_ratio
            if job.options.min_processed_ratio < 1.0
            else None
        )
        sent_broadcast_to: Set[str] = set()

        def check_done() -> None:
            if job_gate.triggered:
                return
            completed = len(arrived)
            if completed == total or (completed + len(failed)) == total:
                job_gate.succeed()
            elif early_ratio is not None and completed / total >= early_ratio:
                job_gate.succeed()

        def launch_own(task: ScanTask) -> Event:
            supervisor_done = self.sim.event(name=f"{task.task_id}.done")
            self.job_manager.track_task(task_signature(plan, task), supervisor_done)
            self.sim.process(
                self._task_supervisor(job, task, broadcasts, sent_broadcast_to, supervisor_done),
                name=task.task_id,
            )
            return supervisor_done

        def on_task(task: ScanTask, fallback_allowed: bool = False):
            def cb(ev: Event) -> None:
                if job_gate.triggered:
                    return
                if ev.ok:
                    arrived[task.task_id] = ev.value
                    job.stats.absorb(ev.value)
                    if task.task_id in reused:
                        job.stats.tasks_reused += 1
                elif fallback_allowed:
                    # The shared task exhausted *another job's* attempt
                    # budget; inheriting that failure with zero attempts of
                    # our own turned one job's bad luck into every
                    # piggybacker's.  Fall back to our own supervisor once.
                    reused.discard(task.task_id)
                    launch_own(task).add_callback(on_task(task))
                    return
                else:
                    failed.add(task.task_id)
                    job.stats.tasks_failed += 1
                check_done()

            return cb

        for task in tasks:
            shared = self.job_manager.lookup_task(task_signature(plan, task))
            if shared is not None:
                reused.add(task.task_id)
                shared.add_callback(on_task(task, fallback_allowed=True))
                continue
            launch_own(task).add_callback(on_task(task))

        if job.options.max_time_s is not None:
            def deadline() -> None:
                if not job_gate.triggered:
                    job_gate.succeed()

            self.sim.schedule(job.options.max_time_s, deadline)

        yield job_gate
        # Completion is judged against what the job *intended* to scan
        # (the sample, if one was requested); the reported ratio is the
        # true fraction of the table's blocks that were processed.
        completed_fraction = len(arrived) / total
        sampled_fraction = total / max(len(plan.tasks), 1)
        ratio = completed_fraction * sampled_fraction
        if job.status not in (JobStatus.RUNNING, JobStatus.PENDING):
            return  # cancelled or failed over while tasks were in flight
        if completed_fraction < job.options.min_processed_ratio and completed_fraction < 1.0:
            exc = QueryTimeout(
                f"{job.job_id} processed {ratio:.0%} of data within limits",
                processed_ratio=ratio,
            )
            job.status = JobStatus.TIMED_OUT
            job.error = exc
            job.finished_at = self.sim.now
            job.stats.response_time_s = job.response_time_s
            self._record_terminal(job)
            self._job_finished()
            done.succeed(job)
            return
        self._finish_ok(job, done, list(arrived.values()), ratio)

    # -- adaptive two-wave orchestration (S53) ----------------------------------

    def _job_process_adaptive(self, job: Job, done: Event) -> Generator[Event, None, None]:
        """Pilot wave → checkpoint (re-plan) → remainder wave.

        Every pilot result is retained at the master across the
        checkpoint, so a worker crash mid-job re-runs only the lost
        partitions of the *current* wave (the supervisor's retry
        machinery), never completed ones — partition-level recovery.
        """
        from repro.planner.adaptive import ReoptController, plan_fingerprint

        job.status = JobStatus.RUNNING
        plan = job.plan
        root = job.trace.root if job.trace is not None else None
        fetch_span = None
        if root is not None and plan.broadcasts:
            fetch_span = root.child("fetch_broadcasts", self.sim.now)
        try:
            broadcasts = yield from self._fetch_broadcasts(plan, span=fetch_span)
        except FeisuError as exc:
            if fetch_span is not None:
                fetch_span.tag("error", str(exc)).finish(self.sim.now)
            self._finish_failed(job, done, exc)
            return
        if fetch_span is not None:
            fetch_span.finish(self.sim.now)

        tasks = list(plan.tasks)
        controller = ReoptController(self.adaptive, plan, self.scheduler.cost_model)
        job.plan_digest = plan_fingerprint(plan)
        deadline_at = (
            self.sim.now + job.options.max_time_s
            if job.options.max_time_s is not None
            else None
        )
        sent_broadcast_to: Set[str] = set()
        arrived: Dict[str, TaskResult] = {}

        pilot = controller.pilot_wave(tasks)
        job.stats.tasks_total = len(pilot)
        job.stats.adaptive_waves = 1
        failed = yield from self._run_wave(
            job, pilot, broadcasts, sent_broadcast_to, arrived, deadline_at=deadline_at
        )
        if job.status not in (JobStatus.RUNNING, JobStatus.PENDING):
            return  # cancelled or failed over mid-wave
        if failed:
            self._adaptive_timeout(job, done, arrived)
            return

        # Checkpoint: compare pilot actuals against the frozen estimates.
        pilot_durations = {}
        pilot_ids = {t.task_id for t in pilot}
        for timing in job.task_timeline:
            if timing.task_id in pilot_ids and timing.task_id not in pilot_durations:
                pilot_durations[timing.task_id] = timing.duration_s
        live_workers = sum(
            1
            for leaf in self.scheduler.leaves()
            if leaf.alive and self.cluster_manager.is_alive(leaf.worker_id)
        )
        decision = controller.decide(
            now=self.sim.now,
            tasks=tasks,
            pilot_results=[arrived[t.task_id] for t in pilot],
            pilot_durations=pilot_durations,
            live_workers=live_workers,
            broadcast_holders=tuple(sorted(sent_broadcast_to)),
            broadcast_bytes=self._broadcast_bytes(broadcasts) if broadcasts else 0,
        )
        remainder = controller.remainder_wave(tasks, decision)
        if decision.replanned:
            job.stats.adaptive_replans += 1
            job.replanned_plan_digest = plan_fingerprint(plan, pilot + remainder)
        job.stats.adaptive_splits += max(
            0, len(remainder) - (len(tasks) - decision.skipped_tasks)
        )
        job.stats.adaptive_tasks_skipped += decision.skipped_tasks
        if root is not None:
            root.event(
                "reopt.decision",
                self.sim.now,
                actions=",".join(decision.actions) or "none",
                estimated_selectivity=decision.estimated_selectivity,
                observed_selectivity=decision.observed_selectivity,
                error_ratio=decision.error_ratio,
                split_factor=decision.split_factor,
                estimate_scale=decision.estimate_scale,
                hot_share=decision.hot_share,
                duration_skew=decision.duration_skew,
                prefer_workers=len(decision.prefer_workers),
                skipped_tasks=decision.skipped_tasks,
            )

        job.stats.tasks_total = len(pilot) + len(remainder)
        if remainder:
            job.stats.adaptive_waves += 1
            failed = yield from self._run_wave(
                job,
                remainder,
                broadcasts,
                sent_broadcast_to,
                arrived,
                prefer=decision.prefer_workers,
                estimate_scale=decision.estimate_scale,
                deadline_at=deadline_at,
            )
            if job.status not in (JobStatus.RUNNING, JobStatus.PENDING):
                return
            if failed:
                self._adaptive_timeout(job, done, arrived)
                return
        self._finish_ok(job, done, list(arrived.values()), 1.0)

    def _run_wave(
        self,
        job: Job,
        wave: List[ScanTask],
        broadcasts: Dict[str, Frame],
        sent_broadcast_to: Set[str],
        arrived: Dict[str, TaskResult],
        prefer: Sequence[str] = (),
        estimate_scale: float = 1.0,
        deadline_at: Optional[float] = None,
    ) -> Generator[Event, None, Set[str]]:
        """Launch one adaptive wave and wait for every task to resolve.

        Shares the frozen path's reuse/fallback/supervisor machinery;
        returns the task ids that failed terminally (empty = complete).
        """
        plan = job.plan
        total = len(wave)
        completed: Set[str] = set()
        failed: Set[str] = set()
        reused: Set[str] = set()
        gate = self.sim.event(name=f"{job.job_id}.wave")

        def check_done() -> None:
            if not gate.triggered and len(completed) + len(failed) == total:
                gate.succeed()

        def on_retry(task: ScanTask) -> None:
            # A lost attempt re-launched on a surviving leaf: exactly one
            # partition of the current wave re-runs, nothing else.
            job.stats.adaptive_partitions_recovered += 1

        def launch_own(task: ScanTask) -> Event:
            supervisor_done = self.sim.event(name=f"{task.task_id}.done")
            self.job_manager.track_task(task_signature(plan, task), supervisor_done)
            self.sim.process(
                self._task_supervisor(
                    job, task, broadcasts, sent_broadcast_to, supervisor_done,
                    estimate_scale=estimate_scale, prefer=prefer, on_retry=on_retry,
                ),
                name=task.task_id,
            )
            return supervisor_done

        def on_task(task: ScanTask, fallback_allowed: bool = False):
            def cb(ev: Event) -> None:
                if gate.triggered:
                    return
                if ev.ok:
                    completed.add(task.task_id)
                    arrived[task.task_id] = ev.value
                    job.stats.absorb(ev.value)
                    if task.task_id in reused:
                        job.stats.tasks_reused += 1
                elif fallback_allowed:
                    reused.discard(task.task_id)
                    launch_own(task).add_callback(on_task(task))
                    return
                else:
                    failed.add(task.task_id)
                    job.stats.tasks_failed += 1
                check_done()

            return cb

        for task in wave:
            shared = self.job_manager.lookup_task(task_signature(plan, task))
            if shared is not None:
                reused.add(task.task_id)
                shared.add_callback(on_task(task, fallback_allowed=True))
                continue
            launch_own(task).add_callback(on_task(task))

        if deadline_at is not None:
            def deadline() -> None:
                if not gate.triggered:
                    gate.succeed()

            self.sim.schedule(max(0.0, deadline_at - self.sim.now), deadline)

        yield gate
        # A deadline expiry leaves in-flight tasks unresolved: count them
        # as lost so the caller reports a timeout.
        if len(completed) + len(failed) < total:
            failed.update(
                t.task_id for t in wave
                if t.task_id not in completed and t.task_id not in failed
            )
        return failed

    def _adaptive_timeout(self, job: Job, done: Event, arrived: Dict[str, TaskResult]) -> None:
        """Terminal path when an adaptive wave lost tasks or timed out."""
        ratio = len(arrived) / max(1, job.stats.tasks_total)
        exc = QueryTimeout(
            f"{job.job_id} processed {ratio:.0%} of data within limits",
            processed_ratio=ratio,
        )
        job.status = JobStatus.TIMED_OUT
        job.error = exc
        job.finished_at = self.sim.now
        job.stats.response_time_s = job.response_time_s
        self._record_terminal(job)
        self._job_finished()
        done.succeed(job)

    def _finish_ok(self, job: Job, done: Event, results: List[TaskResult], ratio: float) -> None:
        if job.status not in (JobStatus.RUNNING, JobStatus.PENDING):
            return  # already cancelled / failed over; don't resolve twice
        try:
            job.result = finalize(job.plan, results, processed_ratio=ratio)
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            # A finalization failure must never strand the client: the
            # job resolves with the error attached.
            self._finish_failed(job, done, exc)
            return
        job.result.stats = {
            "io_bytes_modeled": job.stats.io_bytes_modeled,
            "cpu_ops_modeled": job.stats.cpu_ops_modeled,
            "index_full_covers": job.stats.index_full_covers,
            "index_clause_hits": job.stats.index_clause_hits,
            "index_clause_misses": job.stats.index_clause_misses,
            "index_subsumption_hits": job.stats.index_subsumption_hits,
            "index_residual_clauses": job.stats.index_residual_clauses,
            "index_residual_fraction_sum": job.stats.index_residual_fraction_sum,
            "tasks_total": job.stats.tasks_total,
            "tasks_reused": job.stats.tasks_reused,
            "backups_launched": job.stats.backups_launched,
        }
        if job.stats.adaptive_waves:
            # Only adaptive-path jobs carry these keys, so the frozen
            # path's stats dict — and every committed figure derived
            # from it — stays byte-identical with the flag off.
            job.result.stats.update(
                {
                    "adaptive_waves": job.stats.adaptive_waves,
                    "adaptive_replans": job.stats.adaptive_replans,
                    "adaptive_splits": job.stats.adaptive_splits,
                    "adaptive_partitions_recovered": job.stats.adaptive_partitions_recovered,
                    "adaptive_tasks_skipped": job.stats.adaptive_tasks_skipped,
                }
            )
        job.status = JobStatus.SUCCEEDED
        job.finished_at = self.sim.now
        job.stats.response_time_s = job.response_time_s
        self._record_terminal(job)
        self._job_finished()
        done.succeed(job)

    def _finish_failed(self, job: Job, done: Event, exc: BaseException) -> None:
        if job.status not in (JobStatus.RUNNING, JobStatus.PENDING):
            return
        job.status = JobStatus.FAILED
        job.error = exc
        job.finished_at = self.sim.now
        job.stats.response_time_s = job.response_time_s
        self._record_terminal(job)
        self._job_finished()
        done.succeed(job)

    # -- broadcast tables ----------------------------------------------------------

    def _fetch_broadcasts(
        self, plan: PhysicalPlan, span=None
    ) -> Generator[Event, None, Dict[str, Frame]]:
        """Read each joined dimension table once and charge its movement."""
        broadcasts: Dict[str, Frame] = {}
        moved_bytes = 0
        tiering = self.scheduler.tiering
        for bc in plan.broadcasts:
            table = self.catalog.get(bc.table_name)
            columns = read_table_frame(
                self.router,
                table,
                list(bc.columns),
                cred=self.service_credential,
                now=self.sim.now,
                span=span,
                tiering=tiering,
            )
            frame = Frame.from_columns(columns)
            for ref in table.blocks:
                path = tiering.effective_path(ref.path) if tiering is not None else ref.path
                system, inner = self.router.resolve(path)
                replicas = system.locations(inner)
                if replicas and self.address not in replicas:
                    source = min(replicas, key=lambda r: self.net.distance(r, self.address))
                    nbytes = int(ref.bytes_for(bc.columns) * ref.scale_factor)
                    moved_bytes += nbytes
                    yield send(
                        self.sim,
                        self.net,
                        source,
                        self.address,
                        nbytes,
                        TrafficClass.READ,
                    )
            broadcasts[bc.binding] = frame
        if span is not None:
            span.tag("tables", [bc.table_name for bc in plan.broadcasts])
            span.tag("bytes", moved_bytes)
            span.tag("traffic_class", "read")
        return broadcasts

    @staticmethod
    def _broadcast_bytes(broadcasts: Dict[str, Frame]) -> int:
        total = 0
        for frame in broadcasts.values():
            for v in frame.columns.values():
                total += v.nbytes if v.dtype != object else sum(len(str(x)) + 8 for x in v)
        return total

    # -- per-task supervision (dispatch, stem routing, backups) ---------------------

    def _task_supervisor(
        self,
        job: Job,
        task: ScanTask,
        broadcasts: Dict[str, Frame],
        sent_broadcast_to: Set[str],
        done: Event,
        estimate_scale: float = 1.0,
        prefer: Sequence[str] = (),
        on_retry=None,
    ) -> Generator[Event, None, None]:
        attempts: List[Event] = []
        excluded: List[str] = []
        estimates: List[float] = []
        launch_times: List[float] = []
        failures = [0]

        def on_attempt(ev: Event) -> None:
            if done.triggered:
                return
            if ev.ok:
                done.succeed(ev.value)
                return
            failures[0] += 1
            if failures[0] >= MAX_TASK_ATTEMPTS:
                done.fail(ev._exc)  # noqa: SLF001
                return
            launched = _launch()
            if launched and on_retry is not None:
                on_retry(task)
            if not launched and failures[0] >= len(attempts):
                done.fail(ev._exc)  # noqa: SLF001

        def _launch() -> bool:
            try:
                placement = self.scheduler.place(
                    task, job.plan.scan_cnf, exclude=excluded, prefer=prefer
                )
            except SchedulingError:
                return False
            excluded.append(placement.leaf.worker_id)
            # ``estimate_scale`` folds the adaptive checkpoint's cost
            # revision into backup deadlines (slices are cheaper than the
            # whole-block figure the cost model prices).
            estimates.append(placement.estimate_s * estimate_scale)
            launch_times.append(self.sim.now)
            proc = self.sim.process(
                self._task_flow(
                    job, task, placement, broadcasts, sent_broadcast_to,
                    is_backup=bool(attempts),
                    attempt_index=len(attempts),
                ),
                name=f"{task.task_id}.attempt{len(attempts)}",
            )
            attempts.append(proc)
            proc.add_callback(on_attempt)
            if len(attempts) > 1:
                job.stats.backups_launched += 1
            return True

        if not _launch():
            done.fail(SchedulingError(f"no leaf available for {task.task_id}"))
            return

        # Straggler watchdog: launch a backup if the newest in-flight
        # attempt is overdue past its cost-model estimate (§III-C backup
        # tasks).  The deadline rebases whenever a retry replaces a
        # failed attempt — firing on attempt 0's clock after attempt 0
        # already failed would double up on a retry that just started.
        if job.options.enable_backup:
            yield from _straggler_watchdog(
                self.sim, self.scheduler.backup_deadline, done,
                attempts, estimates, launch_times, _launch,
            )
        if not done.triggered:
            yield done

    def _task_flow(
        self,
        job: Job,
        task: ScanTask,
        placement: Placement,
        broadcasts: Dict[str, Frame],
        sent_broadcast_to: Set[str],
        is_backup: bool = False,
        attempt_index: int = 0,
    ) -> Generator[Event, None, TaskResult]:
        leaf = placement.leaf
        attempt_started = self.sim.now
        root = job.trace.root if job.trace is not None else None
        if root is not None and root.end_s is not None:
            root = None  # job already resolved; don't trace the straggler
        span = None
        if root is not None:
            span = root.child(f"task.attempt{attempt_index}", attempt_started)
            span.tag("task_id", task.task_id)
            span.tag("worker", leaf.worker_id)
            span.tag("data_local", placement.data_local)
            span.tag("backup", is_backup)
            span.tag("estimate_s", placement.estimate_s)
        try:
            # Dispatch flows down the tree — master [→ dc stem] → rack stem →
            # leaf — on the control class (§III-B: stems "further dissect the
            # plan to the leaf servers"; §V-C: task dispatch is control flow).
            dispatch_span = span.child("dispatch", self.sim.now) if span is not None else None
            hops = 0
            hop_from = self.address
            for stem in reversed(self._aggregation_path(leaf.address)):
                yield send(
                    self.sim, self.net, hop_from, stem.address, DISPATCH_BASE_BYTES, TrafficClass.CONTROL
                )
                hop_from = stem.address
                hops += 1
            yield send(
                self.sim, self.net, hop_from, leaf.address, DISPATCH_BASE_BYTES, TrafficClass.CONTROL
            )
            hops += 1
            if dispatch_span is not None:
                dispatch_span.tag("hops", hops)
                dispatch_span.tag("bytes", DISPATCH_BASE_BYTES * hops)
                dispatch_span.tag("traffic_class", "control")
                dispatch_span.finish(self.sim.now)
            # First task on this leaf for a join query ships the dimensions
            # (write data flow: intermediate data, §V-C).
            if broadcasts and leaf.worker_id not in sent_broadcast_to:
                sent_broadcast_to.add(leaf.worker_id)
                ship_bytes = self._broadcast_bytes(broadcasts)
                ship_span = span.child("broadcast_ship", self.sim.now) if span is not None else None
                yield send(
                    self.sim,
                    self.net,
                    self.address,
                    leaf.address,
                    ship_bytes,
                    TrafficClass.WRITE,
                )
                if ship_span is not None:
                    ship_span.tag("bytes", ship_bytes)
                    ship_span.tag("traffic_class", "write")
                    ship_span.finish(self.sim.now)
            result = yield from leaf.run_task(task, job.plan, broadcasts, span=span)
            modeled = result.modeled_payload_bytes()
            return_span = span.child("result_return", self.sim.now) if span is not None else None
            if modeled > job.options.spill_threshold_bytes:
                # §V-C write flow: too-big results are dumped to global
                # storage and only the location information is passed.
                result = yield from self._spill_result(job, task, leaf, result, modeled)
                if return_span is not None:
                    return_span.tag("spilled", True)
                    return_span.tag("bytes", modeled)
                    return_span.tag("traffic_class", "write")
            else:
                # Result summarized bottom-up through every live internal
                # node: leaf → rack stem [→ dc stem] → master (read flow).
                payload = result.payload_bytes()
                stems_crossed = 0
                hop_from = leaf.address
                for stem in self._aggregation_path(leaf.address):
                    yield send(self.sim, self.net, hop_from, stem.address, payload, TrafficClass.READ)
                    result = yield from stem.merge(result)
                    hop_from = stem.address
                    stems_crossed += 1
                yield send(self.sim, self.net, hop_from, self.address, payload, TrafficClass.READ)
                if return_span is not None:
                    return_span.tag("spilled", False)
                    return_span.tag("bytes", payload)
                    return_span.tag("traffic_class", "read")
                    return_span.tag("stems", stems_crossed)
            yield send(
                self.sim, self.net, leaf.address, self.address, STATUS_BYTES, TrafficClass.CONTROL
            )
            if return_span is not None:
                return_span.finish(self.sim.now)
        except BaseException as exc:
            if span is not None:
                span.tag("error", str(exc))
            raise
        finally:
            if span is not None:
                span.finish_tree(self.sim.now)
        job.task_timeline.append(
            TaskTiming(
                task_id=task.task_id,
                worker_id=leaf.worker_id,
                started_at=attempt_started,
                finished_at=self.sim.now,
                io_bytes_modeled=result.report.modeled_io_bytes,
                cpu_ops_modeled=result.report.modeled_cpu_ops,
                index_full_cover=result.report.index_full_cover,
                backup=is_backup,
            )
        )
        return result

    def _spill_result(
        self,
        job: Job,
        task: ScanTask,
        leaf: LeafServer,
        result: TaskResult,
        modeled_bytes: float,
    ) -> Generator[Event, None, TaskResult]:
        """Dump a big result to global storage; master fetches by location."""
        from repro.engine.serialize import deserialize_result, serialize_result

        spill_system = self._spill_system()
        payload = serialize_result(result)
        inner = f"/tmp/spill/{task.task_id.replace('/', '_')}"
        # Leaf writes the intermediate data: local disk + WRITE-class
        # transfer toward the global filesystem's replica holder.
        yield leaf.disk.write(int(modeled_bytes))
        spill_system.write(inner, payload, node=leaf.address)
        replicas = spill_system.locations(inner)
        remote = next((r for r in replicas if r != leaf.address), None)
        if remote is not None:
            yield send(self.sim, self.net, leaf.address, remote, int(modeled_bytes), TrafficClass.WRITE)
        # Only the location travels the result path.
        yield send(self.sim, self.net, leaf.address, self.address, STATUS_BYTES, TrafficClass.READ)
        # Master fetches from the nearest replica on the read flow.
        source = min(replicas, key=lambda r: self.net.distance(r, self.address))
        yield send(self.sim, self.net, source, self.address, int(modeled_bytes), TrafficClass.READ)
        fetched = deserialize_result(spill_system.read(inner))
        spill_system.delete(inner)
        job.stats.results_spilled += 1
        return fetched

    def _spill_system(self):
        """The global filesystem used for intermediate dumps."""
        for system in self.router.systems():
            if system.scheme == "hdfs":
                return system
        return self.router.systems()[0]
