"""Cluster-wide metrics snapshots.

The paper's shadow components "provide functionalities such as
monitoring running information to reduce the burdens on the primary"
(§III-C); this module is that monitoring surface: one call collects
device utilizations, network link load, SmartIndex counters and job
outcomes across the deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.jobs import JobStatus


@dataclass
class DeviceMetrics:
    """Utilization of one device class aggregated over leaves."""

    mean_utilization: float = 0.0
    max_utilization: float = 0.0
    total_bytes: float = 0.0


@dataclass
class ClusterMetrics:
    """One point-in-time snapshot of the whole deployment."""

    sim_time_s: float = 0.0
    leaves_alive: int = 0
    leaves_total: int = 0
    disk: DeviceMetrics = field(default_factory=DeviceMetrics)
    cpu: DeviceMetrics = field(default_factory=DeviceMetrics)
    network_busiest_link_utilization: float = 0.0
    network_total_bytes: float = 0.0
    index_entries: int = 0
    index_memory_bytes: int = 0
    index_hit_rate: float = 0.0
    jobs_total: int = 0
    jobs_succeeded: int = 0
    jobs_failed: int = 0
    jobs_timed_out: int = 0
    tasks_completed: int = 0
    heartbeats_received: int = 0
    jobs_queued: int = 0
    results_spilled: int = 0
    # Gateway serving counters (all zero when no gateway is configured).
    gateway_sessions_open: int = 0
    gateway_queue_depth: int = 0
    gateway_running: int = 0
    gateway_admitted: int = 0
    gateway_rejected: int = 0
    gateway_completed: int = 0
    gateway_failed: int = 0
    gateway_killed: int = 0
    gateway_timed_out: int = 0
    gateway_memory_in_use: float = 0.0
    #: Per-tenant queue depth keyed by tenant name (not in ``as_dict``,
    #: whose schema is flat floats; read it off the snapshot directly).
    gateway_tenant_queue_depth: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        return {
            "sim_time_s": self.sim_time_s,
            "leaves_alive": self.leaves_alive,
            "leaves_total": self.leaves_total,
            "disk_mean_utilization": self.disk.mean_utilization,
            "disk_max_utilization": self.disk.max_utilization,
            "disk_total_bytes": self.disk.total_bytes,
            "cpu_mean_utilization": self.cpu.mean_utilization,
            "cpu_max_utilization": self.cpu.max_utilization,
            "network_busiest_link_utilization": self.network_busiest_link_utilization,
            "network_total_bytes": self.network_total_bytes,
            "index_entries": self.index_entries,
            "index_memory_bytes": self.index_memory_bytes,
            "index_hit_rate": self.index_hit_rate,
            "jobs_total": self.jobs_total,
            "jobs_succeeded": self.jobs_succeeded,
            "jobs_failed": self.jobs_failed,
            "jobs_timed_out": self.jobs_timed_out,
            "tasks_completed": self.tasks_completed,
            "heartbeats_received": self.heartbeats_received,
            "jobs_queued": self.jobs_queued,
            "results_spilled": self.results_spilled,
            "gateway_sessions_open": self.gateway_sessions_open,
            "gateway_queue_depth": self.gateway_queue_depth,
            "gateway_running": self.gateway_running,
            "gateway_admitted": self.gateway_admitted,
            "gateway_rejected": self.gateway_rejected,
            "gateway_completed": self.gateway_completed,
            "gateway_failed": self.gateway_failed,
            "gateway_killed": self.gateway_killed,
            "gateway_timed_out": self.gateway_timed_out,
            "gateway_memory_in_use": self.gateway_memory_in_use,
        }


def collect_metrics(cluster) -> ClusterMetrics:
    """Snapshot a :class:`~repro.core.feisu.FeisuCluster`."""
    m = ClusterMetrics(sim_time_s=cluster.sim.now)
    leaves = cluster.leaves
    m.leaves_total = len(leaves)
    m.leaves_alive = sum(leaf.alive for leaf in leaves)
    if leaves:
        disk_utils = [leaf.disk.utilization() for leaf in leaves]
        cpu_utils = [leaf.cpu.utilization() for leaf in leaves]
        m.disk = DeviceMetrics(
            mean_utilization=sum(disk_utils) / len(leaves),
            max_utilization=max(disk_utils),
            total_bytes=float(sum(leaf.disk.bytes_read for leaf in leaves)),
        )
        m.cpu = DeviceMetrics(
            mean_utilization=sum(cpu_utils) / len(leaves),
            max_utilization=max(cpu_utils),
            total_bytes=float(sum(leaf.cpu.ops_executed for leaf in leaves)),
        )
        m.tasks_completed = sum(leaf.tasks_completed for leaf in leaves)

    links = cluster.net.links()
    if links:
        m.network_busiest_link_utilization = max(ln.utilization() for ln in links)
        m.network_total_bytes = float(sum(ln.bytes_carried for ln in links))

    stats = cluster.aggregate_index_stats()
    m.index_hit_rate = (
        (stats.hits + stats.complement_hits) / stats.lookups if stats.lookups else 0.0
    )
    m.index_entries = sum(
        leaf.index_manager.entry_count for leaf in leaves if leaf.index_manager is not None
    )
    m.index_memory_bytes = cluster.index_memory_used()

    jobs = cluster.master.job_manager.jobs.values()
    m.jobs_total = len(jobs)
    m.jobs_succeeded = sum(j.status is JobStatus.SUCCEEDED for j in jobs)
    m.jobs_failed = sum(j.status is JobStatus.FAILED for j in jobs)
    m.jobs_timed_out = sum(j.status is JobStatus.TIMED_OUT for j in jobs)
    m.heartbeats_received = cluster.cluster_manager.heartbeats_received
    m.jobs_queued = cluster.master.queued_jobs
    m.results_spilled = sum(j.stats.results_spilled for j in jobs)

    gateway = getattr(cluster, "gateway", None)
    if gateway is not None:
        snap = gateway.snapshot()
        m.gateway_sessions_open = snap.sessions_open
        m.gateway_queue_depth = snap.queue_depth
        m.gateway_running = snap.running
        m.gateway_admitted = snap.admitted
        m.gateway_rejected = snap.rejected
        m.gateway_completed = snap.completed
        m.gateway_failed = snap.failed
        m.gateway_killed = snap.killed
        m.gateway_timed_out = snap.timed_out
        m.gateway_memory_in_use = snap.memory_in_use
        m.gateway_tenant_queue_depth = {
            name: ts.queue_depth for name, ts in snap.tenants.items()
        }
    return m


class MetricsTimeSeries:
    """Rolling :func:`collect_metrics` samples over the simulated clock.

    A periodic sampler process snapshots the cluster every ``period_s``
    simulated seconds and keeps samples inside the ``retention_s``
    window.  Sampling is read-only — it inspects counters and device
    state without touching the event loop's outcomes — but the sampler
    does add its own timer events, so it is opt-in (see
    :meth:`repro.core.feisu.FeisuCluster.start_metrics_sampler`) and
    never runs during the committed figure benchmarks.
    """

    def __init__(self, cluster, period_s: float = 5.0, retention_s: float = 3600.0):
        self.cluster = cluster
        self.period_s = float(period_s)
        self.retention_s = float(retention_s)
        self.samples: List[ClusterMetrics] = []
        self.samples_taken = 0
        self.samples_evicted = 0
        self._proc = None

    def start(self) -> "MetricsTimeSeries":
        if self._proc is None:
            self._proc = self.cluster.sim.process(self._run(), name="metrics.sampler")
        return self

    def _run(self):
        while True:
            yield self.cluster.sim.timeout(self.period_s)
            self.samples.append(collect_metrics(self.cluster))
            self.samples_taken += 1
            cutoff = self.cluster.sim.now - self.retention_s
            while self.samples and self.samples[0].sim_time_s < cutoff:
                self.samples.pop(0)
                self.samples_evicted += 1

    def latest(self) -> Optional[ClusterMetrics]:
        return self.samples[-1] if self.samples else None

    def series(self, key: str) -> List[float]:
        """One metric's values across the retained samples."""
        return [s.as_dict()[key] for s in self.samples]

    def timestamps(self) -> List[float]:
        return [s.sim_time_s for s in self.samples]

    def export(self) -> List[Dict[str, float]]:
        """JSON-ready list of sample dicts (benchmark-harness surface)."""
        return [s.as_dict() for s in self.samples]
