"""Cluster message size accounting and traffic-class routing (§V-C).

Every control-plane and data-plane exchange in the simulated cluster goes
through :func:`send` so the network model can charge it against the right
traffic class: control/state flow first, write data flow second, read
data flow last.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.events import Event, Simulator
from repro.sim.netmodel import NetworkTopology, NodeAddress, TrafficClass

#: Size of a heartbeat message: worker id, load stats, slot counts.
HEARTBEAT_BYTES = 256
#: Base size of a task-dispatch message (plan fragment, predicate CNF).
DISPATCH_BASE_BYTES = 2048
#: Size of a task status update.
STATUS_BYTES = 128


def send(
    sim: Simulator,
    net: NetworkTopology,
    src: NodeAddress,
    dst: NodeAddress,
    nbytes: int,
    cls: TrafficClass,
) -> Event:
    """Transfer ``nbytes`` from ``src`` to ``dst``; completion event."""
    return net.transfer(src, dst, max(1, int(nbytes)), cls)


@dataclass
class WorkerLoad:
    """Load snapshot a worker reports in its heartbeat."""

    running_tasks: int = 0
    queued_tasks: int = 0
    disk_queue_s: float = 0.0
    cpu_queue_s: float = 0.0

    @property
    def pressure(self) -> float:
        """Scalar the scheduler compares across candidate workers."""
        return (
            self.running_tasks
            + self.queued_tasks
            + 2.0 * self.disk_queue_s
            + 2.0 * self.cpu_queue_s
        )
