"""The simulated Feisu cluster: masters, stems, leaves, scheduling."""

from repro.cluster.domains import CrossDomainDirectory
from repro.cluster.elastic import (
    AutoscalePolicy,
    ElasticConfig,
    ElasticityManager,
    Rebalancer,
    RebalanceStats,
    ScaleDecision,
    ShardInfo,
    ShardMap,
)
from repro.cluster.failover import PrimaryBackup
from repro.cluster.jobs import Job, JobManager, JobOptions, JobStats, JobStatus, TaskTiming
from repro.cluster.ledger import JobLedger, LedgerEntry
from repro.cluster.master import EntryGuard, Master
from repro.cluster.membership import ClusterManager, WorkerRecord
from repro.cluster.messages import WorkerLoad
from repro.cluster.node import LeafConfig, LeafServer, StemServer
from repro.cluster.metrics import ClusterMetrics, collect_metrics
from repro.cluster.scheduler import JobScheduler, Placement
from repro.cluster.sharding import ShardedClusterManager

__all__ = [
    "AutoscalePolicy",
    "ElasticConfig",
    "ElasticityManager",
    "Rebalancer",
    "RebalanceStats",
    "ScaleDecision",
    "ShardInfo",
    "ShardMap",
    "ClusterManager",
    "CrossDomainDirectory",
    "ClusterMetrics",
    "ShardedClusterManager",
    "collect_metrics",
    "EntryGuard",
    "Job",
    "JobManager",
    "JobOptions",
    "JobScheduler",
    "JobStats",
    "JobStatus",
    "JobLedger",
    "LedgerEntry",
    "TaskTiming",
    "LeafConfig",
    "LeafServer",
    "Master",
    "Placement",
    "PrimaryBackup",
    "StemServer",
    "WorkerLoad",
    "WorkerRecord",
]
