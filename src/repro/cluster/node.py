"""Leaf and stem servers (§III-B/C).

A :class:`LeafServer` is the light-weight Feisu process co-deployed on a
storage node.  It owns the node's simulated devices (disk, SSD, CPU,
NIC), a per-storage-system task-slot pool sized by the system's resource
agreement (so Feisu never starves the business application), the node's
SmartIndex cache, the SSD data cache, and optionally the B+ tree
baseline.

A :class:`StemServer` aggregates task results flowing up the tree and
forwards one merged payload to the master per job.

All timing flows through the DES devices; all results are computed for
real by :mod:`repro.engine`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.cluster.membership import HEARTBEAT_PERIOD_S, ClusterManager
from repro.cluster.messages import HEARTBEAT_BYTES, WorkerLoad, send
from repro.columnar.block import Block
from repro.engine.executor import TaskResult, execute_scan_task
from repro.errors import ClusterStateError, ExecutionError, FaultInjectedError
from repro.index.btree import BPlusTree
from repro.index.smartindex import SmartIndexManager
from repro.planner.cost import CostModel
from repro.planner.expressions import Frame
from repro.planner.physical import PhysicalPlan, ScanTask
from repro.sim.events import Event, Simulator
from repro.sim.netmodel import NetworkTopology, NodeAddress, TrafficClass
from repro.sim.resources import Cpu, Disk, Nic, Resource, Ssd
from repro.storage.router import StorageRouter
from repro.storage.ssd_cache import SsdCache


@dataclass
class LeafConfig:
    """Per-leaf feature switches and sizes."""

    enable_smartindex: bool = True
    index_memory_bytes: int = 512 * 1024 * 1024
    index_ttl_s: float = 72 * 3600.0
    index_compress: bool = True
    #: Semantic probe layer + cost-aware cache (subsumption, residual
    #: candidate scans, benefit-per-byte eviction).  Off by default: the
    #: committed paper figures use the exact/complement-only manager.
    index_semantic: bool = False
    enable_btree: bool = False
    enable_ssd_cache: bool = False
    ssd_cache_bytes: int = 400 * 1024 * 1024 * 1024
    ssd_admit_preferred_only: bool = True
    #: Heat-based adaptive tiering (S50): auto-derived SSD preferences,
    #: cold→hot block promotion, scheduler placement hints.  Off by
    #: default: the committed paper figures use static placement.
    enable_tiering: bool = False
    #: Per-replica heterogeneous physical layouts (S54): "Trojan"
    #: replicas rewritten by the LayoutDaemon, layout-aware routing and
    #: cheaper variant I/O charges.  Off by default: the committed paper
    #: figures use byte-identical replicas.
    enable_layouts: bool = False
    #: Fused morsel-parallel scan pipelines (S51): one pass per block,
    #: lazy selection, real worker threads for wall-clock.  Off by
    #: default — results and simulated charges are byte-identical either
    #: way (differential-tested), but the default keeps the committed
    #: figures on the reference operator-at-a-time path.
    enable_fused_pipelines: bool = False
    #: Morsel worker pool size; 0 means ``os.cpu_count()``.
    worker_threads: int = 0
    #: Rows per morsel for the fused driver.
    morsel_rows: int = 64 * 1024


class LeafServer:
    """One worker in leaf role."""

    def __init__(
        self,
        sim: Simulator,
        worker_id: str,
        address: NodeAddress,
        net: NetworkTopology,
        router: StorageRouter,
        cluster_manager: ClusterManager,
        cost_model: Optional[CostModel] = None,
        config: Optional[LeafConfig] = None,
    ):
        self.sim = sim
        self.worker_id = worker_id
        self.address = address
        self.net = net
        self.router = router
        self.cluster_manager = cluster_manager
        # Per-instance defaults: a shared def-time CostModel()/LeafConfig()
        # would leak mutations across every leaf in every cluster.
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.config = config if config is not None else LeafConfig()
        config = self.config
        self.alive = True
        #: Fault-injection hook (:class:`repro.faults.FaultInjector`);
        #: None keeps every interception point on its zero-cost branch.
        self.faults = None
        #: Tiering hook (:class:`repro.storage.tiering.TieringDaemon`);
        #: None keeps reads on the catalog path with no heat recording.
        self.tiering = None
        #: Layout hook (:class:`repro.storage.layouts.LayoutDaemon`);
        #: None keeps every read on the base replica payload.
        self.layouts = None
        #: Standalone heat hook (:class:`repro.storage.tiering.HeatTracker`);
        #: the elastic rebalancer (S55) wires one here when tiering is off
        #: so hot-domain detection still sees every access.  None (the
        #: default) records nothing.
        self.heat = None
        #: Set by a completed decommission (S55): the heartbeat process
        #: exits instead of looping forever on a dead worker.
        self.retired = False

        self.disk = Disk(sim, name=f"{worker_id}.disk")
        self.ssd = Ssd(sim, name=f"{worker_id}.ssd")
        self.cpu = Cpu(sim, name=f"{worker_id}.cpu")
        self.nic = Nic(sim, name=f"{worker_id}.nic")

        self.index_manager: Optional[SmartIndexManager] = (
            SmartIndexManager(
                memory_budget_bytes=config.index_memory_bytes,
                ttl_s=config.index_ttl_s,
                compress=config.index_compress,
                semantic=config.index_semantic,
            )
            if config.enable_smartindex
            else None
        )
        self.ssd_cache: Optional[SsdCache] = (
            SsdCache(config.ssd_cache_bytes, config.ssd_admit_preferred_only)
            if config.enable_ssd_cache
            else None
        )
        self._btrees: Dict[Tuple[str, str], BPlusTree] = {}
        self.btree_builds = 0

        #: Per-storage-system task slots honouring resource agreements.
        self._slots: Dict[str, Resource] = {}
        for system in router.systems():
            self._slots[system.name] = Resource(
                sim, system.profile.tasks_per_node, name=f"{worker_id}.slots.{system.name}"
            )

        self.running_tasks = 0
        self.queued_tasks = 0
        self.tasks_completed = 0
        cluster_manager.register(worker_id, address, is_stem=False)
        sim.process(self._heartbeat_loop(), name=f"{worker_id}.heartbeat")

    # -- resource agreements (§V-B) -----------------------------------------

    def reclaim_slots(self, storage_name: str, slots: int) -> None:
        """Shrink Feisu's task slots for one storage system.

        §V-B: consolidated servers sometimes "have to give up resources
        to guarantee the provision of high-priority online services";
        Feisu reacts by queueing rather than refusing — running tasks
        finish, new ones wait for the reduced slot pool.
        """
        try:
            self._slots[storage_name].resize(max(1, slots))
        except KeyError:
            raise ClusterStateError(f"no storage system {storage_name!r} on this leaf") from None

    def restore_slots(self, storage_name: str) -> None:
        """Give back the agreement's full slot count."""
        for system in self.router.systems():
            if system.name == storage_name:
                self._slots[storage_name].resize(system.profile.tasks_per_node)
                return
        raise ClusterStateError(f"no storage system {storage_name!r} on this leaf")

    def slot_capacity(self, storage_name: str) -> int:
        return self._slots[storage_name].capacity

    # -- degradation (stragglers) ------------------------------------------

    def slow_down(self, factor: float) -> None:
        """Degrade this node's devices by ``factor`` (a straggler).

        §V-B: consolidated containers suffer interference — "this affects
        system throughput and latency".  A degraded leaf keeps serving,
        just slowly, which is exactly the case backup tasks exist for.
        """
        if factor <= 0:
            raise ClusterStateError("slow-down factor must be positive")
        self.disk.bandwidth_bps /= factor
        self.ssd.bandwidth_bps /= factor
        self.cpu.ops_per_sec /= factor

    def restore_speed(self, factor: float) -> None:
        """Undo a prior :meth:`slow_down` with the same factor."""
        self.disk.bandwidth_bps *= factor
        self.ssd.bandwidth_bps *= factor
        self.cpu.ops_per_sec *= factor

    # -- liveness ---------------------------------------------------------

    def crash(self) -> None:
        """Simulate process death: heartbeats stop, in-flight tasks fail."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    def retire(self) -> None:
        """Graceful exit after decommission (S55): unlike :meth:`crash`,
        the worker leaves for good — its heartbeat process terminates."""
        self.alive = False
        self.retired = True

    def _heartbeat_loop(self) -> Generator[Event, None, None]:
        master_addr = NodeAddress(0, 0, 0)
        while True:
            yield self.sim.timeout(HEARTBEAT_PERIOD_S)
            if self.retired:
                return
            if not self.alive:
                continue
            if self.faults is not None and self.faults.heartbeat_suppressed(self.worker_id):
                continue  # zombie: process alive, heartbeats lost in the fabric
            load = WorkerLoad(
                running_tasks=self.running_tasks,
                queued_tasks=self.queued_tasks,
                disk_queue_s=self.disk.queue_delay(),
                cpu_queue_s=self.cpu.queue_delay(),
            )
            try:
                yield send(
                    self.sim,
                    self.net,
                    self.address,
                    master_addr,
                    HEARTBEAT_BYTES,
                    TrafficClass.CONTROL,
                )
            except FaultInjectedError:
                continue  # this beat never arrived; try again next period
            if not self.alive:
                # Crashed while the heartbeat was in flight.  However late
                # the packet lands, a dead process must not report itself
                # live — doing so resurrected corpses in the membership
                # table after the sweep had already rescheduled their work.
                continue
            self.cluster_manager.heartbeat(self.worker_id, load)

    # -- B+ tree baseline ---------------------------------------------------

    def _btree_provider(self, block: Block, tag: str = "", only_column: Optional[str] = None):
        """``tag`` namespaces the cache per physical layout (a variant's
        row order invalidates base-order trees, S54); ``only_column``
        restricts the provider to a variant's *attached* index column."""

        def provider(block_id: str, column: str) -> Optional[BPlusTree]:
            if only_column is not None and column != only_column:
                return None
            key = (block_id + tag, column)
            tree = self._btrees.get(key)
            if tree is None:
                if column not in block.chunks:
                    return None
                # B-trees are prebuilt ahead of queries in the paper's
                # comparison; build lazily here but off the query clock.
                tree = BPlusTree(block.column(column))
                self._btrees[key] = tree
                self.btree_builds += 1
            return tree

        return provider

    # -- task execution ------------------------------------------------------

    def run_task(
        self,
        task: ScanTask,
        plan: PhysicalPlan,
        broadcast_frames: Dict[str, Frame],
        span=None,
    ) -> Generator[Event, None, TaskResult]:
        """Generator process executing one scan task on this leaf.

        ``span`` (a :class:`~repro.obs.trace.Span` for this attempt, or
        None) gains ``queue_wait`` / ``scan`` / ``aggregate`` children;
        span bookkeeping is plain object mutation and never touches the
        event loop, so tracing cannot perturb simulated timing.
        """
        if not self.alive:
            raise ClusterStateError(f"{self.worker_id} is down")
        block_path = (
            self.tiering.effective_path(task.block.path)
            if self.tiering is not None
            else task.block.path
        )
        system, inner = self.router.resolve(block_path)
        slot = self._slots[system.name]
        self.queued_tasks += 1
        wait_span = span.child("queue_wait", self.sim.now) if span is not None else None
        yield slot.request()
        if wait_span is not None:
            wait_span.tag("storage", system.name)
            wait_span.finish(self.sim.now)
        self.queued_tasks -= 1
        self.running_tasks += 1
        try:
            layout = None
            if self.layouts is not None and task.row_slice is None:
                # Trojan replicas (S54): the read is served by this node's
                # own replica when it holds one (else the nearest), and
                # that replica may carry a rewritten physical variant.
                serving = self.layouts.serving_replica(system, inner, self.address)
                payload, layout = self.layouts.payload_for(
                    system, inner, serving, task.columns
                )
            else:
                payload = system.read(inner)
            block = Block.from_bytes(payload)
            if (
                self.config.enable_fused_pipelines
                and task.row_slice is None
                and layout is None
            ):
                from repro.engine.pipeline import execute_fused_scan_task

                result = execute_fused_scan_task(
                    task,
                    plan,
                    block,
                    broadcast_frames,
                    index_manager=self.index_manager,
                    btree_provider=(
                        self._btree_provider(block) if self.config.enable_btree else None
                    ),
                    now=self.sim.now,
                    span=span,
                    worker_threads=self.config.worker_threads,
                    morsel_rows=self.config.morsel_rows,
                )
            else:
                if layout is not None:
                    # Variant row order invalidates whole-block SmartIndex
                    # bitvectors (keyed by block_id on *base* order) — same
                    # rule adaptive row slices follow.  The variant's own
                    # attached B+ tree is served under a layout-tagged key.
                    btree_provider = (
                        self._btree_provider(
                            block,
                            tag="#" + layout.describe(),
                            only_column=layout.index_column,
                        )
                        if layout.index_column is not None
                        else None
                    )
                    result = execute_scan_task(
                        task,
                        plan,
                        block,
                        broadcast_frames,
                        index_manager=None,
                        btree_provider=btree_provider,
                        now=self.sim.now,
                        span=span,
                        layout=layout,
                    )
                else:
                    result = execute_scan_task(
                        task,
                        plan,
                        block,
                        broadcast_frames,
                        index_manager=self.index_manager,
                        btree_provider=self._btree_provider(block) if self.config.enable_btree else None,
                        now=self.sim.now,
                        span=span,
                    )
            report = result.report
            if self.layouts is not None:
                from repro.storage.layouts import base_join_columns

                self.layouts.record_scan(
                    task.block.path,
                    plan.scan_cnf,
                    task.columns,
                    join_columns=base_join_columns(plan),
                    reader=self.address,
                    nbytes=int(report.modeled_io_bytes),
                    now=self.sim.now,
                )

            if report.io_bytes > 0:
                scan_span = span.child("scan", self.sim.now) if span is not None else None
                yield from self._charge_io(task, system, inner, block_path, payload, report)
                if scan_span is not None:
                    if self.tiering is not None:
                        scan_span.tag("tier", self.tiering.tier_of(task.block.path))
                    if self.layouts is not None:
                        scan_span.tag(
                            "layout", layout.describe() if layout is not None else "base"
                        )
                    scan_span.tag("io_bytes_modeled", report.modeled_io_bytes)
                    scan_span.tag("seeks", report.io_seeks)
                    scan_span.tag("rows_in", report.rows_in_block)
                    scan_span.tag("rows_out", report.rows_matched)
                    if report.index_residual_clauses:
                        scan_span.tag("residual_clauses", report.index_residual_clauses)
                        scan_span.tag(
                            "residual_fraction",
                            round(
                                report.index_residual_fraction
                                / report.index_residual_clauses,
                                4,
                            ),
                        )
                    if report.fused:
                        # Morsel-level aggregation as tags on the one scan
                        # span — no per-morsel children, so the span tree
                        # stays the same size at any morsel count.
                        scan_span.tag("fused", True)
                        scan_span.tag("morsels", report.morsels)
                        scan_span.tag("workers", report.workers)
                        scan_span.tag("morsel_wall_s", round(report.morsel_wall_s, 6))
                    scan_span.finish(self.sim.now)
            elif span is not None:
                # Fully index-covered: record a zero-IO scan span so the
                # rows still show up in EXPLAIN ANALYZE totals.
                covered_span = span.child("scan", self.sim.now).tag("io_bytes_modeled", 0).tag(
                    "rows_in", report.rows_in_block
                ).tag("rows_out", report.rows_matched)
                if self.tiering is not None:
                    covered_span.tag("tier", self.tiering.tier_of(task.block.path))
                if self.layouts is not None:
                    covered_span.tag(
                        "layout", layout.describe() if layout is not None else "base"
                    )
                if report.fused:
                    covered_span.tag("fused", True)
                    covered_span.tag("morsels", report.morsels)
                    covered_span.tag("workers", report.workers)
                    covered_span.tag("morsel_wall_s", round(report.morsel_wall_s, 6))
                covered_span.finish(self.sim.now)
            if report.modeled_cpu_ops > 0:
                cpu_name = "aggregate" if plan.is_aggregate else "project"
                cpu_span = span.child(cpu_name, self.sim.now) if span is not None else None
                yield self.cpu.compute(report.modeled_cpu_ops)
                if cpu_span is not None:
                    cpu_span.tag("cpu_ops_modeled", report.modeled_cpu_ops)
                    cpu_span.finish(self.sim.now)
            if not self.alive:
                raise ClusterStateError(f"{self.worker_id} died mid-task")
            self.tasks_completed += 1
            return result
        finally:
            self.running_tasks -= 1
            slot.release()

    def _charge_io(
        self, task: ScanTask, system, inner: str, block_path: str, payload: bytes, report
    ) -> Generator[Event, None, None]:
        """Charge the simulated time for this task's data access.

        ``block_path`` is the *effective* full path (post tiering
        redirect) keying the SSD cache; heat is recorded against the
        original catalog path so it survives promotion transitions.
        """
        nbytes = int(report.modeled_io_bytes)
        profile = system.profile
        if self.tiering is not None:
            self.tiering.record_access(
                task.block.path, nbytes, reader=self.address, now=self.sim.now
            )
        if self.heat is not None:
            self.heat.record(
                task.block.path, nbytes, reader=self.address, now=self.sim.now
            )
        if self.ssd_cache is not None:
            cached = self.ssd_cache.get(block_path)
            if cached is not None:
                if cached == payload:
                    yield self.ssd.read(nbytes, seeks=report.io_seeks)
                    return
                # The block was rewritten since it was cached; serving the
                # stale copy would return wrong rows.  Reclassify the hit
                # and fall through to a real read.
                self.ssd_cache.invalidate_stale(block_path)
        replicas = system.locations(inner)
        if not replicas:
            raise ExecutionError(f"no live replica for {block_path}")
        first_byte = profile.first_byte_latency_s
        if self.faults is not None:
            first_byte += self.faults.storage_first_byte_extra(system.name, self.worker_id)
        if self.address in replicas:
            if first_byte:
                yield self.sim.timeout(first_byte)
            yield self.disk.read(
                int(nbytes / profile.bandwidth_factor), seeks=report.io_seeks
            )
        else:
            # Remote read: source replica's storage latency + network path.
            source = min(replicas, key=lambda r: self.net.distance(r, self.address))
            if first_byte:
                yield self.sim.timeout(first_byte)
            yield self.net.transfer(source, self.address, nbytes, TrafficClass.READ)
        if self.ssd_cache is not None:
            self.ssd_cache.put(block_path, payload)

    # -- introspection --------------------------------------------------------

    def load_snapshot(self) -> WorkerLoad:
        return WorkerLoad(
            running_tasks=self.running_tasks,
            queued_tasks=self.queued_tasks,
            disk_queue_s=self.disk.queue_delay(),
            cpu_queue_s=self.cpu.queue_delay(),
        )


class StemServer:
    """Intermediate aggregator in the server tree."""

    def __init__(
        self,
        sim: Simulator,
        worker_id: str,
        address: NodeAddress,
        net: NetworkTopology,
        cluster_manager: ClusterManager,
    ):
        self.sim = sim
        self.worker_id = worker_id
        self.address = address
        self.net = net
        self.alive = True
        #: Fault-injection hook; see :class:`LeafServer`.
        self.faults = None
        self.cpu = Cpu(sim, name=f"{worker_id}.cpu")
        self.results_merged = 0
        cluster_manager.register(worker_id, address, is_stem=True)
        sim.process(self._heartbeat_loop(cluster_manager), name=f"{worker_id}.heartbeat")

    def crash(self) -> None:
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    def _heartbeat_loop(self, cluster_manager: ClusterManager) -> Generator[Event, None, None]:
        master_addr = NodeAddress(0, 0, 0)
        while True:
            yield self.sim.timeout(HEARTBEAT_PERIOD_S)
            if not self.alive:
                continue
            if self.faults is not None and self.faults.heartbeat_suppressed(self.worker_id):
                continue
            try:
                yield send(
                    self.sim,
                    self.net,
                    self.address,
                    master_addr,
                    HEARTBEAT_BYTES,
                    TrafficClass.CONTROL,
                )
            except FaultInjectedError:
                continue
            if not self.alive:
                continue  # died mid-flight; see LeafServer._heartbeat_loop
            cluster_manager.heartbeat(self.worker_id, WorkerLoad())

    def merge(self, result: TaskResult) -> Generator[Event, None, TaskResult]:
        """Charge merge CPU for one incoming task result."""
        if not self.alive:
            raise ClusterStateError(f"{self.worker_id} is down")
        if result.partial is not None:
            ops = 8.0 * max(1, len(result.partial.groups))
        elif result.frame is not None:
            ops = 2.0 * max(1, result.frame.num_rows)
        else:
            ops = 1.0
        yield self.cpu.compute(ops)
        self.results_merged += 1
        return result
