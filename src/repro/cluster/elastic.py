"""Elastic cluster membership and rebalancing (S55).

§VII recounts a fleet that grew past five and then eight thousand
workers without downtime; until now the simulated cluster was a fixed
node set from boot.  This module closes ROADMAP item #5 with three
cooperating pieces:

* **Join/decommission on the simulated clock.**  A joining node is
  cabled into an existing rack (:meth:`NetworkTopology.admit_node`),
  admitted to every storage system's placement pool, and brought up as a
  registering, heartbeating :class:`~repro.cluster.node.LeafServer`.  A
  decommission *drains*: the :class:`~repro.cluster.membership.ClusterManager`
  marks the worker draining (the scheduler stops placing on it), its
  replicas — layout variants included — are evacuated with
  publish-after-write copies, running tasks finish, and only then does
  the worker unregister and leave every placement pool.

* **A Rebalancer daemon.**  Per managed storage system it maintains a
  hash-range :class:`ShardMap` over the namespace (ctools-style minimal
  version bumps: a split mints one new version, a migration bumps only
  the shard it moved), detects hot domains from
  :class:`~repro.storage.tiering.HeatTracker` mass, splits oversized hot
  shards and merges adjacent cold ones, spreads hot blocks' replicas
  onto idle eligible nodes, and migrates bytes off overloaded nodes —
  every copy publish-after-write and idempotent, so a migration killed
  mid-flight is retried or adopted, never double-counted.

* **An autoscaling policy** that watches the opt-in
  :class:`~repro.cluster.metrics.MetricsTimeSeries` and *proposes*
  join/decommission from sustained load; applying a proposal is an
  explicit call, never a side effect.

Everything is flag-gated behind ``FeisuConfig.enable_elastic`` — off (the
default) constructs nothing, adds no simulation events, and leaves the
committed figure results byte-identical.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.errors import ClusterStateError, FaultInjectedError, FeisuError
from repro.sim.events import Event, Simulator
from repro.sim.netmodel import NetworkTopology, NodeAddress, TrafficClass
from repro.storage.base import StorageSystem
from repro.storage.maintenance import ReplicaRepairer
from repro.storage.router import StorageRouter
from repro.storage.tiering import HeatTracker

__all__ = [
    "AutoscalePolicy",
    "ElasticConfig",
    "ElasticityManager",
    "Rebalancer",
    "RebalanceStats",
    "ScaleDecision",
    "ShardInfo",
    "ShardMap",
]

#: Hash space the shard ranges partition (32-bit blake2b of the path).
HASH_SPACE = 1 << 32


@dataclass
class ElasticConfig:
    """Policy knobs for the elastic subsystem."""

    #: Rebalancer wakeup period, simulated seconds.
    rebalance_period_s: float = 30.0
    #: Shards each managed namespace starts with.
    initial_shards: int = 4
    #: Heat half-life for the standalone tracker (shared with tiering's
    #: tracker when tiering is enabled).
    heat_half_life_s: float = 120.0
    #: A shard holding at least this share of total namespace heat is a
    #: hot domain (split candidate).
    hot_share: float = 0.40
    #: Never split a shard below this many member paths.
    split_min_paths: int = 2
    #: Adjacent shards whose combined heat share is below this merge.
    merge_share: float = 0.02
    #: Minimum per-path heat before replica spreading considers it.
    spread_heat_threshold: float = 1.5
    #: Extra replicas a hot path may gain over the system's target.
    spread_max_extra: int = 2
    #: Copies per cycle caps (spreads serve latency, migrations balance
    #: bytes; both are bounded so a cycle never floods the fabric).
    max_spreads_per_cycle: int = 8
    max_migrations_per_cycle: int = 2
    #: Byte-imbalance ratio (heaviest vs. lightest node) tolerated
    #: before a balancing migration moves a block.
    balance_tolerance: float = 0.5
    #: Autoscaling policy (proposals only; never auto-applied).
    autoscale: bool = True
    scale_up_utilization: float = 0.60
    scale_down_utilization: float = 0.05
    sustain_samples: int = 3
    autoscale_cooldown_s: float = 120.0
    min_nodes: int = 2
    #: Drain loop poll period while a decommission waits for running
    #: tasks and retried evacuations.
    drain_poll_s: float = 2.0


def path_hash(path: str) -> int:
    """Stable 32-bit hash placing ``path`` on the shard ring."""
    digest = hashlib.blake2b(path.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "little")


@dataclass
class ShardInfo:
    """One contiguous hash range ``[lo, hi)`` of a namespace."""

    shard_id: str
    lo: int
    hi: int
    #: ctools-style shard version: migrations bump major, splits/merges
    #: mint a minor — and only on the shard actually touched.
    major: int = 1
    minor: int = 0

    @property
    def version(self) -> str:
        return f"{self.major}.{self.minor}"

    def covers(self, h: int) -> bool:
        return self.lo <= h < self.hi


class ShardMap:
    """Hash-range shards over one storage namespace.

    The map is bookkeeping for the rebalancer's *domain* decisions —
    which region of the namespace is hot, what to split, what one
    migration invalidates — mirroring how a sharded store tracks chunk
    ranges and versions.  Blocks themselves stay addressed by path; no
    read ever routes through the map.
    """

    def __init__(self, initial_shards: int = 4):
        if initial_shards < 1:
            raise FeisuError("need at least one shard")
        self._shards: List[ShardInfo] = []
        step = HASH_SPACE // initial_shards
        for i in range(initial_shards):
            lo = i * step
            hi = (i + 1) * step if i < initial_shards - 1 else HASH_SPACE
            self._shards.append(ShardInfo(f"s{i}", lo, hi))
        self._next_id = initial_shards
        self.splits = 0
        self.merges = 0
        self.version_bumps = 0

    def shards(self) -> List[ShardInfo]:
        return sorted(self._shards, key=lambda s: s.lo)

    def shard_for(self, path: str) -> ShardInfo:
        h = path_hash(path)
        for shard in self._shards:
            if shard.covers(h):
                return shard
        raise FeisuError(f"no shard covers hash {h}")  # pragma: no cover

    def members(self, paths: List[str]) -> Dict[str, List[str]]:
        """Shard id → member paths (sorted, deterministic)."""
        out: Dict[str, List[str]] = {s.shard_id: [] for s in self._shards}
        for path in sorted(paths):
            out[self.shard_for(path).shard_id].append(path)
        return out

    def split(self, shard: ShardInfo, member_paths: List[str]) -> Optional[ShardInfo]:
        """Split a hot shard at the median member hash.

        The left half keeps the shard's id and version; the right half
        is a new shard with a fresh minor — exactly one new version per
        split, so every *other* shard's version (and any cached routing
        derived from it) stays valid.  Returns the new right shard, or
        None when the members cannot be separated.
        """
        hashes = sorted({path_hash(p) for p in member_paths if shard.covers(path_hash(p))})
        if len(hashes) < 2:
            return None
        mid = hashes[len(hashes) // 2]
        if mid == hashes[0]:
            mid = hashes[1]
        if not (shard.lo < mid < shard.hi):
            return None
        right = ShardInfo(
            f"s{self._next_id}", mid, shard.hi, major=shard.major, minor=shard.minor + 1
        )
        self._next_id += 1
        shard.hi = mid
        self._shards.append(right)
        self.splits += 1
        self.version_bumps += 1
        return right

    def merge(self, left: ShardInfo, right: ShardInfo) -> ShardInfo:
        """Merge two adjacent cold shards; the survivor (left) absorbs
        the range with one minor bump."""
        if left.hi != right.lo:
            raise FeisuError(
                f"shards {left.shard_id} and {right.shard_id} are not adjacent"
            )
        left.hi = right.hi
        left.major = max(left.major, right.major)
        left.minor += 1
        self._shards.remove(right)
        self.merges += 1
        self.version_bumps += 1
        return left

    def bump_major(self, shard: ShardInfo) -> None:
        """A migration moved this shard's blocks: its version majors."""
        shard.major += 1
        shard.minor = 0
        self.version_bumps += 1


@dataclass
class RebalanceStats:
    cycles: int = 0
    splits: int = 0
    merges: int = 0
    #: Copies that grew a hot path's replica set (no source drop).
    spreads: int = 0
    #: Completed copy-then-retire block moves.
    migrations: int = 0
    #: Moves finished by adopting a prior attempt's published copy.
    adopted_migrations: int = 0
    #: Transfers killed mid-flight by the fault layer.
    failed_migrations: int = 0
    #: Replicas taken off draining nodes.
    evacuations: int = 0
    moved_bytes: int = 0


@dataclass
class ScaleDecision:
    """One autoscaling proposal (never auto-applied)."""

    action: str  # "scale-up" | "scale-down"
    at_s: float
    reason: str
    worker_id: Optional[str] = None  # scale-down victim


class AutoscalePolicy:
    """Sustained-load join/decommission proposals from metrics samples."""

    def __init__(
        self,
        scale_up_utilization: float = 0.60,
        scale_down_utilization: float = 0.05,
        sustain_samples: int = 3,
        cooldown_s: float = 120.0,
        min_nodes: int = 2,
    ):
        self.scale_up_utilization = scale_up_utilization
        self.scale_down_utilization = scale_down_utilization
        self.sustain_samples = max(1, sustain_samples)
        self.cooldown_s = cooldown_s
        self.min_nodes = min_nodes
        self._last_decision_at = -float("inf")

    def evaluate(
        self,
        samples: List,
        now: float,
        leaves_alive: int,
        pick_victim: Callable[[], Optional[str]],
    ) -> Optional[ScaleDecision]:
        """Samples are :class:`~repro.cluster.metrics.ClusterMetrics`;
        the disk-utilization mean must hold above/below the threshold
        for ``sustain_samples`` consecutive samples."""
        if len(samples) < self.sustain_samples:
            return None
        if now - self._last_decision_at < self.cooldown_s:
            return None
        window = samples[-self.sustain_samples :]
        utils = [s.disk.mean_utilization for s in window]
        if all(u >= self.scale_up_utilization for u in utils):
            self._last_decision_at = now
            return ScaleDecision(
                "scale-up",
                now,
                f"disk utilization >= {self.scale_up_utilization:.2f} for "
                f"{self.sustain_samples} consecutive samples",
            )
        if leaves_alive > self.min_nodes and all(
            u <= self.scale_down_utilization for u in utils
        ):
            victim = pick_victim()
            if victim is not None:
                self._last_decision_at = now
                return ScaleDecision(
                    "scale-down",
                    now,
                    f"disk utilization <= {self.scale_down_utilization:.2f} for "
                    f"{self.sustain_samples} consecutive samples",
                    worker_id=victim,
                )
        return None


class Rebalancer:
    """Hot-domain detection, shard split/merge, live block migration.

    Every copy follows the publish-after-write pattern the tiering and
    layout daemons established: ship bytes first, publish the replica
    (and its carried layout variant) only after the transfer lands, and
    retire the source replica last — so a kill at any point leaves the
    placement at or above where it started, and the retry either redoes
    the copy or adopts the published half of a previous attempt.
    """

    def __init__(
        self,
        sim: Simulator,
        net: NetworkTopology,
        router: StorageRouter,
        systems: List[StorageSystem],
        heat: Optional[HeatTracker] = None,
        config: Optional[ElasticConfig] = None,
        placement_ok: Optional[Callable[[NodeAddress], bool]] = None,
        on_cycle_end: Optional[Callable[[float], None]] = None,
    ):
        self.sim = sim
        self.net = net
        self.router = router
        self.systems = list(systems)
        self.config = config if config is not None else ElasticConfig()
        self.heat = heat if heat is not None else HeatTracker(self.config.heat_half_life_s)
        self.placement_ok = placement_ok
        self.on_cycle_end = on_cycle_end
        self.maps: Dict[str, ShardMap] = {
            s.name: ShardMap(self.config.initial_shards) for s in self.systems
        }
        self.stats = RebalanceStats()
        self._running = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.process(self._loop(), name="rebalancer")

    def _loop(self) -> Generator[Event, None, None]:
        while True:
            yield self.sim.timeout(self.config.rebalance_period_s)
            yield self.sim.process(self.run_once(), name="rebalance-cycle")

    # -- one decision cycle ----------------------------------------------

    def run_once(self) -> Generator[Event, None, None]:
        now = self.sim.now
        self.stats.cycles += 1
        for system in self.systems:
            yield from self._rebalance_system(system, now)
        if self.on_cycle_end is not None:
            self.on_cycle_end(now)

    def _eligible_nodes(self, system: StorageSystem) -> List[NodeAddress]:
        return [
            n
            for n in system.nodes()
            if self.placement_ok is None or self.placement_ok(n)
        ]

    def _node_key(self, addr: NodeAddress) -> Tuple[int, int, int]:
        return (addr.datacenter, addr.rack, addr.node)

    def _pick_target(
        self, system: StorageSystem, holders: List[NodeAddress]
    ) -> Optional[NodeAddress]:
        """Least-loaded eligible node not already holding the block."""
        held = set(holders)
        pool = [n for n in self._eligible_nodes(system) if n not in held]
        if not pool:
            return None
        return min(pool, key=lambda n: (system.bytes_on(n), self._node_key(n)))

    def _path_heat(self, system: StorageSystem, inner: str, now: float) -> float:
        return self.heat.heat(self.router.full_path(system, inner), now)

    def _rebalance_system(
        self, system: StorageSystem, now: float
    ) -> Generator[Event, None, None]:
        cfg = self.config
        smap = self.maps[system.name]
        inners = system.list_paths()
        heat_of = {p: self._path_heat(system, p, now) for p in inners}

        # -- hot-domain detection: split / merge --------------------------
        members = smap.members(inners)
        shard_heat = {
            sid: sum(heat_of[p] for p in paths) for sid, paths in members.items()
        }
        total_heat = sum(shard_heat.values())
        if total_heat > 0.0:
            for shard in smap.shards():
                share = shard_heat.get(shard.shard_id, 0.0) / total_heat
                paths = members.get(shard.shard_id, [])
                if share >= cfg.hot_share and len(paths) >= cfg.split_min_paths:
                    if smap.split(shard, paths) is not None:
                        self.stats.splits += 1
            # One merge per cycle keeps version churn minimal.
            ordered = smap.shards()
            for left, right in zip(ordered, ordered[1:]):
                combined = (
                    shard_heat.get(left.shard_id, 0.0)
                    + shard_heat.get(right.shard_id, 0.0)
                ) / total_heat
                if combined <= cfg.merge_share:
                    smap.merge(left, right)
                    self.stats.merges += 1
                    break

        # -- replica spreading: hot blocks fan out to idle nodes ----------
        target_replication = getattr(system, "replication", 1)
        hot_paths = sorted(
            (p for p in inners if heat_of[p] >= cfg.spread_heat_threshold),
            key=lambda p: (-heat_of[p], p),
        )
        bumped: set = set()
        spreads = 0
        for inner in hot_paths:
            if spreads >= cfg.max_spreads_per_cycle:
                break
            holders = system.locations(inner)
            if len(holders) >= target_replication + cfg.spread_max_extra:
                continue
            target = self._pick_target(system, holders)
            if target is None:
                continue
            source = min(holders, key=lambda h: self.net.distance(h, target))
            try:
                done = yield from self.copy_replica(system, inner, source, target)
            except FaultInjectedError:
                self.stats.failed_migrations += 1
                continue
            if done:
                spreads += 1
                self.stats.spreads += 1

        # -- byte balancing: migrate off the heaviest node ----------------
        for _ in range(cfg.max_migrations_per_cycle):
            plan = self._plan_balance(system)
            if plan is None:
                break
            inner, source, target = plan
            try:
                done = yield from self.migrate_block(system, inner, source, target)
            except FaultInjectedError:
                self.stats.failed_migrations += 1
                break
            if done:
                shard = smap.shard_for(inner)
                if shard.shard_id not in bumped:
                    # Minimal version churn: one major bump per shard per
                    # cycle, only for shards whose blocks actually moved.
                    smap.bump_major(shard)
                    bumped.add(shard.shard_id)

    def _plan_balance(
        self, system: StorageSystem
    ) -> Optional[Tuple[str, NodeAddress, NodeAddress]]:
        nodes = self._eligible_nodes(system)
        if len(nodes) < 2:
            return None
        loads = {n: system.bytes_on(n) for n in nodes}
        heavy = max(nodes, key=lambda n: (loads[n], self._node_key(n)))
        light = min(nodes, key=lambda n: (loads[n], self._node_key(n)))
        if loads[heavy] <= 0:
            return None
        if loads[heavy] - loads[light] <= self.config.balance_tolerance * loads[heavy]:
            return None
        candidates = [
            p for p in system.held_paths(heavy) if light not in system.locations(p)
        ]
        if not candidates:
            return None
        inner = max(candidates, key=lambda p: (system.size(p), p))
        return inner, heavy, light

    # -- copy primitives (publish-after-write, idempotent) ----------------

    def copy_replica(
        self,
        system: StorageSystem,
        inner: str,
        source: NodeAddress,
        target: NodeAddress,
    ) -> Generator[Event, None, bool]:
        """Grow ``inner``'s replica set onto ``target`` from ``source``.

        The placement entry appears only after the transfer lands
        (publish-after-write); ``add_replica`` is idempotent so a racing
        or retried copy can never double-count a holder.  The source's
        layout variant rides along and is re-checked after the transfer
        — the same stale-variant race the repairer guards against.
        """
        if not system.exists(inner):
            return False
        holders = system.locations(inner)
        if target in holders or source not in holders:
            return False
        data = system.read(inner)
        variant = system.replica_variant(inner, source)
        meta = system.replica_meta(inner, source)
        payload = variant if variant is not None else data
        yield self.net.transfer(source, target, len(payload), TrafficClass.WRITE)
        if not system.exists(inner):
            return False  # deleted while the copy was in flight
        system.add_replica(inner, target)
        self._carry_variant(system, inner, source, target, variant, meta)
        self.stats.moved_bytes += len(payload)
        return True

    def _carry_variant(
        self,
        system: StorageSystem,
        inner: str,
        source: NodeAddress,
        target: NodeAddress,
        variant: Optional[bytes],
        meta: Optional[dict],
    ) -> None:
        if variant is None:
            return
        holders = system.locations(inner)
        if source not in holders or target not in holders:
            return
        if (
            system.replica_variant(inner, source) == variant
            and system.replica_meta(inner, source) == meta
        ):
            system.set_replica_variant(inner, target, variant, meta=meta)

    def migrate_block(
        self,
        system: StorageSystem,
        inner: str,
        source: NodeAddress,
        target: NodeAddress,
    ) -> Generator[Event, None, bool]:
        """Move one replica: copy to ``target``, then retire ``source``.

        The replica count never dips below its starting point — the add
        publishes before the drop.  A kill between the two leaves the
        block over-replicated; the retry sees the published target copy
        and finishes by retiring the source alone (adoption), so the
        move is exactly-once in effect.
        """
        if not system.exists(inner):
            return False
        floor = getattr(system, "replication", 1)
        holders = system.locations(inner)
        if source not in holders:
            return False  # already migrated away
        if target in holders:
            # Adopt a half-finished earlier attempt: the copy landed and
            # published, only the source retirement was lost.
            if len(holders) > floor:
                system.drop_replica(inner, source)
                self.stats.adopted_migrations += 1
                return True
            return False
        done = yield from self.copy_replica(system, inner, source, target)
        if not done:
            return False
        holders = system.locations(inner)
        if source in holders and len(holders) > floor:
            system.drop_replica(inner, source)
        self.stats.migrations += 1
        return True

    def evacuate_replica(
        self, system: StorageSystem, inner: str, node: NodeAddress
    ) -> Generator[Event, None, bool]:
        """Take ``node``'s replica of ``inner`` off it (drain support).

        When enough copies already live elsewhere the replica is simply
        retired — after re-homing any layout variant it alone served
        onto a surviving holder.  Otherwise a full publish-after-write
        migration runs first.
        """
        if not system.exists(inner):
            return True
        holders = system.locations(inner)
        if node not in holders:
            return True
        floor = getattr(system, "replication", 1)
        survivors = [h for h in holders if h != node]
        if len(survivors) >= floor:
            variant = system.replica_variant(inner, node)
            meta = system.replica_meta(inner, node)
            if variant is not None:
                host = next(
                    (
                        s
                        for s in survivors
                        if system.replica_variant(inner, s) is None
                        and (self.placement_ok is None or self.placement_ok(s))
                    ),
                    None,
                )
                if host is not None:
                    yield self.net.transfer(
                        node, host, len(variant), TrafficClass.WRITE
                    )
                    self._carry_variant(system, inner, node, host, variant, meta)
            if system.exists(inner) and node in system.locations(inner):
                system.drop_replica(inner, node)
            self.stats.evacuations += 1
            return True
        target = self._pick_target(system, holders)
        if target is None:
            return False  # nowhere eligible yet; the drain loop retries
        done = yield from self.migrate_block(system, inner, node, target)
        if done:
            self.stats.evacuations += 1
        return done


class ElasticityManager:
    """Join/decommission orchestration over one :class:`FeisuCluster`.

    Owns the :class:`Rebalancer`, the :class:`AutoscalePolicy`, and a
    liveness-aware :class:`~repro.storage.maintenance.ReplicaRepairer`
    per managed system, and wires drain/liveness awareness into the
    tiering and layout daemons when those are enabled.
    """

    def __init__(self, cluster, config: Optional[ElasticConfig] = None):
        self.cluster = cluster
        self.config = config if config is not None else ElasticConfig()
        sim = cluster.sim
        self.sim = sim
        #: Systems the rebalancer shards and spreads over (the hot,
        #: block-replicated substrates the scheduler scans from).
        self.systems: List[StorageSystem] = [cluster.storage_a, cluster.storage_b]

        tiering = getattr(cluster, "tiering", None)
        if tiering is not None:
            heat = tiering.heat  # one census, two consumers
            tiering.placement_ok = self.node_ok
        else:
            heat = HeatTracker(self.config.heat_half_life_s)
            for leaf in cluster.leaves:
                leaf.heat = heat
        layouts = getattr(cluster, "layouts", None)
        if layouts is not None:
            layouts.placement_ok = self.node_ok
        self.heat = heat

        self.rebalancer = Rebalancer(
            sim,
            cluster.net,
            cluster.router,
            self.systems,
            heat=heat,
            config=self.config,
            placement_ok=self.node_ok,
            on_cycle_end=self._autoscale_tick,
        )
        self.policy = AutoscalePolicy(
            scale_up_utilization=self.config.scale_up_utilization,
            scale_down_utilization=self.config.scale_down_utilization,
            sustain_samples=self.config.sustain_samples,
            cooldown_s=self.config.autoscale_cooldown_s,
            min_nodes=self.config.min_nodes,
        )
        self.proposals: List[ScaleDecision] = []
        self.repairers = [
            ReplicaRepairer(sim, cluster.net, system, liveness=self.node_ok)
            for system in self.systems
        ]
        self.joins = 0
        self.decommissions = 0
        #: Addresses that completed decommission — the invariant monitor
        #: checks no block placement ever references one of these.
        self.departed: List[NodeAddress] = []
        self._next_node: Dict[Tuple[int, int], int] = {}
        self._running = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.rebalancer.start()
        for repairer in self.repairers:
            repairer.start()

    # -- eligibility ------------------------------------------------------

    def node_ok(self, addr: NodeAddress) -> bool:
        """Placement-eligibility: a registered, live, non-draining leaf."""
        leaf = self.cluster.scheduler.leaf_at(addr)
        if leaf is None or not leaf.alive:
            return False
        cm = self.cluster.cluster_manager
        try:
            return cm.is_alive(leaf.worker_id) and not cm.is_draining(leaf.worker_id)
        except ClusterStateError:
            return False

    # -- node join --------------------------------------------------------

    def join_node(self, datacenter: int = 0, rack: int = 0):
        """Bring a new leaf up in an existing rack: cable it into the
        topology, admit it to every storage pool, register + heartbeat.
        Returns the new :class:`~repro.cluster.node.LeafServer`."""
        key = (datacenter, rack)
        index = self._next_node.get(key, self.cluster.config.nodes_per_rack)
        addr = NodeAddress(datacenter, rack, index)
        self._next_node[key] = index + 1
        self.cluster.net.admit_node(addr)
        for system in self.cluster.router.systems():
            system.add_node(addr)
        from repro.cluster.node import LeafServer

        leaf = LeafServer(
            self.sim,
            worker_id=f"leaf-{addr}",
            address=addr,
            net=self.cluster.net,
            router=self.cluster.router,
            cluster_manager=self.cluster.cluster_manager,
            config=replace(self.cluster.config.leaf),
        )
        tiering = getattr(self.cluster, "tiering", None)
        if tiering is not None:
            leaf.tiering = tiering
            if leaf.ssd_cache is not None:
                tiering.attach_cache(leaf.ssd_cache)
        else:
            leaf.heat = self.heat
        layouts = getattr(self.cluster, "layouts", None)
        if layouts is not None:
            leaf.layouts = layouts
        injector = getattr(self.cluster, "fault_injector", None)
        if injector is not None:
            leaf.faults = injector
        self.cluster.leaves.append(leaf)
        self.cluster.scheduler.register_leaf(leaf)
        self.joins += 1
        return leaf

    # -- decommission -----------------------------------------------------

    def decommission(self, worker_id: str) -> Event:
        """Start a graceful decommission; returns the drain process event
        (drive the simulation to completion to finish it).

        Drain order: mark draining (scheduler stops placing) → evacuate
        every replica the node holds across every storage system,
        variants included — retrying through fault windows — → wait for
        running tasks to finish → retire, unregister, leave every
        placement pool.
        """
        leaf = next(
            (l for l in self.cluster.leaves if l.worker_id == worker_id), None
        )
        if leaf is None:
            raise FeisuError(f"no leaf {worker_id!r} to decommission")
        self.cluster.cluster_manager.start_drain(worker_id)
        return self.sim.process(self._drain(leaf), name=f"drain-{worker_id}")

    def _drain(self, leaf) -> Generator[Event, None, None]:
        addr = leaf.address
        all_systems = list(self.cluster.router.systems())
        while True:
            pending = [
                (system, inner)
                for system in all_systems
                for inner in system.held_paths(addr)
            ]
            if not pending and leaf.running_tasks == 0 and leaf.queued_tasks == 0:
                break
            for system, inner in pending:
                try:
                    yield from self.rebalancer.evacuate_replica(system, inner, addr)
                except FaultInjectedError:
                    # The copy died mid-flight: nothing was published, the
                    # replica is still on the draining node, and the next
                    # pass retries.  The drain never gives up.
                    self.rebalancer.stats.failed_migrations += 1
            yield self.sim.timeout(self.config.drain_poll_s)
        leaf.retire()
        self.cluster.scheduler.unregister_leaf(leaf.worker_id)
        self.cluster.cluster_manager.unregister(leaf.worker_id)
        for system in all_systems:
            if addr in system.nodes():
                system.remove_node(addr)
        self.departed.append(addr)
        self.decommissions += 1

    # -- autoscaling ------------------------------------------------------

    def _pick_scale_down_victim(self) -> Optional[str]:
        """Least-loaded live non-draining leaf, deterministic tie-break."""
        cm = self.cluster.cluster_manager
        candidates = []
        for leaf in self.cluster.leaves:
            if not leaf.alive:
                continue
            try:
                if not cm.is_alive(leaf.worker_id) or cm.is_draining(leaf.worker_id):
                    continue
            except ClusterStateError:
                continue
            load = sum(system.bytes_on(leaf.address) for system in self.systems)
            candidates.append((load, leaf.worker_id))
        if not candidates:
            return None
        return min(candidates)[1]

    def _autoscale_tick(self, now: float) -> None:
        if not self.config.autoscale:
            return
        series = getattr(self.cluster, "metrics_series", None)
        if series is None:
            return  # sampler not started: no signal, no proposals
        alive = sum(leaf.alive for leaf in self.cluster.leaves)
        decision = self.policy.evaluate(
            series.samples, now, alive, self._pick_scale_down_victim
        )
        if decision is not None:
            self.proposals.append(decision)

    def apply_proposal(self, decision: ScaleDecision):
        """Act on one proposal: a scale-up joins a node into the first
        rack of the first datacenter; a scale-down decommissions the
        proposed victim.  Returns the new leaf or the drain event."""
        if decision.action == "scale-up":
            return self.join_node()
        if decision.action == "scale-down":
            if decision.worker_id is None:
                raise FeisuError("scale-down proposal names no victim")
            return self.decommission(decision.worker_id)
        raise FeisuError(f"unknown autoscale action {decision.action!r}")
