"""Replicated job ledger: master state that survives failover (§III-C).

"The backup components get checkpoint and operations log from the
primary in realtime, so that they will reach the same running state as
the primary."  The ledger records every job's lifecycle through a
:class:`~repro.cluster.failover.PrimaryBackup` state machine; when the
master fails over, the promoted shadow already holds the full history,
and the replacement master resumes from it.  In-flight jobs at the
moment of failure are *not* transparently resumed — exactly like the
production system, the client sees an error and resubmits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.failover import PrimaryBackup
from repro.sim.events import Simulator


@dataclass(frozen=True)
class LedgerEntry:
    """One job's durable summary."""

    job_id: str
    user: str
    sql: str
    status: str
    submitted_at: float
    finished_at: Optional[float] = None


def _record_submit(state: Dict, entry_fields: tuple) -> None:
    job_id, user, sql, submitted_at = entry_fields
    state[job_id] = LedgerEntry(job_id, user, sql, "running", submitted_at)


def _record_finish(state: Dict, entry_fields: tuple) -> None:
    job_id, status, finished_at = entry_fields
    old = state.get(job_id)
    if old is None:  # finish for a job the replica never saw submitted
        state[job_id] = LedgerEntry(job_id, "?", "?", status, 0.0, finished_at)
        return
    state[job_id] = LedgerEntry(
        old.job_id, old.user, old.sql, status, old.submitted_at, finished_at
    )


class JobLedger:
    """Durable job history behind a primary/backup pair."""

    def __init__(self, sim: Simulator, checkpoint_interval_ops: int = 256):
        self.sim = sim
        # The checkpoint interval bounds the op log: every N ops the
        # shadow is drained, the state checkpointed and the log truncated
        # to its tail — a long-lived master's ledger no longer grows
        # linearly with every job ever run.
        self._pb: PrimaryBackup[Dict] = PrimaryBackup(
            sim, dict, name="job-ledger", checkpoint_interval_ops=checkpoint_interval_ops
        )

    # -- writes (called by the master) --------------------------------------

    def record_submitted(self, job_id: str, user: str, sql: str, at: float) -> None:
        self._pb.apply(_record_submit, (job_id, user, sql, at))

    def record_finished(self, job_id: str, status: str, at: float) -> None:
        self._pb.apply(_record_finish, (job_id, status, at))

    # -- reads ----------------------------------------------------------------

    def entries(self) -> List[LedgerEntry]:
        """Authoritative history (primary replica)."""
        return sorted(self._pb.state.values(), key=lambda e: e.submitted_at)

    def monitoring_entries(self) -> List[LedgerEntry]:
        """Possibly slightly stale history served by the shadow."""
        return sorted(self._pb.monitoring_state().values(), key=lambda e: e.submitted_at)

    def get(self, job_id: str) -> Optional[LedgerEntry]:
        return self._pb.state.get(job_id)

    # -- failover ----------------------------------------------------------------

    def fail_primary(self) -> None:
        """Primary dies; the shadow replays the log and takes over."""
        self._pb.fail_primary()
        self._pb.start_new_shadow()

    @property
    def failovers(self) -> int:
        return self._pb.failovers

    @property
    def log_length(self) -> int:
        """Retained op-log tail length (bounded by the checkpoint interval)."""
        return self._pb.log_length
