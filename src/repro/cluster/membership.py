"""Cluster manager: worker registry, heartbeats, liveness (§III-C).

The paper's cluster manager "manages runtime information of workers" and
"communicates with the job manager using periodic RPC"; Feisu avoids
ZooKeeper because of worker count and geographic spread.  Here workers
push heartbeats over the control traffic class; a worker missing
``MISSED_LIMIT`` consecutive heartbeats is marked dead, and the scheduler
stops placing work on it.  The component is deliberately standalone so it
can be "horizontally scaled" away from the master, as §VII recounts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cluster.messages import WorkerLoad
from repro.errors import ClusterStateError
from repro.sim.events import Simulator
from repro.sim.netmodel import NodeAddress

#: Heartbeat period in simulated seconds.
HEARTBEAT_PERIOD_S = 5.0
#: Heartbeats missed before a worker is declared dead.
MISSED_LIMIT = 3


@dataclass
class WorkerRecord:
    """What the cluster manager knows about one worker."""

    worker_id: str
    address: NodeAddress
    is_stem: bool
    last_heartbeat: float = 0.0
    load: WorkerLoad = field(default_factory=WorkerLoad)
    alive: bool = True
    #: Times this worker came back after being declared dead.
    readmitted: int = 0
    #: Graceful decommission in progress (S55): the worker keeps
    #: heartbeating and finishes running tasks, but the scheduler stops
    #: placing new work on it while its replicas are evacuated.
    draining: bool = False


class ClusterManager:
    """Liveness + load registry for every stem and leaf server."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._workers: Dict[str, WorkerRecord] = {}
        self.heartbeats_received = 0
        self.readmissions = 0
        self._readmit_listeners: List[Callable[[str], None]] = []

    def register(self, worker_id: str, address: NodeAddress, is_stem: bool = False) -> None:
        if worker_id in self._workers:
            raise ClusterStateError(f"worker {worker_id!r} already registered")
        self._workers[worker_id] = WorkerRecord(
            worker_id, address, is_stem, last_heartbeat=self.sim.now
        )

    def unregister(self, worker_id: str) -> None:
        """Remove a worker from the registry entirely (S55 decommission).

        Distinct from death: a dead worker stays in the table so a late
        heartbeat triggers explicit re-admission, while an unregistered
        worker is *gone* — any later heartbeat or lookup raises, and the
        same id may re-register from scratch (a rejoin)."""
        if worker_id not in self._workers:
            raise ClusterStateError(f"unknown worker {worker_id!r}")
        del self._workers[worker_id]

    # -- drain lifecycle (S55) ---------------------------------------------

    def start_drain(self, worker_id: str) -> None:
        """Mark a worker draining: alive, heartbeating, but no longer a
        placement target while its replicas are evacuated."""
        self._record(worker_id).draining = True

    def cancel_drain(self, worker_id: str) -> None:
        self._record(worker_id).draining = False

    def is_draining(self, worker_id: str) -> bool:
        return self._record(worker_id).draining

    def draining_workers(self) -> List[str]:
        return [r.worker_id for r in self._workers.values() if r.draining]

    def on_readmit(self, listener: Callable[[str], None]) -> None:
        """Subscribe to explicit re-admissions (scheduler notification)."""
        self._readmit_listeners.append(listener)

    def heartbeat(self, worker_id: str, load: WorkerLoad) -> None:
        record = self._record(worker_id)
        was_dead = not record.alive
        record.last_heartbeat = self.sim.now
        record.load = load
        record.alive = True
        self.heartbeats_received += 1
        if was_dead:
            # A late heartbeat from a worker sweep() already declared
            # dead used to silently resurrect it — the scheduler had
            # rescheduled its tasks and never learned it was back.
            # Re-admission is now an explicit, observable event.
            record.readmitted += 1
            self.readmissions += 1
            for listener in self._readmit_listeners:
                listener(worker_id)

    def sweep(self) -> List[str]:
        """Mark overdue workers dead; returns newly dead worker ids."""
        deadline = self.sim.now - HEARTBEAT_PERIOD_S * MISSED_LIMIT
        newly_dead = []
        for record in self._workers.values():
            if record.alive and record.last_heartbeat < deadline:
                record.alive = False
                newly_dead.append(record.worker_id)
        return newly_dead

    def _record(self, worker_id: str) -> WorkerRecord:
        try:
            return self._workers[worker_id]
        except KeyError:
            raise ClusterStateError(f"unknown worker {worker_id!r}") from None

    def is_alive(self, worker_id: str) -> bool:
        return self._record(worker_id).alive

    def load_of(self, worker_id: str) -> WorkerLoad:
        return self._record(worker_id).load

    def address_of(self, worker_id: str) -> NodeAddress:
        return self._record(worker_id).address

    def live_workers(self, stems: Optional[bool] = None) -> List[WorkerRecord]:
        out = []
        for record in self._workers.values():
            if not record.alive:
                continue
            if stems is not None and record.is_stem != stems:
                continue
            out.append(record)
        return out

    def worker_count(self) -> int:
        return len(self._workers)
