"""The cross-domain mechanism (§I): sharing schema and access rights.

"Feisu handles the geographical distribution via the cross-domain
mechanism to share the data schema and access rights."  Each datacenter
keeps a local directory replica so planning-time metadata lookups never
cross the WAN; the master's authoritative copy streams ordered updates
(table registrations, grant changes) to every replica over the control
traffic class on a short period.

Replicas are *eventually consistent*: a freshly published table is
visible in the master's datacenter immediately and elsewhere after one
sync round — the trade the paper's geo-distribution forces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.errors import FaultInjectedError
from repro.sim.events import Event, Simulator
from repro.sim.netmodel import NetworkTopology, NodeAddress, TrafficClass

#: How often the primary pushes pending updates to each dc replica.
DEFAULT_SYNC_PERIOD_S = 30.0
#: Wire size of one directory update record.
UPDATE_BYTES = 512


@dataclass(frozen=True)
class DirectoryUpdate:
    """One ordered change to the shared metadata."""

    version: int
    kind: str  # "table" | "grant" | "revoke"
    payload: Tuple


@dataclass
class _Replica:
    """One datacenter's directory copy."""

    address: NodeAddress
    version: int = 0
    tables: Dict[str, Dict[str, str]] = field(default_factory=dict)
    grants: set = field(default_factory=set)


class CrossDomainDirectory:
    """Authoritative metadata + per-datacenter replicas."""

    def __init__(
        self,
        sim: Simulator,
        net: NetworkTopology,
        datacenters: int,
        primary_address: NodeAddress = NodeAddress(0, 0, 0),
        sync_period_s: float = DEFAULT_SYNC_PERIOD_S,
    ):
        self.sim = sim
        self.net = net
        self.primary_address = primary_address
        self.sync_period_s = sync_period_s
        self._log: List[DirectoryUpdate] = []
        self._primary = _Replica(primary_address)
        self._replicas: Dict[int, _Replica] = {
            dc: _Replica(NodeAddress(dc, 0, 0)) for dc in range(datacenters)
        }
        self.sync_rounds = 0
        self._started = False

    # -- writes (authoritative) ---------------------------------------------

    def _append(self, kind: str, payload: Tuple) -> None:
        update = DirectoryUpdate(len(self._log) + 1, kind, payload)
        self._log.append(update)
        self._apply(self._primary, update)
        # The primary's own datacenter applies synchronously (local bus).
        home = self._replicas.get(self.primary_address.datacenter)
        if home is not None:
            self._catch_up(home)

    def publish_table(self, name: str, schema_dict: Dict[str, str]) -> None:
        self._append("table", (name, tuple(sorted(schema_dict.items()))))

    def publish_grant(self, user: str, table: str) -> None:
        self._append("grant", (user, table))

    def publish_revoke(self, user: str, table: str) -> None:
        self._append("revoke", (user, table))

    @staticmethod
    def _apply(replica: _Replica, update: DirectoryUpdate) -> None:
        if update.kind == "table":
            name, items = update.payload
            replica.tables[name] = dict(items)
        elif update.kind == "grant":
            replica.grants.add(update.payload)
        elif update.kind == "revoke":
            replica.grants.discard(update.payload)
        replica.version = update.version

    def _catch_up(self, replica: _Replica) -> int:
        """Apply every update the replica is missing; returns how many."""
        missing = self._log[replica.version :]
        for update in missing:
            self._apply(replica, update)
        return len(missing)

    # -- reads (replica-local) ------------------------------------------------

    def lookup_table(self, datacenter: int, name: str) -> Optional[Dict[str, str]]:
        """A datacenter's (possibly stale) view of one table's schema."""
        return self._replicas[datacenter].tables.get(name)

    def can_read(self, datacenter: int, user: str, table: str) -> bool:
        return (user, table) in self._replicas[datacenter].grants

    def replica_version(self, datacenter: int) -> int:
        return self._replicas[datacenter].version

    @property
    def version(self) -> int:
        return self._primary.version

    def lag(self, datacenter: int) -> int:
        """Updates a datacenter has not yet applied."""
        return self.version - self.replica_version(datacenter)

    # -- replication ----------------------------------------------------------

    def sync_once(self) -> Generator[Event, None, int]:
        """Push pending updates to every remote replica (one round)."""
        shipped = 0
        for dc, replica in self._replicas.items():
            missing = self.version - replica.version
            if missing <= 0:
                continue
            if replica.address != self.primary_address:
                yield self.net.transfer(
                    self.primary_address,
                    replica.address,
                    UPDATE_BYTES * missing,
                    TrafficClass.CONTROL,
                )
            shipped += self._catch_up(replica)
        self.sync_rounds += 1
        return shipped

    def start(self) -> None:
        """Run sync rounds forever on the simulation clock."""
        if self._started:
            return
        self._started = True
        self.sim.process(self._loop(), name="cross-domain-sync")

    def _loop(self) -> Generator[Event, None, None]:
        while True:
            yield self.sim.timeout(self.sync_period_s)
            try:
                yield self.sim.process(self.sync_once(), name="cross-domain-round")
            except FaultInjectedError:
                # A lost sync round must not kill replication forever: the
                # versioned log is idempotent, so the updates this round
                # failed to ship simply go out on the next period.
                continue

    def converged(self) -> bool:
        return all(r.version == self.version for r in self._replicas.values())
