"""Jobs and the job manager (§III-C).

The job manager "maintains the running information of user query jobs"
and — the detail this module centres on — "tries to reuse other running
job's task result if tasks are identical" before a new job enters the
candidate queue.  Task identity is structural: same block, same scan
predicates, same projected columns, same aggregation fragment.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.executor import QueryResult, TaskResult
from repro.obs.trace import Tracer
from repro.planner.physical import PhysicalPlan, ScanTask
from repro.sim.events import Event, Simulator

_job_counter = itertools.count()


class JobStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    TIMED_OUT = "timed_out"


@dataclass
class JobOptions:
    """User-visible execution knobs (§III-C fault-tolerance paragraph)."""

    #: Hard limit on total elapsed (simulated) seconds; None = unbounded.
    max_time_s: Optional[float] = None
    #: Return early once this fraction of tasks has completed (<1.0
    #: "avoid[s] long-tail influence"); also the floor below which a
    #: deadline expiry becomes a timeout error.
    min_processed_ratio: float = 1.0
    #: Launch speculative backup copies of straggling tasks.
    enable_backup: bool = True
    #: Results whose modeled size exceeds this are dumped to global
    #: storage and "only the location information is passed" (§V-C).
    spill_threshold_bytes: float = 1024**3
    #: Scan only this fraction of blocks, chosen deterministically —
    #: §II case 3's "periodically analyze sampled hot data to check the
    #: indicators".  The result's ``processed_ratio`` reports the actual
    #: fraction; aggregates are over the sample (indicators, not exact).
    sample_block_ratio: Optional[float] = None
    #: Collect a per-query span tree (``job.trace``).  Off by default:
    #: the disabled path allocates no spans at all.
    trace: bool = False


@dataclass
class JobStats:
    """Aggregated execution counters for one job."""

    tasks_total: int = 0
    tasks_completed: int = 0
    tasks_reused: int = 0
    tasks_failed: int = 0
    backups_launched: int = 0
    results_spilled: int = 0
    pruned_blocks: int = 0
    io_bytes_modeled: float = 0.0
    cpu_ops_modeled: float = 0.0
    index_full_covers: int = 0
    index_clause_hits: int = 0
    index_clause_misses: int = 0
    index_subsumption_hits: int = 0
    index_residual_clauses: int = 0
    index_residual_fraction_sum: float = 0.0
    response_time_s: float = 0.0
    #: Adaptive re-optimization counters (S53); all zero unless the
    #: master ran the job through the adaptive two-wave path.
    adaptive_waves: int = 0
    adaptive_replans: int = 0
    adaptive_splits: int = 0
    adaptive_partitions_recovered: int = 0
    adaptive_tasks_skipped: int = 0

    def absorb(self, result: TaskResult) -> None:
        report = result.report
        self.tasks_completed += 1
        self.io_bytes_modeled += report.modeled_io_bytes
        self.cpu_ops_modeled += report.modeled_cpu_ops
        self.index_full_covers += int(report.index_full_cover)
        self.index_clause_hits += report.index_clause_hits
        self.index_clause_misses += report.index_clause_misses
        self.index_subsumption_hits += report.index_subsumption_hits
        self.index_residual_clauses += report.index_residual_clauses
        self.index_residual_fraction_sum += report.index_residual_fraction


@dataclass
class TaskTiming:
    """One task attempt's execution timeline entry (EXPLAIN ANALYZE)."""

    task_id: str
    worker_id: str
    started_at: float
    finished_at: float
    io_bytes_modeled: float
    cpu_ops_modeled: float
    index_full_cover: bool
    backup: bool = False

    @property
    def duration_s(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class Job:
    """One admitted query's lifecycle record."""

    job_id: str
    user: str
    sql: str
    plan: PhysicalPlan
    options: JobOptions
    submitted_at: float
    status: JobStatus = JobStatus.PENDING
    #: When the scheduler actually emitted the job (queueing delay =
    #: started_at - submitted_at, §III-C's candidate queue).
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[QueryResult] = None
    error: Optional[BaseException] = None
    stats: JobStats = field(default_factory=JobStats)
    #: Per-task-attempt execution records, in completion order.
    task_timeline: List[TaskTiming] = field(default_factory=list)
    #: Span tree over the simulated clock (None unless ``options.trace``).
    trace: Optional[Tracer] = None
    #: Structural digest of the plan as admitted (the *original* plan —
    #: re-planning never rewrites it) and, when the adaptive path
    #: re-planned the remaining work, the digest of the revised task set.
    #: QueryHistory records both so history and EXPLAIN ANALYZE agree.
    plan_digest: str = ""
    replanned_plan_digest: Optional[str] = None

    @property
    def response_time_s(self) -> float:
        end = self.finished_at if self.finished_at is not None else self.submitted_at
        return end - self.submitted_at


def new_job(user: str, sql: str, plan: PhysicalPlan, options: JobOptions, now: float) -> Job:
    job = Job(
        job_id=f"job-{next(_job_counter)}",
        user=user,
        sql=sql,
        plan=plan,
        options=options,
        submitted_at=now,
    )
    job.stats.tasks_total = len(plan.tasks)
    job.stats.pruned_blocks = plan.pruned_blocks
    if options.trace:
        job.trace = Tracer(job.job_id)
        job.trace.begin("job", now, sql=sql, user=user, tasks=len(plan.tasks))
    return job


def task_signature(plan: PhysicalPlan, task: ScanTask) -> Tuple:
    """Structural identity of a task: equal signatures ⇒ equal results."""
    analyzed = plan.analyzed
    agg_sig = (
        tuple(str(k) for k in analyzed.group_keys),
        tuple((a.func, str(a.argument)) for a in analyzed.aggregates),
    )
    broadcast_sig = tuple(
        (bc.binding, bc.table_name, bc.columns, bc.kind.value, str(bc.condition))
        for bc in plan.broadcasts
    )
    return (
        task.block.path,
        tuple(sorted(str(c) for c in plan.scan_cnf.clauses)),
        task.columns,
        plan.is_aggregate,
        agg_sig,
        str(plan.post_filter),
        broadcast_sig,
        task.row_slice,
    )


class JobManager:
    """Job registry plus the identical-task reuse cache."""

    def __init__(self, sim: Simulator, reuse_completed_window_s: float = 0.0):
        self.sim = sim
        #: How long a *finished* task result stays reusable.  The paper
        #: reuses results of running jobs; a nonzero window extends that
        #: to recently finished ones (ablation knob).
        self.reuse_completed_window_s = reuse_completed_window_s
        self.jobs: Dict[str, Job] = {}
        self._in_flight: Dict[Tuple, Event] = {}
        self._completed: Dict[Tuple, Tuple[TaskResult, float]] = {}
        self.reuse_hits_running = 0
        self.reuse_hits_completed = 0

    def register(self, job: Job) -> None:
        self.jobs[job.job_id] = job

    # -- task reuse ------------------------------------------------------

    def lookup_task(self, sig: Tuple) -> Optional[Event]:
        """An event resolving to a TaskResult for an identical task, if
        one is running or recently finished."""
        ev = self._in_flight.get(sig)
        if ev is not None and not (ev.triggered and not ev.ok):
            self.reuse_hits_running += 1
            return ev
        hit = self._completed.get(sig)
        if hit is not None:
            result, at = hit
            if self.sim.now - at <= self.reuse_completed_window_s:
                self.reuse_hits_completed += 1
                done = self.sim.event(name="task-reuse")
                done.succeed(result)
                return done
            del self._completed[sig]
        return None

    def track_task(self, sig: Tuple, done: Event) -> None:
        """Publish an in-flight task for other jobs to piggyback on."""
        self._in_flight[sig] = done

        def on_done(ev: Event) -> None:
            if self._in_flight.get(sig) is done:
                del self._in_flight[sig]
            if ev.ok and self.reuse_completed_window_s > 0:
                self._completed[sig] = (ev.value, self.sim.now)

        done.add_callback(on_done)

    # -- reporting ---------------------------------------------------------

    def finished_jobs(self) -> List[Job]:
        return [
            j
            for j in self.jobs.values()
            if j.status in (JobStatus.SUCCEEDED, JobStatus.FAILED, JobStatus.TIMED_OUT)
        ]
