"""Job scheduler: locality-aware task placement (§III-B).

The placement policy is the paper's, in order:

1. a live leaf co-located with the data, picking the least-loaded
   replica holder;
2. otherwise any live leaf, minimizing estimated network transfer cost
   plus current load pressure.

The scheduler also owns speculative *backup tasks* (§III-C): a task
overdue by ``BACKUP_FACTOR`` × its cost estimate gets a second copy on a
different node; the first completion wins.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.membership import ClusterManager
from repro.cluster.node import LeafServer
from repro.errors import SchedulingError
from repro.planner.cnf import ConjunctiveForm
from repro.planner.cost import CostModel
from repro.planner.physical import ScanTask
from repro.sim.netmodel import NetworkTopology, NodeAddress
from repro.storage.router import StorageRouter

#: A task is overdue for a backup when it has run this multiple of its
#: cost estimate without reporting completion.
BACKUP_FACTOR = 3.0
#: Floor on the overdue threshold, in simulated seconds.
BACKUP_MIN_S = 2.0


@dataclass
class Placement:
    """One scheduling decision."""

    leaf: LeafServer
    data_local: bool
    estimate_s: float


class JobScheduler:
    """Places scan tasks on leaves and decides backup eligibility."""

    def __init__(
        self,
        cluster_manager: ClusterManager,
        net: NetworkTopology,
        router: StorageRouter,
        cost_model: Optional[CostModel] = None,
        locality_aware: bool = True,
    ):
        self.cluster_manager = cluster_manager
        self.net = net
        self.router = router
        # A `CostModel()` *default argument* would be evaluated once at
        # def time and shared by every scheduler — ablation tweaks to its
        # rates would leak across clusters.  Construct per instance.
        self.cost_model = cost_model if cost_model is not None else CostModel()
        #: Ablation switch: False falls back to round-robin placement.
        self.locality_aware = locality_aware
        #: Tiering hook (:class:`repro.storage.tiering.TieringDaemon`);
        #: when set, placement follows the promoted replica set.
        self.tiering = None
        #: Layout hook (:class:`repro.storage.layouts.LayoutDaemon`);
        #: when set, candidate replicas are scored by the layout each one
        #: serves (sorted → range pruning, subset → smaller read,
        #: attached index → covered probe) instead of load pressure alone.
        self.layouts = None
        #: Memoized per-(block, columns) modeled byte sizes (S54
        #: satellite): ``BlockRef.bytes_for`` rebuilds a dict from the
        #: column-size tuple on every call, and placement used to pay
        #: that for every candidate of every task.
        self._task_bytes_cache: Dict[tuple, float] = {}
        self.task_bytes_hits = 0
        self.task_bytes_misses = 0
        self._leaves: Dict[str, LeafServer] = {}
        #: Address → leaf map; ``leaf_at`` used to scan every leaf per
        #: call, O(n) on the result-return path of every task.
        self._by_address: Dict[NodeAddress, LeafServer] = {}
        self._rr = 0
        self.placements_local = 0
        self.placements_remote = 0
        # Interleaved submissions (gateway sessions, morsel workers in
        # tests) mutate the round-robin cursor and placement counters;
        # an RLock keeps increments atomic so concurrent placement
        # neither skips nor double-counts a slot.
        self._lock = threading.RLock()
        #: Workers explicitly re-admitted after being declared dead
        #: (wired to :meth:`ClusterManager.on_readmit`).
        self.readmitted_workers: List[str] = []

    def register_leaf(self, leaf: LeafServer) -> None:
        with self._lock:
            self._leaves[leaf.worker_id] = leaf
            self._by_address[leaf.address] = leaf

    def unregister_leaf(self, worker_id: str) -> None:
        """Forget a decommissioned leaf (S55): it stops being a placement
        candidate and ``leaf_at`` no longer resolves its address."""
        with self._lock:
            leaf = self._leaves.pop(worker_id, None)
            if leaf is not None:
                self._by_address.pop(leaf.address, None)

    def _is_draining(self, worker_id: str) -> bool:
        """True when the cluster manager marks the worker draining; a
        manager without drain states (test doubles) drains nothing."""
        is_draining = getattr(self.cluster_manager, "is_draining", None)
        return bool(is_draining(worker_id)) if is_draining is not None else False

    def note_readmission(self, worker_id: str) -> None:
        """Cluster-manager callback: a dead-marked worker heartbeat again
        and is placeable once more."""
        self.readmitted_workers.append(worker_id)

    def leaves(self) -> List[LeafServer]:
        return list(self._leaves.values())

    def leaf_at(self, address: NodeAddress) -> Optional[LeafServer]:
        return self._by_address.get(address)

    def _task_bytes(self, task: ScanTask) -> float:
        """Modeled bytes a scan of ``task.columns`` reads from the catalog
        block, memoized per (block, column-set)."""
        # Encoded size in the key guards against a table reloaded under
        # the same block ids with different data.
        key = (task.block.block_id, task.block.encoded_bytes, task.columns)
        cached = self._task_bytes_cache.get(key)
        if cached is not None:
            self.task_bytes_hits += 1
            return cached
        self.task_bytes_misses += 1
        nbytes = task.block.bytes_for(task.columns) * task.block.scale_factor
        self._task_bytes_cache[key] = nbytes
        return nbytes

    def _effective_path(self, task: ScanTask) -> str:
        """The path the leaf will actually read — promoted hot copy when
        the tiering daemon has published one, catalog path otherwise."""
        if self.tiering is not None:
            return self.tiering.effective_path(task.block.path)
        return task.block.path

    # -- placement -----------------------------------------------------------

    def place(
        self,
        task: ScanTask,
        cnf: ConjunctiveForm,
        exclude: Sequence[str] = (),
        prefer: Sequence[str] = (),
    ) -> Placement:
        """Choose a leaf for ``task`` per the §III-B policy.

        ``prefer`` narrows the candidate pool to those workers when any
        of them is alive — the adaptive re-optimizer uses it to colocate
        remainder tasks with leaves that already hold the broadcast
        frames, avoiding a second dimension-table ship.
        """
        alive = [
            leaf
            for leaf in self._leaves.values()
            if leaf.alive
            and self.cluster_manager.is_alive(leaf.worker_id)
            and leaf.worker_id not in exclude
        ]
        # Draining workers (S55) take no new tasks while their replicas
        # evacuate — unless they are the only live leaves left, in which
        # case liveness beats drain strictness.
        non_draining = [leaf for leaf in alive if not self._is_draining(leaf.worker_id)]
        if non_draining:
            alive = non_draining
        if prefer:
            preferred = [leaf for leaf in alive if leaf.worker_id in prefer]
            if preferred:
                alive = preferred
        if not alive:
            raise SchedulingError(f"no live leaf available for task {task.task_id}")
        if not self.locality_aware:
            with self._lock:
                cursor = self._rr
                self._rr += 1
            leaf = alive[cursor % len(alive)]
            local = self._is_local(leaf, task)
            self._count(local)
            return Placement(leaf, local, self._estimate(leaf, task, cnf, local))

        system, inner = self.router.resolve(self._effective_path(task))
        replica_addrs = set(system.locations(inner))
        local_candidates = [leaf for leaf in alive if leaf.address in replica_addrs]
        if local_candidates:
            if self.layouts is not None:
                # Trojan replicas (S54): holders are not interchangeable —
                # score each by the layout its copy serves, load-broken.
                leaf = min(
                    local_candidates,
                    key=lambda lf: (
                        self.layouts.scan_seconds(task, cnf, lf.address)
                        + 0.05 * lf.load_snapshot().pressure,
                        lf.worker_id,
                    ),
                )
            else:
                leaf = min(local_candidates, key=lambda lf: lf.load_snapshot().pressure)
            self._count(True)
            return Placement(leaf, True, self._estimate(leaf, task, cnf, True))

        # No replica holder available: minimize transfer + load.
        def remote_cost(leaf: LeafServer) -> float:
            if self.layouts is not None:
                xfer = min(
                    self.net.transfer_time_estimate(
                        addr,
                        leaf.address,
                        int(self.layouts.replica_bytes(task, addr)),
                    )
                    for addr in replica_addrs
                ) if replica_addrs else 0.0
            else:
                nbytes = self._task_bytes(task)
                xfer = min(
                    self.net.transfer_time_estimate(addr, leaf.address, int(nbytes))
                    for addr in replica_addrs
                ) if replica_addrs else 0.0
            return xfer + 0.05 * leaf.load_snapshot().pressure

        leaf = min(alive, key=remote_cost)
        self._count(False)
        return Placement(leaf, False, self._estimate(leaf, task, cnf, False))

    def _is_local(self, leaf: LeafServer, task: ScanTask) -> bool:
        system, inner = self.router.resolve(self._effective_path(task))
        return leaf.address in system.locations(inner)

    def _count(self, local: bool) -> None:
        with self._lock:
            if local:
                self.placements_local += 1
            else:
                self.placements_remote += 1

    def _estimate(
        self, leaf: LeafServer, task: ScanTask, cnf: ConjunctiveForm, local: bool
    ) -> float:
        if self.layouts is not None:
            # Layout-aware estimate: prices the serving replica's variant
            # and already includes the transfer leg for non-holders.
            return self.layouts.scan_seconds(task, cnf, leaf.address)
        system, _ = self.router.resolve(self._effective_path(task))
        est = self.cost_model.task_seconds(
            task,
            cnf,
            index_covered=False,
            bandwidth_factor=system.profile.bandwidth_factor,
            extra_latency_s=system.profile.first_byte_latency_s,
            nbytes=self._task_bytes(task),
        )
        if not local:
            system, inner = self.router.resolve(self._effective_path(task))
            replicas = system.locations(inner)
            if replicas:
                nbytes = self._task_bytes(task)
                est += min(
                    self.net.transfer_time_estimate(addr, leaf.address, int(nbytes))
                    for addr in replicas
                )
        return est

    # -- backup tasks ----------------------------------------------------------

    def backup_deadline(self, estimate_s: float) -> float:
        """Seconds after dispatch when a backup copy should launch."""
        return max(BACKUP_MIN_S, BACKUP_FACTOR * estimate_s)
