"""Horizontally sharded cluster management (§III-C, §VII).

"With a large number of workers in the cluster, the network connection
for worker heartbeat will reach the upper limit of a single machine.
Our design of separated cluster management components can easily solve
this issue by horizontal-scaling the cluster manager."  §VII recounts
exactly this evolution at the five- and eight-thousand-worker marks.

:class:`ShardedClusterManager` presents the single-manager interface
while hashing workers across N independent shards, each with its own
connection budget.  It is a drop-in replacement for
:class:`~repro.cluster.membership.ClusterManager`.
"""

from __future__ import annotations

import hashlib
from typing import Callable, List, Optional

from repro.cluster.membership import ClusterManager, WorkerRecord
from repro.cluster.messages import WorkerLoad
from repro.errors import ClusterStateError
from repro.sim.events import Simulator
from repro.sim.netmodel import NodeAddress

#: Heartbeat connections one manager machine sustains (scaled-down
#: stand-in for the production "upper limit of a single machine").
DEFAULT_SHARD_CAPACITY = 4096


class ShardedClusterManager:
    """N cluster-manager shards behind the ClusterManager interface."""

    def __init__(
        self,
        sim: Simulator,
        shards: int = 2,
        shard_capacity: int = DEFAULT_SHARD_CAPACITY,
    ):
        if shards < 1:
            raise ClusterStateError("need at least one cluster-manager shard")
        self.sim = sim
        self.shard_capacity = shard_capacity
        self._shards: List[ClusterManager] = [ClusterManager(sim) for _ in range(shards)]
        self._route: dict = {}
        self._readmit_listeners: List[Callable[[str], None]] = []

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def _hash_shard(self, worker_id: str) -> ClusterManager:
        digest = hashlib.blake2b(worker_id.encode(), digest_size=4).digest()
        return self._shards[int.from_bytes(digest, "little") % len(self._shards)]

    def _shard_for(self, worker_id: str) -> ClusterManager:
        # Only *registered* workers occupy the route cache.  Caching the
        # hash route on any lookup let `is_alive("typo")` pin a permanent
        # entry before the shard raised ClusterStateError, and a later
        # legitimate register of that id then skipped the
        # capacity-overflow rehoming below.
        shard = self._route.get(worker_id)
        if shard is None:
            shard = self._hash_shard(worker_id)
        return shard

    def add_shard(self) -> None:
        """Scale out.  Existing workers keep their shard (their heartbeat
        connection is already established); new registrations spread over
        the larger pool."""
        shard = ClusterManager(self.sim)
        for listener in self._readmit_listeners:
            shard.on_readmit(listener)
        self._shards.append(shard)
        # Future routing decisions hash over the new shard count; cached
        # routes pin existing workers in place.

    def on_readmit(self, listener: Callable[[str], None]) -> None:
        self._readmit_listeners.append(listener)
        for shard in self._shards:
            shard.on_readmit(listener)

    @property
    def readmissions(self) -> int:
        return sum(s.readmissions for s in self._shards)

    # -- ClusterManager interface ------------------------------------------

    def register(self, worker_id: str, address: NodeAddress, is_stem: bool = False) -> None:
        shard = self._shard_for(worker_id)
        if shard.worker_count() >= self.shard_capacity:
            spare = next(
                (s for s in self._shards if s.worker_count() < self.shard_capacity), None
            )
            if spare is None:
                raise ClusterStateError(
                    "every cluster-manager shard is at its heartbeat "
                    "connection limit; add_shard() first (§VII)"
                )
            shard = spare
        shard.register(worker_id, address, is_stem)
        # Pin the route only after the shard accepted the registration —
        # a duplicate-register error must not move an existing worker.
        self._route[worker_id] = shard

    def unregister(self, worker_id: str) -> None:
        self._shard_for(worker_id).unregister(worker_id)
        self._route.pop(worker_id, None)

    def heartbeat(self, worker_id: str, load: WorkerLoad) -> None:
        self._shard_for(worker_id).heartbeat(worker_id, load)

    def sweep(self) -> List[str]:
        dead: List[str] = []
        for shard in self._shards:
            dead.extend(shard.sweep())
        return dead

    def is_alive(self, worker_id: str) -> bool:
        return self._shard_for(worker_id).is_alive(worker_id)

    def start_drain(self, worker_id: str) -> None:
        self._shard_for(worker_id).start_drain(worker_id)

    def cancel_drain(self, worker_id: str) -> None:
        self._shard_for(worker_id).cancel_drain(worker_id)

    def is_draining(self, worker_id: str) -> bool:
        return self._shard_for(worker_id).is_draining(worker_id)

    def draining_workers(self) -> List[str]:
        out: List[str] = []
        for shard in self._shards:
            out.extend(shard.draining_workers())
        return out

    def load_of(self, worker_id: str) -> WorkerLoad:
        return self._shard_for(worker_id).load_of(worker_id)

    def address_of(self, worker_id: str) -> NodeAddress:
        return self._shard_for(worker_id).address_of(worker_id)

    def live_workers(self, stems: Optional[bool] = None) -> List[WorkerRecord]:
        out: List[WorkerRecord] = []
        for shard in self._shards:
            out.extend(shard.live_workers(stems))
        return out

    def worker_count(self) -> int:
        return sum(s.worker_count() for s in self._shards)

    @property
    def heartbeats_received(self) -> int:
        return sum(s.heartbeats_received for s in self._shards)

    def shard_sizes(self) -> List[int]:
        return [s.worker_count() for s in self._shards]
