"""Exception hierarchy shared by every Feisu subsystem.

All exceptions raised by this package derive from :class:`FeisuError`, so
callers can catch one base class at the public API boundary.  Subsystems
raise the most specific subclass that describes the failure; nothing in
this package raises bare ``Exception``.
"""

from __future__ import annotations


class FeisuError(Exception):
    """Base class for every error raised by the Feisu reproduction."""


class ParseError(FeisuError):
    """The SQL text could not be tokenized or parsed.

    Carries the offending position so clients (which perform syntax
    checking before submission, per the paper's client design) can point
    at the error.
    """

    def __init__(self, message: str, position: int = -1, text: str = ""):
        super().__init__(message)
        self.position = position
        self.text = text

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.position >= 0:
            return f"{base} (at offset {self.position})"
        return base


class AnalysisError(FeisuError):
    """The query parsed but failed semantic analysis (unknown table/column,
    type mismatch, aggregate misuse, ...)."""


class PlanError(FeisuError):
    """The planner could not produce a physical plan for the query."""


class ExecutionError(FeisuError):
    """A task failed while executing a (sub-)plan on a leaf server."""


class StorageError(FeisuError):
    """Base class for storage-substrate failures."""


class PathError(StorageError):
    """A path does not exist or its prefix maps to no registered plugin."""


class ReplicaUnavailableError(StorageError):
    """No live replica of a requested block could be located."""


class AccessDeniedError(FeisuError):
    """Authentication or authorization failed for the requesting user."""


class QuotaExceededError(AccessDeniedError):
    """The user's query or resource quota is exhausted (entry guard)."""


class SchedulingError(FeisuError):
    """The job scheduler could not place a task on any live worker."""


class ClusterStateError(FeisuError):
    """An operation was attempted against a worker or master in the wrong
    lifecycle state (e.g. dispatching to a decommissioned leaf)."""


class QueryTimeout(FeisuError):
    """The query exceeded its configured time budget.

    When the user configured a ``min_processed_ratio`` the engine returns
    partial results instead of raising; this exception is raised only when
    not even the minimum ratio completed in time.
    """

    def __init__(self, message: str, processed_ratio: float = 0.0):
        super().__init__(message)
        self.processed_ratio = processed_ratio


class QueryCancelled(FeisuError):
    """The user cancelled the job before it finished."""


class GatewayOverloadedError(FeisuError):
    """The gateway rejected a submission: the tenant's admission queue is
    at its configured depth (back-pressure instead of unbounded backlog)."""


class SessionClosedError(FeisuError):
    """A submission arrived on a gateway session that was closed or
    killed; open a new session to continue."""


class IndexError_(FeisuError):
    """SmartIndex bookkeeping failure (corrupt entry, schema mismatch)."""


class FaultInjectedError(FeisuError):
    """A message or operation was killed by the fault-injection layer.

    Raised (after the plan's RPC timeout) in place of a delivery that a
    :class:`repro.faults.FaultPlan` dropped or partitioned away, so
    recovery machinery sees the same sender-side failure a real RPC
    timeout would produce.
    """


class InvariantViolation(FeisuError):
    """A cluster-wide invariant was broken during a chaos scenario.

    Carries the full violation report; the chaos harness attaches the
    scenario seed so the failure is replayable.
    """
