"""The Feisu client-end (§III-C).

"The client-end is a versatile component with pluggable framework to
support command-line tool, website-based service, and third-party tools.
It has two major functionalities: query syntax checking and access right
verification."

:class:`FeisuClient` wraps a :class:`~repro.core.feisu.FeisuCluster` for
one user:

* :meth:`check_syntax` validates SQL *before* submission and returns a
  guided error message;
* submission verifies the user's table rights client-side first, so bad
  requests never reach the master;
* every query feeds the per-user :class:`QueryHistory`, and
  :meth:`install_preferences` turns frequent predicates into SmartIndex
  preference pins on every leaf (private indexes for this user).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.client.history import QueryHistory
from repro.cluster.jobs import Job, JobOptions
from repro.core.feisu import FeisuCluster
from repro.engine.executor import QueryResult
from repro.errors import AccessDeniedError, ParseError
from repro.sql.analyzer import analyze
from repro.sql.parser import parse


@dataclass
class SyntaxReport:
    """Outcome of client-side syntax checking."""

    ok: bool
    message: str = ""
    position: int = -1


class FeisuClient:
    """A per-user handle onto a Feisu deployment."""

    def __init__(self, cluster: FeisuCluster, user: str):
        self.cluster = cluster
        self.user = user
        self.history = QueryHistory()
        # Trojan-replica census (S54): the layout daemon mines the same
        # §IV-A frequent-predicate signal SmartIndex uses.
        if getattr(cluster, "layouts", None) is not None:
            cluster.layouts.attach_history(self.history)
        # Ensure the user exists (no-op if already created by the caller).
        if user not in cluster._credentials:  # noqa: SLF001 - facade-internal
            cluster.create_user(user)

    # -- client-side verification ------------------------------------------

    def check_syntax(self, sql: str) -> SyntaxReport:
        """Validate syntax only; never contacts the servers."""
        try:
            parse(sql)
        except ParseError as exc:
            hint = _hint_for(str(exc))
            message = f"{exc}{('; ' + hint) if hint else ''}"
            return SyntaxReport(ok=False, message=message, position=exc.position)
        return SyntaxReport(ok=True)

    def verify_access(self, sql: str) -> None:
        """Raise :class:`AccessDeniedError` if the user lacks rights to
        any referenced table (mirrors the production pre-flight)."""
        analyzed = analyze(parse(sql), self.cluster.catalog)
        self.cluster.acl.check_read(
            self.user, [t.name for t in analyzed.tables.values()]
        )

    # -- querying -------------------------------------------------------------

    def _guarded_preflight(self, sql: str):
        """The client-side checks every submission path must pass: syntax
        with guided errors, then the ACL read pre-flight.  Returns the
        analyzed query so callers don't parse twice."""
        report = self.check_syntax(sql)
        if not report.ok:
            raise ParseError(report.message, position=report.position, text=sql)
        analyzed = analyze(parse(sql), self.cluster.catalog)
        self.cluster.acl.check_read(self.user, [t.name for t in analyzed.tables.values()])
        return analyzed

    def query(self, sql: str, options: Optional[JobOptions] = None) -> QueryResult:
        """Syntax-check, verify rights, submit, record history.

        Routes through :meth:`query_job` so the recorded history entry
        carries the executed job's plan digests (pre and, under the
        adaptive re-optimizer, post re-plan).
        """
        job = self.query_job(sql, options=options)
        if job.error is not None:
            raise job.error
        assert job.result is not None
        job.result.stats["response_time_s"] = job.stats.response_time_s
        return job.result

    def query_job(self, sql: str, options: Optional[JobOptions] = None) -> Job:
        analyzed = self._guarded_preflight(sql)
        job = self.cluster.query_job(sql, user=self.user, options=options)
        # History keeps the ORIGINAL plan fingerprint even when the
        # adaptive path re-planned mid-query; the post-re-plan digest is
        # a separate field so it can be cross-checked against EXPLAIN
        # ANALYZE's "plan digest: X -> Y" line.
        digest = getattr(job, "plan_digest", "")
        if not digest and job.plan is not None:
            from repro.planner.adaptive import plan_fingerprint

            digest = plan_fingerprint(job.plan)
        self.history.record(
            self.cluster.sim.now,
            self.user,
            sql,
            analyzed,
            plan_digest=digest,
            post_plan_digest=getattr(job, "replanned_plan_digest", None),
        )
        return job

    def explain(self, sql: str) -> str:
        """Show the master's physical plan without executing the query."""
        self._guarded_preflight(sql)
        return self.cluster.explain(sql)

    def explain_analyze(self, sql: str, options: Optional[JobOptions] = None) -> str:
        """Execute the query with tracing on and render the plan annotated
        with what actually happened: per-operator simulated times, rows,
        bytes and index hits next to the cost estimates, plus per-task
        timings, backups and stragglers.

        The production system exposed "monitoring running information"
        (§III-C); this is its query-scoped view.
        """
        import dataclasses

        from repro.planner.explain import explain_analyze as render

        options = dataclasses.replace(options or JobOptions(), trace=True)
        job = self.query_job(sql, options=options)
        return render(job.plan, job, leaf_config=self.cluster.config.leaf)

    # -- SmartIndex personalization ----------------------------------------------

    def install_preferences(self, top: int = 5, since: Optional[float] = None) -> List[str]:
        """Pin the user's most frequent predicates in every leaf's index
        cache (§IV-C-2 user preference interface).  Returns pinned keys."""
        frequent = self.history.frequent_predicates(self.user, since=since, top=top)
        keys = [key for key, _count in frequent]
        for leaf in self.cluster.leaves:
            if leaf.index_manager is not None:
                for key in keys:
                    leaf.index_manager.prefer_predicate(key)
        return keys

    # -- presentation (the "command-line tool" plug-in) -----------------------------

    @staticmethod
    def format_table(result: QueryResult, max_rows: int = 20) -> str:
        """Render a result as an aligned text table."""
        rows = result.rows()[:max_rows]
        headers = list(result.columns)
        cells = [[_fmt(v) for v in row] for row in rows]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(headers)
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in cells:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        if result.num_rows > max_rows:
            lines.append(f"... ({result.num_rows - max_rows} more rows)")
        return "\n".join(lines)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


_HINTS: Sequence[Tuple[str, str]] = (
    ("expected FROM", "every query needs a FROM clause: SELECT ... FROM table"),
    ("expected expression", "check for a trailing comma or missing operand"),
    ("unterminated string", "string literals use single quotes: 'value'"),
    ("unknown function", "supported: COUNT SUM AVG MIN MAX LENGTH LOWER UPPER ABS"),
)


def _hint_for(message: str) -> str:
    for needle, hint in _HINTS:
        if needle in message:
            return hint
    return ""
