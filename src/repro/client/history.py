"""Per-user query history (§III-C client).

"The client-end also collects user query histories to personalize data
indexing and caching.  Differently from the query collection in master
component, collection on the client side is used for SmartIndex to build
private index for specific users or user groups."

:class:`QueryHistory` records each submitted query's structural features
(columns touched, canonical predicate keys) and surfaces the frequent
ones so the client can install SmartIndex preferences.
"""

from __future__ import annotations

import functools
import threading
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.planner.cnf import to_cnf
from repro.sql.analyzer import AnalyzedQuery
from repro.sql.ast import Column, walk


def _locked(method):
    """Serialize a public entry point on the instance's ``_lock``.

    Gateway sessions record history from concurrent drivers (and the
    fused pipeline's morsel workers are real OS threads); an RLock keeps
    the log and its derived counters consistent — the same pattern as
    ``SmartIndexManager``."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


@dataclass(frozen=True)
class HistoryEntry:
    """One recorded query."""

    at: float
    user: str
    sql: str
    tables: Tuple[str, ...]
    columns: Tuple[str, ...]
    predicate_keys: Tuple[str, ...]
    #: Fingerprint of the plan the master *initially* produced.  An
    #: adaptive re-plan must never rewrite this — history answers "what
    #: did the optimizer first decide", and the re-planned digest is
    #: recorded separately so EXPLAIN ANALYZE and history agree.
    plan_digest: str = ""
    #: Fingerprint after a mid-query re-plan, ``None`` when the plan ran
    #: unchanged (frozen path, or adaptive run with no trigger).
    post_plan_digest: Optional[str] = None


class QueryHistory:
    """Append-only log of query features with frequency queries."""

    def __init__(self, capacity: int = 100_000):
        self.capacity = capacity
        # deque(maxlen=...) drops the oldest entry in O(1) per insert;
        # the previous list rebuild was O(capacity) per query once full —
        # quadratic over a long session.
        self._entries: Deque[HistoryEntry] = deque(maxlen=capacity)
        self._lock = threading.RLock()

    def record(
        self,
        at: float,
        user: str,
        sql: str,
        analyzed: AnalyzedQuery,
        plan_digest: str = "",
        post_plan_digest: Optional[str] = None,
    ) -> HistoryEntry:
        columns = set()
        for exprs in ([analyzed.query.where] if analyzed.query.where else []):
            for node in walk(exprs):
                if isinstance(node, Column):
                    columns.add(node.name)
        for expr in analyzed.output_exprs:
            for node in walk(expr):
                if isinstance(node, Column):
                    columns.add(node.name)
        keys = tuple(a.key for a in to_cnf(analyzed.query.where).atoms)
        entry = HistoryEntry(
            at=at,
            user=user,
            sql=sql,
            tables=tuple(sorted(t.name for t in analyzed.tables.values())),
            columns=tuple(sorted(columns)),
            predicate_keys=keys,
            plan_digest=plan_digest,
            post_plan_digest=post_plan_digest,
        )
        self._append(entry)
        return entry

    @_locked
    def _append(self, entry: HistoryEntry) -> None:
        self._entries.append(entry)

    @_locked
    def entries(self, user: Optional[str] = None, since: Optional[float] = None) -> List[HistoryEntry]:
        out: List[HistoryEntry] = list(self._entries)
        if user is not None:
            out = [e for e in out if e.user == user]
        if since is not None:
            out = [e for e in out if e.at >= since]
        return out

    def frequent_predicates(
        self, user: Optional[str] = None, since: Optional[float] = None, top: int = 10
    ) -> List[Tuple[str, int]]:
        """Most repeated canonical predicate keys — the candidates for
        per-user SmartIndex preferences."""
        counter: Counter = Counter()
        for entry in self.entries(user, since):
            counter.update(set(entry.predicate_keys))
        return counter.most_common(top)

    def frequent_columns(
        self, user: Optional[str] = None, since: Optional[float] = None, top: int = 10
    ) -> List[Tuple[str, int]]:
        counter: Counter = Counter()
        for entry in self.entries(user, since):
            counter.update(set(entry.columns))
        return counter.most_common(top)

    @_locked
    def __len__(self) -> int:
        return len(self._entries)
