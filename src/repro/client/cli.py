"""Command-line front-end — one of the §III-C pluggable client tools.

Runs SQL statements from a script file (or stdin) against a demo
deployment loaded with the Table I datasets, printing each result as an
aligned table with its simulated response time::

    python -m repro.client.cli --sql "SELECT COUNT(*) FROM T1"
    python -m repro.client.cli queries.sql --t1-rows 8000
    echo "EXPLAIN SELECT url FROM T1 WHERE click_count > 3" | python -m repro.client.cli -

Statements are ``;``-separated; a leading ``EXPLAIN`` renders the plan
instead of executing, and ``EXPLAIN ANALYZE`` executes with tracing on
and renders the plan annotated with actual simulated times/rows/bytes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import FeisuCluster, FeisuConfig
from repro.client.client import FeisuClient
from repro.errors import FeisuError
from repro.sql.statements import classify_statement
from repro.workload.datasets import DatasetSpec, load_paper_datasets


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="feisu-cli",
        description="Run SQL against a simulated Feisu deployment "
        "preloaded with the paper's (scaled) T1/T2/T3 datasets.",
    )
    parser.add_argument(
        "script",
        nargs="?",
        help="file of ';'-separated SQL statements, or '-' for stdin",
    )
    parser.add_argument("--sql", action="append", default=[], help="inline statement (repeatable)")
    parser.add_argument("--t1-rows", type=int, default=8_000, help="scaled T1 row count")
    parser.add_argument("--t2-rows", type=int, default=12_000, help="scaled T2 row count")
    parser.add_argument("--t3-rows", type=int, default=4_000, help="scaled T3 row count")
    parser.add_argument("--fields", type=int, default=16, help="T1/T2 field count")
    parser.add_argument("--nodes", type=int, default=8, help="leaf nodes per rack (2 racks)")
    parser.add_argument("--user", default="cli", help="user to run as (created as admin)")
    parser.add_argument("--max-rows", type=int, default=20, help="rows to print per result")
    return parser


def _statements(args: argparse.Namespace) -> List[str]:
    statements = list(args.sql)
    if args.script:
        text = sys.stdin.read() if args.script == "-" else open(args.script).read()
        statements.extend(s.strip() for s in text.split(";") if s.strip())
    return statements


def _build_cluster(args: argparse.Namespace) -> FeisuCluster:
    cluster = FeisuCluster(
        FeisuConfig(datacenters=1, racks_per_datacenter=2, nodes_per_rack=args.nodes)
    )
    # Scale ~1500 production rows per materialized row: interactive
    # response times on a handful of simulated nodes, like one §VI-A
    # slice of the production cluster.
    specs = [
        DatasetSpec("T1", args.t1_rows, args.fields, "storage-a", args.t1_rows * 1500, seed=101),
        DatasetSpec("T2", args.t2_rows, args.fields, "storage-b", args.t2_rows * 1500, seed=202),
        DatasetSpec("T3", args.t3_rows, max(7, args.fields // 2), "storage-a", args.t3_rows * 1500, seed=303),
    ]
    load_paper_datasets(cluster, specs, block_rows=2048)
    cluster.create_user(args.user, admin=True)
    return cluster


def main(argv: Optional[List[str]] = None, stdout=None) -> int:
    out = stdout or sys.stdout
    args = build_parser().parse_args(argv)
    statements = _statements(args)
    if not statements:
        print("no SQL given; use --sql or a script file", file=out)
        return 2
    cluster = _build_cluster(args)
    client = FeisuClient(cluster, args.user)
    status = 0
    for sql in statements:
        print(f"feisu> {sql}", file=out)
        try:
            mode, body = classify_statement(sql)
            if mode == "explain_analyze":
                print(client.explain_analyze(body), file=out)
            elif mode == "explain":
                print(client.explain(body), file=out)
            else:
                result = client.query(sql)
                print(client.format_table(result, max_rows=args.max_rows), file=out)
                print(
                    f"({result.num_rows} rows, "
                    f"{result.stats['response_time_s'] * 1000:.1f} ms simulated)",
                    file=out,
                )
        except FeisuError as exc:
            print(f"error: {exc}", file=out)
            status = 1
        print(file=out)
    return status


if __name__ == "__main__":  # pragma: no cover - direct invocation
    raise SystemExit(main())
