"""Client-end: syntax checking, access verification, query history."""

from repro.client.client import FeisuClient, SyntaxReport
from repro.client.history import HistoryEntry, QueryHistory

__all__ = ["FeisuClient", "HistoryEntry", "QueryHistory", "SyntaxReport"]
