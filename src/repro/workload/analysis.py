"""Trace analysis for §IV-A and Fig 8.

Feisu's optimizations were motivated by statistics computed over a
two-month (and, for keyword frequency, three-month) user query log:

* Fig 4 — number of *identical* columns accessed by multiple queries
  within a time span, for growing spans;
* Fig 5 — ratio of queries sharing at least one exact predicate (after
  conversion to conjunctive form) with another query in the span;
* Fig 8 — frequency of SQL keywords, showing scans/aggregations at
  ≥ 99 % of the workload.

These functions compute the same statistics over generated traces.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.errors import ParseError
from repro.planner.cnf import to_cnf
from repro.sql.ast import Column, walk
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import parse
from repro.workload.generator import TimedQuery


def _query_columns(sql: str) -> Set[str]:
    query = parse(sql)
    out: Set[str] = set()
    exprs = [item.expr for item in query.select_items]
    if query.where is not None:
        exprs.append(query.where)
    exprs.extend(query.group_by)
    for expr in exprs:
        for node in walk(expr):
            if isinstance(node, Column):
                out.add(node.name)
    return out


def _query_predicates(sql: str) -> Set[str]:
    """Canonical predicate keys after CNF conversion (the paper converts
    predicates 'to the conjunctive form' before comparing)."""
    query = parse(sql)
    return {a.key for a in to_cnf(query.where).atoms}


def _windows(log: Sequence[TimedQuery], span_s: float) -> List[List[TimedQuery]]:
    if not log:
        return []
    end = max(q.at_s for q in log)
    out = []
    start = 0.0
    while start <= end:
        window = [q for q in log if start <= q.at_s < start + span_s]
        if len(window) >= 2:
            out.append(window)
        start += span_s
    return out


def repeated_columns_by_span(
    log: Sequence[TimedQuery], spans_s: Iterable[float]
) -> Dict[float, float]:
    """Fig 4: average count of columns accessed by ≥ 2 queries per window."""
    cached = [(q, _query_columns(q.sql)) for q in log]
    result = {}
    for span in spans_s:
        counts = []
        for window in _windows(log, span):
            counter: Counter = Counter()
            for q in window:
                cols = next(c for qq, c in cached if qq is q)
                counter.update(cols)
            counts.append(sum(1 for _c, n in counter.items() if n >= 2))
        result[span] = sum(counts) / len(counts) if counts else 0.0
    return result


def same_predicate_ratio_by_span(
    log: Sequence[TimedQuery], spans_s: Iterable[float]
) -> Dict[float, float]:
    """Fig 5: fraction of queries sharing ≥ 1 exact predicate in-window."""
    preds = {id(q): _query_predicates(q.sql) for q in log}
    result = {}
    for span in spans_s:
        shared = 0
        total = 0
        for window in _windows(log, span):
            counter: Counter = Counter()
            for q in window:
                counter.update(preds[id(q)])
            for q in window:
                total += 1
                if any(counter[k] >= 2 for k in preds[id(q)]):
                    shared += 1
        result[span] = shared / total if total else 0.0
    return result


#: Keywords counted for the Fig 8 histogram.
KEYWORDS_OF_INTEREST = (
    "SELECT", "FROM", "WHERE", "AND", "OR", "CONTAINS",
    "GROUP", "ORDER", "LIMIT", "JOIN", "HAVING",
)
AGGREGATE_KEYWORDS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


def keyword_frequency(sqls: Iterable[str]) -> Dict[str, int]:
    """Fig 8: keyword occurrence counts over a query corpus."""
    counter: Counter = Counter()
    for sql in sqls:
        try:
            tokens = tokenize(sql)
        except ParseError:
            continue
        for token in tokens:
            if token.type is TokenType.KEYWORD:
                counter[token.text] += 1
            elif token.type is TokenType.IDENTIFIER and token.text.upper() in AGGREGATE_KEYWORDS:
                counter[token.text.upper()] += 1
    return dict(counter)


def scan_query_share(sqls: Sequence[str]) -> float:
    """Fraction of queries that are scans/aggregations (no JOIN) — the
    ≥ 99 % observation motivating the scan-centric evaluation (§VI-A)."""
    if not sqls:
        return 0.0
    scans = 0
    for sql in sqls:
        try:
            query = parse(sql)
        except ParseError:
            continue
        if not query.joins:
            scans += 1
    return scans / len(sqls)
