"""The per-node conversion daemon (§III-B).

"To support heterogeneous storage systems, each storage node in a
specific storage system is deployed a light-weight process, which
monitors the storage for newly generated data (e.g., log data) and
converts the data into Feisu in columnar format when new data arrive."

Online services append *raw* newline-delimited JSON files under
``/raw/<node>/...`` on their local filesystem; each node's
:class:`ConversionDaemon` wakes periodically, converts fresh raw files
into columnar blocks (charging the node's CPU — it's a co-tenant of the
business workload, so the work is visible in the device model), appends
them to the logical log table, and removes the consumed raw files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.columnar.block import Block
from repro.columnar.json_flatten import flatten_records
from repro.columnar.schema import Schema
from repro.columnar.table import Table
from repro.sim.events import Event, Simulator
from repro.sim.netmodel import NodeAddress
from repro.storage.loader import make_block_ref

#: Abstract CPU ops to flatten+encode one raw record.
OPS_PER_RECORD = 300.0
#: Default scan period, simulated seconds.
DEFAULT_PERIOD_S = 30.0


def write_raw_records(cluster, node: NodeAddress, name: str, records: List[dict]) -> str:
    """What an online service does: append a raw json-lines file."""
    payload = "\n".join(json.dumps(r) for r in records).encode("utf-8")
    inner = f"/raw/{node}/{name}"
    cluster.local_fs.write(inner, payload, node=node)
    return inner


@dataclass
class ConversionStats:
    files_converted: int = 0
    records_converted: int = 0
    blocks_produced: int = 0


class ConversionDaemon:
    """One node's light-weight raw→columnar conversion process."""

    def __init__(
        self,
        cluster,
        node: NodeAddress,
        table_name: str = "service_logs",
        period_s: float = DEFAULT_PERIOD_S,
        scale_factor: float = 1.0,
    ):
        self.cluster = cluster
        self.node = node
        self.table_name = table_name
        self.period_s = period_s
        self.scale_factor = scale_factor
        self.stats = ConversionStats()
        self._block_seq = 0
        self._running = False

    # -- table management (shared across daemons) ---------------------------

    def _table(self, schema: Schema) -> Table:
        catalog = self.cluster.catalog
        if self.table_name in catalog:
            return catalog.get(self.table_name)
        table = Table(self.table_name, schema, description="daemon-converted logs")
        catalog.register(table)
        return table

    # -- one scan ---------------------------------------------------------------

    def convert_pending(self) -> Generator[Event, None, int]:
        """Process generator: convert every raw file this node owns."""
        fs = self.cluster.local_fs
        prefix = f"/raw/{self.node}/"
        converted = 0
        for path in fs.list_paths(prefix):
            payload = fs.read(path)
            records = [json.loads(line) for line in payload.decode("utf-8").splitlines() if line]
            if not records:
                fs.delete(path)
                continue
            schema, columns = flatten_records(records)
            table = self._table(schema)
            if table.schema.to_dict() != schema.to_dict():
                # align onto the established schema, defaulting gaps
                aligned = {}
                import numpy as np

                for f in table.schema:
                    if f.name in columns:
                        aligned[f.name] = columns[f.name]
                    elif f.dtype.numpy_dtype == object:
                        aligned[f.name] = np.array([""] * len(records), dtype=object)
                    else:
                        aligned[f.name] = np.zeros(len(records), dtype=f.dtype.numpy_dtype)
                columns = aligned
            block_id = f"{self.table_name}.{self.node}.b{self._block_seq}"
            self._block_seq += 1
            block = Block.from_arrays(block_id, table.schema, columns, self.scale_factor)
            blob = block.to_bytes()
            inner = f"/logs/{self.node}/{block_id}"
            fs.write(inner, blob, node=self.node)
            table.add_block(
                make_block_ref(block, self.cluster.router.full_path(fs, inner), blob)
            )
            fs.delete(path)
            # Conversion is real work on a co-tenant node: charge the CPU.
            leaf = self.cluster.leaf_at(self.node)
            yield leaf.cpu.compute(OPS_PER_RECORD * len(records))
            self.stats.files_converted += 1
            self.stats.records_converted += len(records)
            self.stats.blocks_produced += 1
            converted += 1
        return converted

    # -- background loop -----------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.cluster.sim.process(self._loop(), name=f"convert-{self.node}")

    def _loop(self) -> Generator[Event, None, None]:
        while True:
            yield self.cluster.sim.timeout(self.period_s)
            yield self.cluster.sim.process(self.convert_pending(), name="convert-scan")


def start_conversion_daemons(
    cluster, table_name: str = "service_logs", period_s: float = DEFAULT_PERIOD_S
) -> List[ConversionDaemon]:
    """One daemon per node, all feeding one logical table."""
    daemons = []
    for node in cluster.nodes:
        daemon = ConversionDaemon(cluster, node, table_name, period_s)
        daemon.start()
        daemons.append(daemon)
    return daemons
