"""Workload synthesis and trace analysis (§IV-A, §VI-A)."""

from repro.workload.analysis import (
    keyword_frequency,
    repeated_columns_by_span,
    same_predicate_ratio_by_span,
    scan_query_share,
)
from repro.workload.datasets import (
    DatasetSpec,
    default_specs,
    load_paper_datasets,
    log_schema,
    synthesize,
    webpage_schema,
)
from repro.workload.generator import (
    TimedQuery,
    WorkloadConfig,
    WorkloadGenerator,
    scan_query_stream,
    skewed_join_dataset,
    skewed_join_queries,
)
from repro.workload.conversion import ConversionDaemon, start_conversion_daemons, write_raw_records
from repro.workload.loggen import LogIngestor, generate_log_records
from repro.workload.replay import ReplayOutcome, ReplayReport, TraceReplayer

__all__ = [
    "ConversionDaemon",
    "DatasetSpec",
    "LogIngestor",
    "TimedQuery",
    "WorkloadConfig",
    "WorkloadGenerator",
    "default_specs",
    "generate_log_records",
    "keyword_frequency",
    "ReplayOutcome",
    "ReplayReport",
    "TraceReplayer",
    "load_paper_datasets",
    "log_schema",
    "repeated_columns_by_span",
    "same_predicate_ratio_by_span",
    "scan_query_share",
    "scan_query_stream",
    "skewed_join_dataset",
    "skewed_join_queries",
    "start_conversion_daemons",
    "write_raw_records",
    "synthesize",
    "webpage_schema",
]
