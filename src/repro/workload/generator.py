"""Query-workload generator with tunable locality and similarity (§IV-A).

The paper's two-month trace analysis found that, within short windows,
(1) a small set of columns is repeatedly accessed (*data locality*) and
(2) many queries share exact predicates (*query similarity*), because
"human users usually explore the data in a trial-and-error approach ...
first issue an aggregation query without query predicates and then add
predicates one by one based on the query results".

:class:`WorkloadGenerator` reproduces that generating process directly:
users run drill-down *sessions*; a session fixes a small column set and a
predicate pool, issues an initial aggregate, then refines it predicate by
predicate, re-using pool predicates with high probability.  Knobs expose
how strong both effects are, so the Fig 4/5 benches can sweep them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.columnar.schema import DataType, Schema

#: Comparison operators eligible for numeric predicate synthesis.
_NUM_OPS = (">", ">=", "<", "<=", "=")


@dataclass(frozen=True)
class TimedQuery:
    """One generated query with its submission time and author."""

    at_s: float
    user: str
    sql: str


@dataclass(frozen=True)
class SessionTrace:
    """One gateway session: who opens it, when, and its query stream.

    ``queries`` carry *absolute* submission times (simulated seconds), all
    at or after ``opens_at_s``; the driver replays them against an open
    :class:`~repro.gateway.session.GatewaySession`.
    """

    tenant: str
    user: str
    opens_at_s: float
    queries: Tuple[TimedQuery, ...]


@dataclass
class MultiTenantConfig:
    """Knobs for the concurrent multi-tenant session workload (S52).

    Tenant popularity is Zipf-distributed: session ``i`` belongs to
    tenant rank ``r`` with probability ∝ ``1 / (r+1) ** zipf_exponent``,
    reproducing the production skew where a couple of business units
    dominate the gateway while a long tail trickles.
    """

    num_tenants: int = 8
    num_sessions: int = 1000
    #: Zipf popularity exponent across tenant ranks (0 = uniform).
    zipf_exponent: float = 1.1
    #: Mean queries per session (Gaussian around this, min 1).
    queries_per_session: float = 2.0
    #: Mean think time between one session's consecutive queries.
    think_time_s: float = 2.0
    #: Sessions open uniformly over this window — thousands of sessions
    #: arriving within a minute is what saturates admission control.
    open_window_s: float = 60.0
    columns_per_session: int = 3
    aggregate_fraction: float = 0.7
    seed: int = 42


@dataclass
class WorkloadConfig:
    """Knobs controlling locality/similarity strength."""

    num_users: int = 12
    #: Mean queries per drill-down session.
    session_length: int = 6
    #: Columns a session works with (data locality strength: smaller =
    #: stronger locality).
    columns_per_session: int = 3
    #: Size of the per-user predicate pool sessions draw from.
    predicate_pool_size: int = 8
    #: Probability a new predicate is drawn from the pool rather than
    #: freshly randomized (query similarity strength).
    reuse_probability: float = 0.8
    #: Mean seconds between consecutive queries of one user.
    think_time_s: float = 300.0
    #: Fraction of sessions that are pure scans (vs aggregations) —
    #: Fig 8 shows scans+aggregations ≥ 99 % of production queries.
    aggregate_fraction: float = 0.7
    seed: int = 42


class WorkloadGenerator:
    """Generates timed SQL streams over one table's schema."""

    def __init__(
        self,
        table: str,
        schema: Schema,
        config: Optional[WorkloadConfig] = None,
        value_ranges: Optional[Dict[str, Tuple[float, float]]] = None,
        contains_values: Optional[Dict[str, List[str]]] = None,
    ):
        self.table = table
        self.schema = schema
        self.config = config or WorkloadConfig()
        self._rng = random.Random(self.config.seed)
        #: Numeric columns eligible for comparison predicates.
        self._numeric = [f.name for f in schema if f.dtype.is_numeric]
        self._strings = [f.name for f in schema if f.dtype is DataType.STRING]
        self._ranges = value_ranges or {}
        self._contains = contains_values or {}
        self._pools: Dict[str, List[str]] = {}

    # -- predicate synthesis --------------------------------------------------

    def _random_predicate(self, columns: Sequence[str]) -> str:
        rng = self._rng
        candidates = [c for c in columns if c in self._numeric or c in self._contains]
        column = rng.choice(candidates if candidates else list(columns))
        if column in self._contains and (column not in self._numeric or rng.random() < 0.3):
            needle = rng.choice(self._contains[column])
            return f"{column} CONTAINS '{needle}'"
        lo, hi = self._ranges.get(column, (0, 100))
        value = rng.randint(int(lo), max(int(lo), int(hi)))
        op = rng.choice(_NUM_OPS)
        return f"{column} {op} {value}"

    def _pool_for(self, user: str, columns: Sequence[str]) -> List[str]:
        pool = self._pools.get(user)
        if pool is None:
            pool = [
                self._random_predicate(columns)
                for _ in range(self.config.predicate_pool_size)
            ]
            self._pools[user] = pool
        return pool

    def _next_predicate(self, user: str, columns: Sequence[str]) -> str:
        rng = self._rng
        pool = self._pool_for(user, columns)
        if rng.random() < self.config.reuse_probability and pool:
            return rng.choice(pool)
        pred = self._random_predicate(columns)
        # Fresh predicates enter the pool, displacing the oldest: the
        # "hot set" drifts slowly, as real exploration does.
        pool.pop(0)
        pool.append(pred)
        return pred

    # -- query synthesis ----------------------------------------------------------

    def _session_columns(self, user_columns: Sequence[str]) -> List[str]:
        """Pick a session's working set, biased toward hot columns.

        Weighted sampling without replacement with geometrically decaying
        weights: the head of ``user_columns`` is hot (repeats across
        sessions quickly), the tail is cold (repeats only over long
        spans) — which is what gives Fig 4 its growth with span.
        """
        k = min(self.config.columns_per_session, len(user_columns))
        pool = list(user_columns)
        chosen: List[str] = []
        while len(chosen) < k:
            weights = [0.6**i for i in range(len(pool))]
            pick = self._rng.choices(range(len(pool)), weights=weights, k=1)[0]
            chosen.append(pool.pop(pick))
        return chosen

    def _select_clause(self, columns: Sequence[str], aggregate: bool) -> str:
        rng = self._rng
        if not aggregate:
            return ", ".join(columns[: max(1, len(columns) - 1)])
        numeric = [c for c in columns if c in self._numeric]
        choice = rng.random()
        if choice < 0.5 or not numeric:
            return "COUNT(*)"
        agg = rng.choice(["SUM", "AVG", "MAX", "MIN"])
        return f"{agg}({rng.choice(numeric)})"

    def generate(self, duration_s: float) -> List[TimedQuery]:
        """Emit the merged, time-ordered query stream of all users."""
        rng = self._rng
        cfg = self.config
        out: List[TimedQuery] = []
        # Users share a biased column universe: hot columns first, a cold
        # tail behind them (the head repeats often; the tail rarely).
        hot_columns = (self._numeric + self._strings)[: max(4, cfg.columns_per_session * 5)]
        for u in range(cfg.num_users):
            user = f"user{u}"
            t = rng.uniform(0, cfg.think_time_s)
            while t < duration_s:
                session_cols = self._session_columns(hot_columns)
                aggregate = rng.random() < cfg.aggregate_fraction
                predicates: List[str] = []
                length = max(1, int(rng.gauss(cfg.session_length, 1.5)))
                for step in range(length):
                    if t >= duration_s:
                        break
                    if step > 0:
                        predicates.append(self._next_predicate(user, session_cols))
                    sql = f"SELECT {self._select_clause(session_cols, aggregate)} FROM {self.table}"
                    if predicates:
                        sql += " WHERE " + " AND ".join(f"({p})" for p in predicates)
                    out.append(TimedQuery(at_s=t, user=user, sql=sql))
                    t += rng.expovariate(1.0 / cfg.think_time_s)
                t += rng.expovariate(1.0 / (cfg.think_time_s * 2))
        out.sort(key=lambda q: q.at_s)
        return out


def multi_tenant_sessions(
    table: str,
    schema: Schema,
    config: Optional[MultiTenantConfig] = None,
    value_ranges: Optional[Dict[str, Tuple[float, float]]] = None,
    contains_values: Optional[Dict[str, List[str]]] = None,
) -> List[SessionTrace]:
    """Generate Zipf-skewed concurrent session traces for the gateway.

    Each trace is one session of one tenant's shared service account
    (``<tenant>-svc``); query text reuses the drill-down synthesis of
    :class:`WorkloadGenerator` so locality/similarity match the paper's
    trace profile.  Returned traces are sorted by open time.
    """
    cfg = config or MultiTenantConfig()
    gen = WorkloadGenerator(
        table,
        schema,
        WorkloadConfig(
            columns_per_session=cfg.columns_per_session,
            aggregate_fraction=cfg.aggregate_fraction,
            seed=cfg.seed,
        ),
        value_ranges=value_ranges,
        contains_values=contains_values,
    )
    rng = gen._rng  # noqa: SLF001 - one stream keeps the trace deterministic
    tenants = [f"tenant{r:02d}" for r in range(cfg.num_tenants)]
    weights = [1.0 / (r + 1) ** cfg.zipf_exponent for r in range(cfg.num_tenants)]
    hot_columns = (gen._numeric + gen._strings)[  # noqa: SLF001
        : max(4, cfg.columns_per_session * 5)
    ]
    traces: List[SessionTrace] = []
    for _ in range(cfg.num_sessions):
        tenant = rng.choices(tenants, weights=weights, k=1)[0]
        user = f"{tenant}-svc"
        opens_at = rng.uniform(0.0, cfg.open_window_s)
        session_cols = gen._session_columns(hot_columns)  # noqa: SLF001
        aggregate = rng.random() < cfg.aggregate_fraction
        length = max(1, round(rng.gauss(cfg.queries_per_session, 1.0)))
        t = opens_at
        predicates: List[str] = []
        queries: List[TimedQuery] = []
        for step in range(length):
            if step > 0:
                predicates.append(gen._next_predicate(user, session_cols))  # noqa: SLF001
            sql = f"SELECT {gen._select_clause(session_cols, aggregate)} FROM {table}"  # noqa: SLF001
            if predicates:
                sql += " WHERE " + " AND ".join(f"({p})" for p in predicates)
            queries.append(TimedQuery(at_s=t, user=user, sql=sql))
            t += rng.expovariate(1.0 / cfg.think_time_s)
        traces.append(
            SessionTrace(
                tenant=tenant, user=user, opens_at_s=opens_at, queries=tuple(queries)
            )
        )
    traces.sort(key=lambda s: s.opens_at_s)
    return traces


def scan_query_stream(
    table: str,
    columns: Sequence[str],
    value_range: Tuple[int, int],
    count: int,
    seed: int = 7,
    contains_column: Optional[str] = None,
    contains_values: Optional[Sequence[str]] = None,
    pool_size: int = 24,
    reuse_probability: float = 0.75,
) -> List[str]:
    """The §VI-B scan workload::

        SELECT a FROM T WHERE b OP1 v1 [[AND|OR] c OP2 v2]

    with randomly generated parameters drawn from a finite pool, so that
    predicate repetition matches production behaviour (high similarity).
    """
    rng = random.Random(seed)
    lo, hi = value_range

    def fresh_predicate() -> str:
        if contains_column and contains_values and rng.random() < 0.25:
            return f"{contains_column} CONTAINS '{rng.choice(list(contains_values))}'"
        column = rng.choice(list(columns[1:]) or list(columns))
        return f"{column} {rng.choice(_NUM_OPS)} {rng.randint(lo, hi)}"

    pool = [fresh_predicate() for _ in range(pool_size)]
    queries = []
    for _ in range(count):
        def draw() -> str:
            if rng.random() < reuse_probability:
                return rng.choice(pool)
            pred = fresh_predicate()
            pool[rng.randrange(len(pool))] = pred
            return pred

        preds = [draw()]
        roll = rng.random()
        if roll < 0.4:
            preds.append(draw())
            conjunction = "AND" if rng.random() < 0.7 else "OR"
        sql = f"SELECT {columns[0]} FROM {table} WHERE ({preds[0]})"
        if len(preds) == 2:
            sql = (
                f"SELECT {columns[0]} FROM {table} "
                f"WHERE ({preds[0]}) {conjunction} ({preds[1]})"
            )
        queries.append(sql)
    return queries


# -- skewed-join misestimate workload (S53) -----------------------------------


def skewed_join_dataset(
    rows: int,
    seed: int = 0,
    hot_share: float = 0.5,
    num_groups: int = 8,
    match_share: float = 0.6,
) -> "Tuple[Dict[str, object], Dict[str, object]]":
    """Fact/dimension columns engineered to defeat the static planner.

    Returns ``(fact, dim)`` column dicts for a fact table with a Zipf-like
    hot join key (``hot_share`` of all rows land on key 0, the rest spread
    uniformly — the skew that makes one partition a straggler) and a
    ``note`` string column where ``match_share`` of rows contain the
    needle ``'hit'``.  The planner's CONTAINS default selectivity is far
    below ``match_share``, so the estimate/observation gap reliably
    crosses the adaptive re-optimizer's trigger.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    n_hot = int(rows * hot_share)
    keys = np.concatenate(
        [
            np.zeros(n_hot, dtype=np.int64),
            rng.integers(1, max(2, num_groups), rows - n_hot),
        ]
    )
    rng.shuffle(keys)
    hit = rng.random(rows) < match_share
    notes = np.array(
        ["hit-entry" if h else "cold-entry" for h in hit], dtype=object
    )
    fact = {
        "k": keys,
        "v": rng.random(rows),
        "w": rng.integers(0, 1000, rows),
        "note": notes,
    }
    dim = {
        "k": np.arange(num_groups, dtype=np.int64),
        "label": np.array([f"g{i}" for i in range(num_groups)], dtype=object),
    }
    return fact, dim


def skewed_join_queries(count: int, seed: int = 0) -> List[str]:
    """Distinct misestimate-prone join/group-by queries over the
    :func:`skewed_join_dataset` tables ``T`` (fact) and ``D`` (dim).

    Every query keeps the ``note CONTAINS 'hit'`` misestimate lever and a
    join on the skewed key; the varying aggregate/extra-predicate mix
    makes each query plan distinct so no two share a SmartIndex entry.
    """
    rng = random.Random(seed)
    aggs = ["SUM(T.v)", "COUNT(*)", "MIN(T.v)", "MAX(T.v)", "AVG(T.v)", "SUM(T.w)"]
    queries: List[str] = []
    for i in range(count):
        agg = aggs[i % len(aggs)]
        extra = ""
        if rng.random() < 0.5:
            extra = f" AND (T.w {rng.choice(_NUM_OPS)} {rng.randint(50, 950)})"
        queries.append(
            f"SELECT D.label AS g, COUNT(*) AS n, {agg} AS a "
            f"FROM T JOIN D ON T.k = D.k "
            f"WHERE (T.note CONTAINS 'hit'){extra} "
            f"GROUP BY D.label ORDER BY g"
        )
    return queries
