"""Trace replay: drive a cluster with a timed query stream.

The §IV-A analysis and §VI evaluation are both about *streams* of
queries arriving over time — index TTLs, cache churn and concurrency all
depend on arrival patterns, not just query content.  The replayer
submits each :class:`~repro.workload.generator.TimedQuery` at its trace
timestamp on the simulated clock (optionally time-compressed) and
collects per-query outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.jobs import Job, JobOptions, JobStatus
from repro.workload.generator import TimedQuery


@dataclass
class ReplayOutcome:
    """What happened to one replayed query."""

    query: TimedQuery
    submitted_at: float
    job: Job

    @property
    def response_time_s(self) -> float:
        return self.job.stats.response_time_s

    @property
    def succeeded(self) -> bool:
        return self.job.status is JobStatus.SUCCEEDED


@dataclass
class ReplayReport:
    """Aggregate results of a replay."""

    outcomes: List[ReplayOutcome] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.outcomes)

    def response_times(self) -> List[float]:
        return [o.response_time_s for o in self.outcomes if o.succeeded]

    def percentile(self, p: float) -> float:
        times = sorted(self.response_times())
        if not times:
            return 0.0
        idx = min(len(times) - 1, int(len(times) * p))
        return times[idx]

    def success_ratio(self) -> float:
        total = len(self.outcomes) + len(self.errors)
        if not total:
            return 1.0
        return sum(o.succeeded for o in self.outcomes) / total


class TraceReplayer:
    """Replays a trace against a cluster on the simulated clock.

    Queries whose users don't exist yet are given per-user credentials
    with read access to the referenced tables (the client-onboarding a
    real deployment would have done beforehand).
    """

    def __init__(self, cluster, time_compression: float = 1.0, grant_admin: bool = True):
        if time_compression <= 0:
            raise ValueError("time_compression must be positive")
        self.cluster = cluster
        #: >1 squeezes the trace (arrivals closer together than recorded).
        self.time_compression = time_compression
        self.grant_admin = grant_admin
        self._known_users: set = set()

    def _ensure_user(self, user: str) -> None:
        if user in self._known_users:
            return
        if user not in self.cluster._credentials:  # noqa: SLF001 - facade-internal
            self.cluster.create_user(user, admin=self.grant_admin)
        self._known_users.add(user)

    def replay(
        self,
        trace: Sequence[TimedQuery],
        options: Optional[JobOptions] = None,
        concurrent: bool = False,
    ) -> ReplayReport:
        """Run the whole trace; returns the aggregate report.

        ``concurrent=False`` (default) runs queries back to back at their
        arrival times — if a query outlasts the next arrival, the next
        one waits (a single analyst session).  ``concurrent=True`` lets
        arrivals overlap, exercising task-slot contention and the job
        manager's identical-task reuse.
        """
        report = ReplayReport()
        sim = self.cluster.sim
        if concurrent:
            pending = []
            for tq in sorted(trace, key=lambda q: q.at_s):
                target = tq.at_s / self.time_compression
                if target > sim.now:
                    sim.run(until=target)
                self._ensure_user(tq.user)
                try:
                    job, done = self.cluster.submit(tq.sql, user=tq.user, options=options)
                except Exception as exc:  # noqa: BLE001 - recorded, not raised
                    report.errors.append(f"{tq.sql!r}: {exc}")
                    continue
                pending.append((tq, sim.now, job, done))
            if pending:
                # Completion-driven gather: a single barrier event fired
                # by per-job callbacks, instead of waiting on each job in
                # submission order — a job that fails (its done event
                # raises on read) can no longer abort collection of the
                # outcomes that completed after it.
                all_done = sim.event(name="replay.all_done")
                remaining = [len(pending)]

                def _arrived(_ev) -> None:
                    remaining[0] -= 1
                    if remaining[0] == 0 and not all_done.triggered:
                        all_done.succeed()

                for _tq, _at, _job, done in pending:
                    done.add_callback(_arrived)
                sim.run_until_complete(all_done)
            for tq, at, job, _done in pending:
                report.outcomes.append(ReplayOutcome(tq, at, job))
            return report

        for tq in sorted(trace, key=lambda q: q.at_s):
            target = tq.at_s / self.time_compression
            if target > sim.now:
                sim.run(until=target)
            self._ensure_user(tq.user)
            submitted_at = sim.now  # query_job advances the clock to completion
            try:
                job = self.cluster.query_job(tq.sql, user=tq.user, options=options)
            except Exception as exc:  # noqa: BLE001 - recorded, not raised
                report.errors.append(f"{tq.sql!r}: {exc}")
                continue
            report.outcomes.append(ReplayOutcome(tq, submitted_at, job))
        return report
