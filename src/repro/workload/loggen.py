"""Streaming log-data generation onto node-local filesystems (§II).

Log data in Baidu "are generated on tens of thousands of online service
machines" at roughly 2.3 GB per hour per node and stay on the producing
machines' local filesystems; the light-weight per-node Feisu process
converts new arrivals into columnar blocks.

:class:`LogIngestor` models that pipeline: it appends batches of
log records (nested JSON, flattened via
:mod:`repro.columnar.json_flatten`) to per-node local storage as
columnar blocks and keeps one logical table spanning all nodes' logs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.columnar.block import Block
from repro.columnar.json_flatten import flatten_records
from repro.columnar.schema import Schema
from repro.columnar.table import BlockRef, Table
from repro.sim.netmodel import NodeAddress
from repro.storage.loader import make_block_ref

#: Paper figure: log volume per node per hour.
LOG_BYTES_PER_NODE_PER_HOUR = 2.3 * 1024**3

_ACTIONS = ["click", "view", "scroll", "search", "back"]
_PAGES = [f"/p{i}" for i in range(40)]


def generate_log_records(count: int, node_idx: int, hour: int, seed: int = 0) -> List[dict]:
    """Nested log records as the online service would emit them."""
    rng = random.Random((seed, node_idx, hour).__hash__())
    records = []
    for i in range(count):
        records.append(
            {
                "event_id": hour * 1_000_000 + node_idx * 10_000 + i,
                "hour": hour,
                "node": node_idx,
                "action": rng.choice(_ACTIONS),
                "latency_ms": round(rng.expovariate(1 / 40.0), 3),
                "request": {
                    "page": rng.choice(_PAGES),
                    "status": rng.choices([200, 404, 500], weights=[94, 4, 2])[0],
                },
                "tags": [f"t{rng.randrange(8)}" for _ in range(rng.randrange(3))],
            }
        )
    return records


class LogIngestor:
    """The per-node light-weight conversion process, for a whole cluster.

    Each ingested batch becomes one columnar block on the *producing
    node's* local filesystem; the logical ``table`` spans every node.
    """

    def __init__(self, cluster, table_name: str = "service_logs", scale_factor: float = 1.0):
        self.cluster = cluster
        self.table_name = table_name
        self.scale_factor = scale_factor
        self._schema: Optional[Schema] = None
        self._table: Optional[Table] = None
        self._block_seq = 0

    def ingest(self, node: NodeAddress, records: Sequence[dict]) -> BlockRef:
        """Convert one batch of fresh records on one node."""
        schema, columns = flatten_records(records)
        if self._schema is None:
            self._schema = schema
            self._table = Table(self.table_name, schema, description="node-local service logs")
            self.cluster.catalog.register(self._table)
        elif schema.to_dict() != self._schema.to_dict():
            # Dense engine: align batches onto the first-seen schema,
            # default-filling fields this batch happens to lack.
            n = len(next(iter(columns.values()))) if columns else 0
            aligned = {}
            for f in self._schema:
                if f.name in columns:
                    aligned[f.name] = columns[f.name]
                else:
                    aligned[f.name] = np.zeros(n, dtype=f.dtype.numpy_dtype) if (
                        f.dtype.numpy_dtype != object
                    ) else np.array([""] * n, dtype=object)
            columns = aligned
        block_id = f"{self.table_name}.b{self._block_seq}"
        self._block_seq += 1
        block = Block.from_arrays(block_id, self._schema, columns, self.scale_factor)
        payload = block.to_bytes()
        inner = f"/logs/{node}/{block_id}"
        self.cluster.local_fs.write(inner, payload, node=node)
        full = self.cluster.router.full_path(self.cluster.local_fs, inner)
        ref = make_block_ref(block, full, payload)
        assert self._table is not None
        self._table.add_block(ref)
        return ref

    def ingest_hour(self, hour: int, records_per_node: int = 500, seed: int = 0) -> int:
        """One simulated hour of logs across every node; returns blocks added."""
        added = 0
        for idx, node in enumerate(self.cluster.nodes):
            records = generate_log_records(records_per_node, idx, hour, seed)
            self.ingest(node, records)
            added += 1
        return added

    @property
    def table(self) -> Table:
        if self._table is None:
            raise RuntimeError("no log data ingested yet")
        return self._table
