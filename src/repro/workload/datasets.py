"""Synthetic versions of the paper's experimental datasets (Table I).

+-------+----------------+--------------------+------------------+---------+
| Table | Rows (paper)   | Uncompressed size  | Fields           | Storage |
+-------+----------------+--------------------+------------------+---------+
| T1    | 30 billion     | 62 TB              | 200              | A       |
| T2    | 130 billion    | 200 TB             | 200 (same as T1) | B       |
| T3    | 10 billion     | 7 TB               | 57 (subset)      | A       |
+-------+----------------+--------------------+------------------+---------+

T1/T2 model user business log data "carrying URL-clicked information and
query attributes"; T3 is a sample of traced webpage URLs whose attributes
are a subset of T1's/T2's.

The synthesis keeps those structural relationships exactly (shared
schema, subset schema, per-table storage assignment) and scales row
counts down by ``scale`` — each materialized row then *represents*
``scale`` production rows, which the block metadata records so the cost
model charges production-proportional I/O.

Value distributions are chosen to look like web logs: Zipf-ish URL and
query popularity, small categorical domains for province/device, heavy-
tailed click counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.columnar.schema import DataType, Field, Schema

#: Paper-scale row counts.
PAPER_ROWS = {"T1": 30_000_000_000, "T2": 130_000_000_000, "T3": 10_000_000_000}
#: Paper-scale uncompressed sizes in bytes.
PAPER_BYTES = {"T1": 62e12, "T2": 200e12, "T3": 7e12}
PAPER_FIELDS = {"T1": 200, "T2": 200, "T3": 57}

_PROVINCES = [
    "beijing", "shanghai", "guangdong", "zhejiang", "sichuan",
    "shandong", "hubei", "shaanxi", "liaoning", "fujian",
]
_DEVICES = ["desktop", "mobile", "tablet"]
_QUERY_TERMS = [
    "weather", "map", "music", "video", "news", "stock", "travel",
    "recipe", "movie", "game", "novel", "translate", "baike", "tieba",
]

#: Semantic (non-filler) fields shared by T1/T2; T3 uses the first
#: ``T3_SEMANTIC`` of them (subset relationship).
SEMANTIC_FIELDS: List[Field] = [
    Field("query_id", DataType.INT64),
    Field("url", DataType.STRING),
    Field("query_text", DataType.STRING),
    Field("click_count", DataType.INT64),
    Field("dwell_time", DataType.FLOAT64),
    Field("user_id", DataType.INT64),
    Field("province", DataType.STRING),
    Field("device", DataType.STRING),
    Field("ts_hour", DataType.INT64),
    Field("position", DataType.INT64),
]
T3_SEMANTIC = 7


def log_schema(num_fields: int = 200) -> Schema:
    """The T1/T2 schema: semantic head plus integer filler fields."""
    if num_fields < len(SEMANTIC_FIELDS):
        return Schema(SEMANTIC_FIELDS[:num_fields])
    filler = [
        Field(f"f{idx:03d}", DataType.INT64)
        for idx in range(num_fields - len(SEMANTIC_FIELDS))
    ]
    return Schema(SEMANTIC_FIELDS + filler)


def webpage_schema(num_fields: int = 57) -> Schema:
    """The T3 schema — a strict subset of :func:`log_schema`'s fields."""
    head = SEMANTIC_FIELDS[:T3_SEMANTIC]
    filler_needed = max(0, num_fields - len(head))
    # Draw fillers from the full 200-field universe so T3 ⊆ T1/T2 holds
    # for any requested size.
    full = log_schema(len(SEMANTIC_FIELDS) + filler_needed)
    filler = [f for f in full if f.name.startswith("f")][:filler_needed]
    return Schema(head + filler)


@dataclass
class DatasetSpec:
    """One scaled dataset to synthesize."""

    name: str
    rows: int
    num_fields: int
    storage: str
    paper_rows: int
    seed: int

    @property
    def scale_factor(self) -> float:
        return self.paper_rows / self.rows


def default_specs(
    t1_rows: int = 24_000, t2_rows: int = 48_000, t3_rows: int = 8_000, num_fields: int = 24
) -> List[DatasetSpec]:
    """Laptop-scale specs preserving the T2 > T1 > T3 size ordering."""
    t3_fields = max(T3_SEMANTIC, min(57, int(num_fields * 57 / 200) or T3_SEMANTIC))
    return [
        DatasetSpec("T1", t1_rows, num_fields, "storage-a", PAPER_ROWS["T1"], seed=101),
        DatasetSpec("T2", t2_rows, num_fields, "storage-b", PAPER_ROWS["T2"], seed=202),
        DatasetSpec("T3", t3_rows, t3_fields, "storage-a", PAPER_ROWS["T3"], seed=303),
    ]


def synthesize(spec: DatasetSpec) -> Tuple[Schema, Dict[str, np.ndarray]]:
    """Generate one dataset's columns per its schema."""
    schema = log_schema(spec.num_fields) if spec.name != "T3" else webpage_schema(spec.num_fields)
    rng = np.random.default_rng(spec.seed)
    n = spec.rows
    columns: Dict[str, np.ndarray] = {}
    zipf_sites = np.minimum(rng.zipf(1.5, n), 200) - 1
    pages = rng.integers(0, 50, n)
    for f in schema:
        if f.name == "query_id":
            columns[f.name] = rng.integers(0, max(n // 4, 1), n)
        elif f.name == "url":
            columns[f.name] = np.array(
                [f"http://site{s}.example.com/page{p}" for s, p in zip(zipf_sites, pages)],
                dtype=object,
            )
        elif f.name == "query_text":
            terms = rng.choice(len(_QUERY_TERMS), size=n)
            qualifiers = rng.integers(0, 30, n)
            columns[f.name] = np.array(
                [f"{_QUERY_TERMS[t]} q{q}" for t, q in zip(terms, qualifiers)], dtype=object
            )
        elif f.name == "click_count":
            columns[f.name] = np.minimum(rng.zipf(2.0, n), 1000).astype(np.int64)
        elif f.name == "dwell_time":
            columns[f.name] = rng.exponential(30.0, n)
        elif f.name == "user_id":
            columns[f.name] = np.minimum(rng.zipf(1.3, n), 100_000).astype(np.int64)
        elif f.name == "province":
            columns[f.name] = np.array(
                [_PROVINCES[i] for i in rng.integers(0, len(_PROVINCES), n)], dtype=object
            )
        elif f.name == "device":
            columns[f.name] = np.array(
                [_DEVICES[i] for i in rng.integers(0, len(_DEVICES), n)], dtype=object
            )
        elif f.name == "ts_hour":
            columns[f.name] = np.sort(rng.integers(0, 24 * 60, n)).astype(np.int64)
        elif f.name == "position":
            columns[f.name] = rng.integers(1, 11, n)
        else:  # filler fields: small-domain ints, RLE/dict friendly
            columns[f.name] = rng.integers(0, 16, n)
    return schema, columns


def modeled_dataset_bytes(name: str, materialized_bytes: int, scale_factor: float) -> float:
    """Production-size estimate for Table I reporting."""
    return materialized_bytes * scale_factor


def load_paper_datasets(cluster, specs: Optional[List[DatasetSpec]] = None, block_rows: int = 4096):
    """Synthesize and load T1/T2/T3 into a cluster; returns descriptors."""
    tables = {}
    for spec in specs or default_specs():
        schema, columns = synthesize(spec)
        tables[spec.name] = cluster.load_table(
            spec.name,
            schema,
            columns,
            storage=spec.storage,
            block_rows=block_rows,
            scale_factor=spec.scale_factor,
            description=f"synthetic {spec.name} per Table I ({spec.storage})",
        )
    return tables
