"""Public API: a self-contained simulated Feisu deployment.

:class:`FeisuCluster` wires the full stack of DESIGN.md's inventory —
topology and network model, heterogeneous storage substrates behind the
common storage layer, security, catalog, master/stem/leaf tree — into
one object with a small surface:

    >>> cluster = FeisuCluster(FeisuConfig(nodes_per_rack=4))
    >>> cluster.load_table("T", schema, columns)          # doctest: +SKIP
    >>> result = cluster.query("SELECT COUNT(*) FROM T")  # doctest: +SKIP

Queries compute real answers; response times come from the simulated
clock and are exposed in ``result.stats["response_time_s"]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.cluster.jobs import Job, JobOptions
from repro.cluster.master import EntryGuard, Master
from repro.cluster.membership import ClusterManager
from repro.cluster.node import LeafConfig, LeafServer, StemServer
from repro.cluster.scheduler import JobScheduler
from repro.columnar.schema import Schema
from repro.columnar.table import Catalog, Table
from repro.storage.loader import store_table
from repro.engine.executor import QueryResult
from repro.errors import FeisuError, StorageError
from repro.index.smartindex import IndexStats
from repro.planner.cost import CostModel
from repro.security.acl import AccessControl, QuotaPolicy
from repro.security.auth import Credential, SSOAuthority
from repro.sim.events import Event, Simulator
from repro.sim.netmodel import NetworkTopology, NodeAddress, TopologySpec
from repro.storage.router import StorageRouter
from repro.storage.systems import DistributedFS, FatmanFS, KeyValueStore, LocalFS


@dataclass
class FeisuConfig:
    """Shape and feature switches for a simulated deployment."""

    datacenters: int = 1
    racks_per_datacenter: int = 2
    nodes_per_rack: int = 8
    leaf: LeafConfig = field(default_factory=LeafConfig)
    #: Production rows represented by each materialized row (DESIGN.md §1).
    default_scale_factor: float = 1.0
    seed: int = 17
    #: Locality-aware scheduling (ablation switch).
    locality_aware: bool = True
    #: Reuse window for completed identical tasks (0 = running jobs only).
    reuse_completed_window_s: float = 0.0
    #: Master-level "resource agreement" knob (§III): cap on jobs
    #: running concurrently; admitted jobs beyond it wait in the
    #: candidate queue.
    max_concurrent_jobs: int = 64
    #: Multi-tenant SQL gateway (S52).  ``None`` (the default) builds no
    #: gateway at all — no extra objects, no simulation events — so
    #: committed figure results stay byte-identical; set a
    #: :class:`repro.gateway.GatewayConfig` to serve sessions through
    #: admission control and fair-share scheduling.
    gateway: Optional["object"] = None
    #: Adaptive mid-query re-optimization (S53).  ``None`` (the default)
    #: keeps every job on the frozen single-wave plan so committed
    #: figure results stay byte-identical; set a
    #: :class:`repro.planner.adaptive.AdaptiveConfig` to enable pilot
    #: waves, checkpoint re-planning, skew splitting and partition-level
    #: recovery.
    adaptive: Optional["object"] = None
    #: Elastic membership and rebalancing (S55).  Off (the default)
    #: constructs no daemon and adds no simulation events — committed
    #: figure results stay byte-identical; on, the cluster gains node
    #: join/decommission, a shard-aware rebalancer and autoscaling
    #: proposals.
    enable_elastic: bool = False
    #: Optional :class:`repro.cluster.elastic.ElasticConfig` override;
    #: ``None`` with ``enable_elastic=True`` uses the defaults.
    elastic: Optional["object"] = None

    def topology(self) -> TopologySpec:
        return TopologySpec(self.datacenters, self.racks_per_datacenter, self.nodes_per_rack)


class FeisuCluster:
    """A fully wired Feisu deployment on the simulated cluster."""

    def __init__(self, config: Optional[FeisuConfig] = None):
        self.config = config or FeisuConfig()
        self.sim = Simulator()
        spec = self.config.topology()
        self.net = NetworkTopology(self.sim, spec)
        self.nodes = spec.addresses()

        # Storage substrates (§II): two HDFS systems — the experiments'
        # storage A and B (Table I) — plus local FS, Fatman and KV store.
        self.local_fs = LocalFS(self.nodes)
        self.storage_a = DistributedFS(
            self.nodes, name="storage-a", seed=self.config.seed, domain="hdfs-a"
        )
        self.storage_b = DistributedFS(
            self.nodes, name="storage-b", seed=self.config.seed + 1, domain="hdfs-b"
        )
        self.storage_b.scheme = "hdfs2"
        self.fatman = FatmanFS(self.nodes, seed=self.config.seed + 2)
        self.kv = KeyValueStore(self.nodes)
        self.authority = SSOAuthority()
        self.router = StorageRouter(self.authority)
        self.router.register(self.local_fs, default=True)
        self.router.register(self.storage_a)
        self.router.register(self.storage_b)
        self.router.register(self.fatman)
        self.router.register(self.kv)

        self.catalog = Catalog()
        self.acl = AccessControl()
        self.quota = QuotaPolicy()
        self.entry_guard = EntryGuard(self.authority, self.acl, self.quota)

        self.cluster_manager = ClusterManager(self.sim)
        self.scheduler = JobScheduler(
            self.cluster_manager,
            self.net,
            self.router,
            CostModel(),
            locality_aware=self.config.locality_aware,
        )
        # Explicit re-admission: a worker heartbeating back after being
        # declared dead is surfaced to the scheduler, not silently revived.
        self.cluster_manager.on_readmit(self.scheduler.note_readmission)
        from repro.cluster.ledger import JobLedger

        self.job_ledger = JobLedger(self.sim)
        self.master = self._make_master()

        self.leaves: List[LeafServer] = []
        self.stems: List[StemServer] = []
        for addr in self.nodes:
            leaf = LeafServer(
                self.sim,
                worker_id=f"leaf-{addr}",
                address=addr,
                net=self.net,
                router=self.router,
                cluster_manager=self.cluster_manager,
                config=replace(self.config.leaf),
            )
            self.leaves.append(leaf)
            self.scheduler.register_leaf(leaf)
            if addr.node == 0:
                stem = StemServer(
                    self.sim,
                    worker_id=f"stem-{addr}",
                    address=addr,
                    net=self.net,
                    cluster_manager=self.cluster_manager,
                )
                self.stems.append(stem)
                self.master.register_stem(stem)
            # Multi-datacenter deployments add a dc-level aggregation
            # layer above the rack stems (deeper server tree, §III-B).
            if (
                self.config.datacenters > 1
                and addr.rack == 0
                and addr.node == min(1, self.config.nodes_per_rack - 1)
            ):
                dc_stem = StemServer(
                    self.sim,
                    worker_id=f"dcstem-{addr}",
                    address=addr,
                    net=self.net,
                    cluster_manager=self.cluster_manager,
                )
                self.stems.append(dc_stem)
                self.master.register_dc_stem(dc_stem)

        #: Heat-based adaptive tiering (S50); constructed and started only
        #: when the flag is on so default deployments gain no simulation
        #: events and committed figure results stay byte-identical.
        self.tiering = None
        if self.config.leaf.enable_tiering:
            from repro.storage.tiering import TieringDaemon

            self.tiering = TieringDaemon(
                self.sim,
                self.net,
                self.router,
                hot_system=self.storage_a,
                cost_model=self.scheduler.cost_model,
            )
            self.scheduler.tiering = self.tiering
            for leaf in self.leaves:
                leaf.tiering = self.tiering
                if leaf.ssd_cache is not None:
                    self.tiering.attach_cache(leaf.ssd_cache)
            self.tiering.start()

        #: Per-replica heterogeneous layouts (S54); same flag-gating
        #: discipline as tiering — off means no daemon, no events, no
        #: figure drift.
        self.layouts = None
        if self.config.leaf.enable_layouts:
            from repro.storage.layouts import LayoutDaemon

            self.layouts = LayoutDaemon(
                self.sim,
                self.net,
                self.router,
                cost_model=self.scheduler.cost_model,
            )
            self.scheduler.layouts = self.layouts
            for leaf in self.leaves:
                leaf.layouts = self.layouts
            self.layouts.start()

        #: Elastic membership + rebalancing (S55); flag-gated like
        #: tiering and layouts so the default deployment is untouched.
        self.elastic = None
        if self.config.enable_elastic:
            from repro.cluster.elastic import ElasticityManager

            self.elastic = ElasticityManager(self, self.config.elastic)
            self.elastic.start()

        # Cross-domain metadata sharing (§I): every datacenter keeps a
        # directory replica of schemas and grants, synced periodically.
        from repro.cluster.domains import CrossDomainDirectory

        self.domain_directory = CrossDomainDirectory(
            self.sim, self.net, datacenters=self.config.datacenters
        )
        self.domain_directory.start()

        #: Fault-injection layer (None = fault-free; every interception
        #: point is behind an ``is not None`` guard, so this costs nothing).
        self.fault_injector = None

        self._credentials: Dict[str, Credential] = {}
        self._default_user = "analyst"
        self.create_user(self._default_user, admin=True)

        #: Multi-tenant SQL gateway (S52); constructed only when the
        #: config carries a :class:`~repro.gateway.GatewayConfig` so the
        #: direct ``cluster.query()`` path is untouched by default.
        self.gateway = None
        if self.config.gateway is not None:
            from repro.gateway import SQLGateway

            self.gateway = SQLGateway(self, self.config.gateway)

    def install_faults(self, plan, seed: int = 0):
        """Install a :class:`~repro.faults.plan.FaultPlan` on this cluster.

        Lazily imports the fault layer so fault-free deployments never
        load it; returns the :class:`~repro.faults.injector.FaultInjector`
        (its ``records`` log is the scenario's replayable fingerprint).
        """
        from repro.faults.injector import FaultInjector

        self.fault_injector = FaultInjector(self.sim, plan, seed=seed).install(self)
        return self.fault_injector

    def _make_master(self) -> Master:
        return Master(
            self.sim,
            self.net,
            self.router,
            self.catalog,
            self.cluster_manager,
            self.scheduler,
            self.entry_guard,
            address=NodeAddress(0, 0, 0),
            reuse_completed_window_s=self.config.reuse_completed_window_s,
            service_credential=self.authority.issue(
                "feisu-master",
                [s.domain for s in self.router.systems()],
                ttl_s=10 * 365 * 86400.0,
            ),
            ledger=self.job_ledger,
            max_concurrent_jobs=self.config.max_concurrent_jobs,
            adaptive=self.config.adaptive,
        )

    def fail_master(self) -> int:
        """Crash the primary master and promote its backup (§III-C).

        In-flight jobs fail over to their clients (``job.error`` set;
        resubmit to continue); the job ledger's shadow replays the
        operations log, so history survives; a fresh master — already
        holding the replicated state — takes over immediately.  Returns
        the number of aborted jobs.
        """
        aborted = self.master.shutdown()
        self.job_ledger.fail_primary()
        old = self.master
        self.master = self._make_master()
        for stem in self.stems:
            if stem.worker_id.startswith("dcstem-"):
                self.master.register_dc_stem(stem)
            else:
                self.master.register_stem(stem)
        # Historical job records carry over through the ledger; the old
        # master's in-memory registry is gone with the process.
        del old
        return aborted

    # -- users & security ----------------------------------------------------

    def all_domains(self) -> List[str]:
        return [s.domain for s in self.router.systems()]

    def create_user(
        self,
        user: str,
        domains: Optional[List[str]] = None,
        admin: bool = False,
        tables: Optional[List[str]] = None,
    ) -> Credential:
        """Issue an SSO credential; grants table rights per arguments."""
        cred = self.authority.issue(
            user, domains if domains is not None else self.all_domains(), now=self.sim.now
        )
        self._credentials[user] = cred
        if admin:
            self.acl.make_admin(user)
        for table in tables or []:
            self.acl.grant(user, table)
            self.domain_directory.publish_grant(user, table)
        return cred

    def credential_of(self, user: str) -> Credential:
        try:
            return self._credentials[user]
        except KeyError:
            raise FeisuError(f"unknown user {user!r}; call create_user first") from None

    # -- data loading -------------------------------------------------------------

    def storage_by_name(self, name: str):
        for system in self.router.systems():
            if system.name == name or system.scheme == name:
                return system
        raise StorageError(f"no storage system named {name!r}")

    def load_table(
        self,
        name: str,
        schema: Schema,
        columns: Mapping[str, np.ndarray],
        storage: str = "storage-a",
        block_rows: int = 8192,
        scale_factor: Optional[float] = None,
        node: Optional[NodeAddress] = None,
        description: str = "",
    ) -> Table:
        """Convert columns into blocks on a storage system and register
        the table (the §III light-weight ingestion process, in bulk)."""
        system = self.storage_by_name(storage)
        table = store_table(
            name,
            schema,
            columns,
            self.router,
            system,
            block_rows=block_rows,
            scale_factor=(
                scale_factor if scale_factor is not None else self.config.default_scale_factor
            ),
            node=node,
            catalog=self.catalog,
            description=description,
        )
        self.domain_directory.publish_table(name, schema.to_dict())
        return table

    def load_table_striped(
        self,
        name: str,
        schema: Schema,
        columns: Mapping[str, np.ndarray],
        storages: List[str],
        block_rows: int = 8192,
        scale_factor: Optional[float] = None,
        description: str = "",
    ) -> Table:
        """One logical table striped block-by-block across several
        storage systems — the heterogeneous-integration case in one
        table (e.g. ``storages=["storage-a", "fatman"]``)."""
        from repro.storage.loader import store_table_striped

        systems = [self.storage_by_name(s) for s in storages]
        table = store_table_striped(
            name,
            schema,
            columns,
            self.router,
            systems,
            block_rows=block_rows,
            scale_factor=(
                scale_factor if scale_factor is not None else self.config.default_scale_factor
            ),
            catalog=self.catalog,
            description=description,
        )
        self.domain_directory.publish_table(name, schema.to_dict())
        return table

    # -- querying ------------------------------------------------------------------

    def submit(
        self,
        sql: str,
        user: Optional[str] = None,
        options: Optional[JobOptions] = None,
    ) -> "tuple[Job, Event]":
        """Asynchronous submission (drive ``sim`` yourself)."""
        user = user or self._default_user
        return self.master.submit(sql, user, self._credentials.get(user), options)

    def query(
        self,
        sql: str,
        user: Optional[str] = None,
        options: Optional[JobOptions] = None,
    ) -> QueryResult:
        """Submit a query and run the simulation until it finishes.

        Returns the result with ``stats["response_time_s"]`` set from the
        simulated clock; raises the job's error on failure/timeout.
        """
        job = self.query_job(sql, user, options)
        if job.error is not None:
            raise job.error
        assert job.result is not None
        job.result.stats["response_time_s"] = job.stats.response_time_s
        return job.result

    def query_job(
        self,
        sql: str,
        user: Optional[str] = None,
        options: Optional[JobOptions] = None,
    ) -> Job:
        """Like :meth:`query` but returns the full job record."""
        job, done = self.submit(sql, user, options)
        self.sim.run_until_complete(done)
        return job

    # -- introspection -----------------------------------------------------------

    def aggregate_index_stats(self) -> IndexStats:
        """Sum of SmartIndex counters across every leaf."""
        total = IndexStats()
        for leaf in self.leaves:
            mgr = leaf.index_manager
            if mgr is None:
                continue
            total.hits += mgr.stats.hits
            total.complement_hits += mgr.stats.complement_hits
            total.misses += mgr.stats.misses
            total.creations += mgr.stats.creations
            total.evictions_lru += mgr.stats.evictions_lru
            total.evictions_ttl += mgr.stats.evictions_ttl
            total.subsumption_hits += mgr.stats.subsumption_hits
            total.residual_hits += mgr.stats.residual_hits
            total.admission_rejects += mgr.stats.admission_rejects
            total.evictions_cost += mgr.stats.evictions_cost
        return total

    def index_memory_used(self) -> int:
        return sum(
            leaf.index_manager.used_bytes
            for leaf in self.leaves
            if leaf.index_manager is not None
        )

    # -- S55 elastic membership --------------------------------------------

    def join_node(self, datacenter: int = 0, rack: int = 0) -> LeafServer:
        """Bring a new leaf into an existing rack (requires
        ``enable_elastic``); returns the registered, heartbeating leaf."""
        if self.elastic is None:
            raise FeisuError("join_node requires FeisuConfig(enable_elastic=True)")
        return self.elastic.join_node(datacenter, rack)

    def decommission(self, worker_id: str) -> Event:
        """Gracefully drain and remove a leaf (requires
        ``enable_elastic``); returns the drain process event."""
        if self.elastic is None:
            raise FeisuError("decommission requires FeisuConfig(enable_elastic=True)")
        return self.elastic.decommission(worker_id)

    def leaf_at(self, address: NodeAddress) -> LeafServer:
        leaf = self.scheduler.leaf_at(address)
        if leaf is None:
            raise FeisuError(f"no leaf at {address}")
        return leaf

    def metrics(self):
        """Point-in-time monitoring snapshot (§III-C's shadow-served
        'monitoring running information')."""
        from repro.cluster.metrics import collect_metrics

        return collect_metrics(self)

    def start_metrics_sampler(self, period_s: float = 5.0, retention_s: float = 3600.0):
        """Start a rolling metrics time series (periodic snapshots with
        retention); returns the :class:`~repro.cluster.metrics.MetricsTimeSeries`.

        Opt-in: the sampler adds its own timer events to the simulation,
        so deployments that need bit-identical event ordering (the figure
        benchmarks) simply never start it.
        """
        from repro.cluster.metrics import MetricsTimeSeries

        self.metrics_series = MetricsTimeSeries(
            self, period_s=period_s, retention_s=retention_s
        ).start()
        return self.metrics_series

    def explain(self, sql: str) -> str:
        """Render the physical plan the master would produce for ``sql``."""
        from repro.planner.explain import explain as explain_plan
        from repro.planner.physical import build_plan
        from repro.sql.analyzer import analyze
        from repro.sql.parser import parse

        return explain_plan(
            build_plan(analyze(parse(sql), self.catalog)),
            leaf_config=self.config.leaf,
        )

    # -- §V-B resource consolidation --------------------------------------

    def reclaim_business_resources(self, storage: str, slots: int = 1) -> None:
        """Model high-priority online services claiming node resources:
        every leaf's Feisu slot pool for ``storage`` shrinks to ``slots``."""
        name = self.storage_by_name(storage).name
        for leaf in self.leaves:
            leaf.reclaim_slots(name, slots)

    def release_business_resources(self, storage: str) -> None:
        name = self.storage_by_name(storage).name
        for leaf in self.leaves:
            leaf.restore_slots(name)
