"""Feisu's public API surface."""

from repro.core.feisu import FeisuCluster, FeisuConfig
from repro.storage.loader import load_block, read_table_frame, store_table

__all__ = [
    "FeisuCluster",
    "FeisuConfig",
    "load_block",
    "read_table_frame",
    "store_table",
]
