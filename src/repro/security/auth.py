"""Single-Sign-On authentication (§V-A, simulated).

The production system authenticates offline against an X509 certificate
infrastructure and exposes the result to each storage system through PAM
plugins.  Here an :class:`SSOAuthority` issues signed-ish tokens carrying
the storage *domains* a user may cross; the common storage layer maps
that credential onto every storage plugin, which is exactly the
"mapping their authentication information to running job credential"
behaviour §III-C describes.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional

from repro.errors import AccessDeniedError


@dataclass(frozen=True)
class Credential:
    """A validated SSO token: who, which domains, until when."""

    user: str
    domains: FrozenSet[str]
    issued_at: float
    expires_at: float
    token: str

    def allows_domain(self, domain: str) -> bool:
        return domain in self.domains


class SSOAuthority:
    """Issues and validates cross-domain credentials.

    Tokens are HMACs over the credential payload, so a forged credential
    (wrong token for its claims) is rejected — a stand-in for X509
    signature checking.
    """

    def __init__(self, secret: bytes = b"feisu-reproduction-secret"):
        self._secret = secret
        self._revoked: set = set()

    def _sign(self, user: str, domains: FrozenSet[str], issued_at: float, expires_at: float) -> str:
        payload = f"{user}|{','.join(sorted(domains))}|{issued_at}|{expires_at}".encode()
        return hmac.new(self._secret, payload, hashlib.sha256).hexdigest()

    def issue(
        self,
        user: str,
        domains: Iterable[str],
        now: float = 0.0,
        ttl_s: float = 30 * 24 * 3600.0,
    ) -> Credential:
        domains = frozenset(domains)
        expires = now + ttl_s
        token = self._sign(user, domains, now, expires)
        return Credential(user, domains, now, expires, token)

    def validate(self, cred: Credential, now: float = 0.0) -> None:
        """Raise :class:`AccessDeniedError` unless the credential is genuine,
        unexpired and unrevoked."""
        expect = self._sign(cred.user, cred.domains, cred.issued_at, cred.expires_at)
        if not hmac.compare_digest(expect, cred.token):
            raise AccessDeniedError(f"credential for {cred.user!r} failed verification")
        if now > cred.expires_at:
            raise AccessDeniedError(f"credential for {cred.user!r} expired")
        if cred.token in self._revoked:
            raise AccessDeniedError(f"credential for {cred.user!r} was revoked")

    def revoke(self, cred: Credential) -> None:
        self._revoked.add(cred.token)
