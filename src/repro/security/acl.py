"""Access control and quotas for the entry guard (§III-C, §V-A).

Two layers:

* :class:`AccessControl` — per-table read grants checked when the job
  manager "verif[ies] accessed right of specific data set";
* :class:`QuotaPolicy` — per-user daily query / scanned-byte quotas the
  entry guard enforces before admitting traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Set, Tuple

from repro.errors import AccessDeniedError, QuotaExceededError


class AccessControl:
    """Grant table: which users may read which tables."""

    def __init__(self) -> None:
        self._grants: Set[Tuple[str, str]] = set()
        self._admins: Set[str] = set()

    def grant(self, user: str, table: str) -> None:
        self._grants.add((user, table))

    def revoke(self, user: str, table: str) -> None:
        self._grants.discard((user, table))

    def make_admin(self, user: str) -> None:
        """Admins read everything (operators debugging the search engine)."""
        self._admins.add(user)

    def can_read(self, user: str, table: str) -> bool:
        return user in self._admins or (user, table) in self._grants

    def check_read(self, user: str, tables: Iterable[str]) -> None:
        denied = sorted(t for t in tables if not self.can_read(user, t))
        if denied:
            raise AccessDeniedError(f"user {user!r} may not read tables {denied}")


@dataclass
class Quota:
    """Per-user admission limits over a rolling day."""

    max_queries_per_day: int = 10_000
    max_scan_bytes_per_day: float = float("inf")


class RateLimiter:
    """Per-user token bucket — the entry guard's "capability protection
    to avoid malicious attacks" (§III-C).

    Each user accrues ``rate_per_s`` tokens up to ``burst``; a request
    with no token available is rejected rather than queued, so a runaway
    client can't build an unbounded backlog in the master.
    """

    def __init__(self, rate_per_s: float = 5.0, burst: int = 10):
        if rate_per_s <= 0 or burst < 1:
            raise ValueError("rate must be positive and burst >= 1")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._tokens: Dict[str, float] = {}
        self._last: Dict[str, float] = {}
        self.rejections = 0

    def try_acquire(self, user: str, now: float) -> bool:
        tokens = self._tokens.get(user, float(self.burst))
        last = self._last.get(user, now)
        tokens = min(self.burst, tokens + (now - last) * self.rate_per_s)
        self._last[user] = now
        if tokens < 1.0:
            self._tokens[user] = tokens
            self.rejections += 1
            return False
        self._tokens[user] = tokens - 1.0
        return True

    def check(self, user: str, now: float) -> None:
        if not self.try_acquire(user, now):
            raise QuotaExceededError(
                f"user {user!r} exceeded the request rate limit "
                f"({self.rate_per_s}/s, burst {self.burst})"
            )


class QuotaPolicy:
    """Tracks per-user consumption against quotas.

    The clock is the simulation clock; usage windows reset every
    86,400 simulated seconds.
    """

    DAY_S = 86_400.0

    def __init__(self, default: Quota = Quota()):
        self._default = default
        self._quotas: Dict[str, Quota] = {}
        self._window_start: Dict[str, float] = {}
        self._queries: Dict[str, int] = {}
        self._scan_bytes: Dict[str, float] = {}

    def set_quota(self, user: str, quota: Quota) -> None:
        self._quotas[user] = quota

    def _roll(self, user: str, now: float) -> None:
        start = self._window_start.get(user, now)
        if now - start >= self.DAY_S or user not in self._window_start:
            self._window_start[user] = now
            self._queries[user] = 0
            self._scan_bytes[user] = 0.0

    def admit_query(self, user: str, now: float) -> None:
        """Count one query; raise :class:`QuotaExceededError` over quota."""
        self._roll(user, now)
        quota = self._quotas.get(user, self._default)
        if self._queries[user] + 1 > quota.max_queries_per_day:
            raise QuotaExceededError(f"user {user!r} exceeded daily query quota")
        self._queries[user] += 1

    def charge_scan(self, user: str, nbytes: float, now: float) -> None:
        self._roll(user, now)
        quota = self._quotas.get(user, self._default)
        if self._scan_bytes[user] + nbytes > quota.max_scan_bytes_per_day:
            raise QuotaExceededError(f"user {user!r} exceeded daily scan-byte quota")
        self._scan_bytes[user] += nbytes

    def usage(self, user: str) -> Tuple[int, float]:
        return self._queries.get(user, 0), self._scan_bytes.get(user, 0.0)
