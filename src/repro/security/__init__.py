"""Authentication, authorization and quotas (§V-A)."""

from repro.security.acl import AccessControl, Quota, QuotaPolicy, RateLimiter
from repro.security.auth import Credential, SSOAuthority

__all__ = ["AccessControl", "Credential", "Quota", "QuotaPolicy", "RateLimiter", "SSOAuthority"]
