"""Per-query trace spans over the simulated clock (S47).

A :class:`Tracer` owns one span tree per job.  Spans carry simulated-time
bounds (``start_s``/``end_s``), free-form JSON-able tags, and children;
the tree mirrors the execution path::

    job
    ├─ fetch_broadcasts
    └─ task.attempt0
       ├─ dispatch          (master → stem hops, CONTROL bytes)
       ├─ broadcast_ship    (WRITE bytes, when the leaf lacks the frames)
       ├─ queue_wait        (leaf slot contention)
       ├─ index_probe       (SmartIndex cover: full/partial/miss)
       ├─ scan              (modeled IO charge)
       ├─ aggregate | project  (modeled CPU charge)
       └─ result_return     (READ bytes upstream, or spill)

``index_probe`` tags ``atom_hits`` / ``complement_hits`` /
``atom_misses`` always; with the semantic index enabled it adds
``subsumption_hits``, ``residual_clauses``, and the mean candidate
``residual_fraction``, and the ``scan`` span repeats the residual clause
count and fraction when a candidate-mask partial scan ran.

Everything is plain Python over values passed in from the caller — the
module never touches the :class:`~repro.sim.events.Simulator`, so adding
or exporting spans cannot perturb event ordering.  Tracing is off unless
``JobOptions.trace=True``; the disabled path allocates nothing.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer"]


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars / odd numerics to plain JSON types."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


class Span:
    """One timed region of a query's execution.

    ``end_s`` is ``None`` while the span is open; :meth:`finish` is
    idempotent so error paths may close a span that a ``finally`` block
    closes again.
    """

    __slots__ = ("name", "start_s", "end_s", "tags", "children")

    def __init__(self, name: str, start_s: float):
        self.name = name
        self.start_s = float(start_s)
        self.end_s: Optional[float] = None
        self.tags: Dict[str, Any] = {}
        self.children: List["Span"] = []

    def child(self, name: str, now: float) -> "Span":
        span = Span(name, now)
        self.children.append(span)
        return span

    def event(self, name: str, now: float, **tags: Any) -> "Span":
        """A zero-duration child marking a point occurrence (e.g. an
        injected fault): opened, tagged and finished at ``now``."""
        span = self.child(name, now)
        for k, v in tags.items():
            span.tag(k, v)
        span.finish(now)
        return span

    def tag(self, key: str, value: Any) -> "Span":
        self.tags[key] = _jsonable(value)
        return self

    def finish(self, now: float) -> None:
        if self.end_s is None:
            self.end_s = float(now)

    def finish_tree(self, now: float) -> None:
        """Close this span and any still-open descendants at ``now``."""
        for span in self.walk():
            span.finish(now)

    @property
    def duration_s(self) -> float:
        return (self.end_s if self.end_s is not None else self.start_s) - self.start_s

    def walk(self) -> Iterator["Span"]:
        yield self
        for c in self.children:
            yield from c.walk()

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"name": self.name, "start_s": self.start_s, "end_s": self.end_s}
        if self.tags:
            d["tags"] = dict(self.tags)
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Span":
        span = cls(d["name"], d["start_s"])
        span.end_s = d.get("end_s")
        span.tags = dict(d.get("tags", {}))
        span.children = [cls.from_dict(c) for c in d.get("children", [])]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.start_s:.6f}..{self.end_s}, tags={self.tags})"


class Tracer:
    """Span-tree collector for one job."""

    __slots__ = ("job_id", "root")

    def __init__(self, job_id: str):
        self.job_id = job_id
        self.root: Optional[Span] = None

    def begin(self, name: str, now: float, **tags: Any) -> Span:
        self.root = Span(name, now)
        for k, v in tags.items():
            self.root.tag(k, v)
        return self.root

    # -- queries -------------------------------------------------------------

    def spans(self) -> Iterator[Span]:
        if self.root is not None:
            yield from self.root.walk()

    @property
    def span_count(self) -> int:
        return sum(1 for _ in self.spans())

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans() if s.name == name]

    def totals_by_name(self) -> Dict[str, Dict[str, float]]:
        """``{span name: {"count": n, "total_s": summed duration}}``."""
        out: Dict[str, Dict[str, float]] = {}
        for span in self.spans():
            agg = out.setdefault(span.name, {"count": 0, "total_s": 0.0})
            agg["count"] += 1
            agg["total_s"] += span.duration_s
        return out

    def tag_sum(self, key: str, span_name: Optional[str] = None) -> float:
        total = 0.0
        for span in self.spans():
            if span_name is not None and span.name != span_name:
                continue
            v = span.tags.get(key)
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                total += v
        return total

    def tag_values(self, key: str, span_name: Optional[str] = None) -> Dict[str, int]:
        """Occurrence count of each distinct value of a string tag,
        optionally restricted to spans with ``span_name``."""
        out: Dict[str, int] = {}
        for span in self.spans():
            if span_name is not None and span.name != span_name:
                continue
            v = span.tags.get(key)
            if isinstance(v, str):
                out[v] = out.get(v, 0) + 1
        return out

    def bytes_by_class(self) -> Dict[str, float]:
        """Sum of ``bytes`` tags grouped by the span's ``traffic_class`` tag."""
        out: Dict[str, float] = {}
        for span in self.spans():
            cls = span.tags.get("traffic_class")
            b = span.tags.get("bytes")
            if cls is None or not isinstance(b, (int, float)):
                continue
            out[cls] = out.get(cls, 0.0) + b
        return out

    # -- export --------------------------------------------------------------

    def export(self) -> Dict[str, Any]:
        """A JSON-ready dict; ``json.dumps(tracer.export())`` always works."""
        return {
            "job_id": self.job_id,
            "root": self.root.to_dict() if self.root is not None else None,
        }

    def export_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.export(), indent=indent, sort_keys=True)

    @classmethod
    def from_export(cls, d: Dict[str, Any]) -> "Tracer":
        tracer = cls(d["job_id"])
        if d.get("root") is not None:
            tracer.root = Span.from_dict(d["root"])
        return tracer
