"""Observability: per-query trace spans over the simulated clock (S47)."""

from .trace import Span, Tracer

__all__ = ["Span", "Tracer"]
