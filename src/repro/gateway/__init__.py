"""Multi-tenant SQL gateway: sessions, admission control, fair share (S52).

Enable by setting :class:`~repro.core.feisu.FeisuConfig`'s ``gateway``
field to a :class:`GatewayConfig`; the cluster then exposes the built
:class:`SQLGateway` as ``cluster.gateway``.  With the field left
``None`` (the default) nothing here is even imported.
"""

from repro.gateway.admission import AdmissionController, estimate_query_memory
from repro.gateway.config import GatewayConfig, TenantPolicy
from repro.gateway.driver import (
    MultiSessionReport,
    TenantReport,
    build_report,
    jain_index,
    percentile,
    run_sessions,
)
from repro.gateway.fairshare import DeficitRoundRobin, TenantQueue
from repro.gateway.gateway import GatewaySnapshot, SQLGateway, TenantSnapshot
from repro.gateway.session import (
    GatewayQuery,
    GatewaySession,
    QueryStatus,
    SessionState,
)

__all__ = [
    "AdmissionController",
    "DeficitRoundRobin",
    "GatewayConfig",
    "GatewayQuery",
    "GatewaySession",
    "GatewaySnapshot",
    "MultiSessionReport",
    "QueryStatus",
    "SQLGateway",
    "SessionState",
    "TenantPolicy",
    "TenantQueue",
    "TenantReport",
    "TenantSnapshot",
    "build_report",
    "estimate_query_memory",
    "jain_index",
    "percentile",
    "run_sessions",
]
