"""Weighted deficit-round-robin across tenant queues (S52).

Classic DRR adapted to query serving: each backlogged tenant holds a
deficit counter; visiting the ring tops every eligible tenant up by
``quantum × weight`` and serves heads whose cost fits their deficit.
Costs are task units (a query's planned task count), so a tenant
issuing 40-task scans and a tenant issuing 1-task lookups still split
capacity by weight, not by query count.

The scheduler is work-conserving and O(#tenants) per pick: instead of
looping one quantum at a time, it computes the minimum number of rounds
until *some* eligible head fits and applies them in one step.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.gateway.config import TenantPolicy
from repro.gateway.session import GatewayQuery


class TenantQueue:
    """One tenant's admission queue plus its serving books."""

    def __init__(self, name: str, policy: TenantPolicy):
        self.name = name
        self.policy = policy
        self.queue: Deque[GatewayQuery] = deque()
        self.deficit = 0.0
        #: Currently running queries / their summed memory estimates.
        self.running = 0
        self.memory_in_use = 0.0
        # Lifecycle counters (surfaced through metrics).
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.killed = 0
        self.timed_out = 0
        #: Task units granted to this tenant (counted at emission).
        self.served_units = 0.0
        #: Accumulated simulated seconds with a non-empty admission queue
        #: — the denominator for demand-normalized fairness (a tenant is
        #: only owed its share while it actually wants more service).
        self.backlogged_s = 0.0
        #: Closed backlog intervals, for windowed fairness measurement
        #: (fairness is only meaningful between tenants whose backlogs
        #: overlap in time).
        self.backlog_spans: List[Tuple[float, float]] = []
        self._backlog_since: Optional[float] = None

    @property
    def depth(self) -> int:
        return len(self.queue)

    def note_backlog(self, now: float) -> None:
        """The queue just became (or stays) non-empty."""
        if self._backlog_since is None:
            self._backlog_since = now

    def note_drain(self, now: float) -> None:
        """The queue just emptied; bank the backlogged span."""
        if self._backlog_since is not None:
            self.backlogged_s += now - self._backlog_since
            self.backlog_spans.append((self._backlog_since, now))
            self._backlog_since = None

    def backlogged_total(self, now: float) -> float:
        """Backlogged seconds including any still-open span."""
        open_span = now - self._backlog_since if self._backlog_since is not None else 0.0
        return self.backlogged_s + open_span

    def spans(self, now: float) -> List[Tuple[float, float]]:
        """All backlog intervals, closing any still-open span at ``now``."""
        out = list(self.backlog_spans)
        if self._backlog_since is not None:
            out.append((self._backlog_since, now))
        return out

    def head(self) -> Optional[GatewayQuery]:
        return self.queue[0] if self.queue else None

    def remove(self, query: GatewayQuery) -> bool:
        try:
            self.queue.remove(query)
        except ValueError:
            return False
        if not self.queue:
            self.deficit = 0.0
        return True


class DeficitRoundRobin:
    """The tenant ring and its deficit bookkeeping."""

    def __init__(self, quantum_units: float):
        if quantum_units <= 0:
            raise ValueError("quantum_units must be positive")
        self.quantum_units = quantum_units
        self.tenants: Dict[str, TenantQueue] = {}
        self._ring: List[str] = []
        self._cursor = 0

    def tenant(self, name: str, policy: TenantPolicy) -> TenantQueue:
        """Get-or-create a tenant's queue (first contact registers it)."""
        tq = self.tenants.get(name)
        if tq is None:
            tq = TenantQueue(name, policy)
            self.tenants[name] = tq
            self._ring.append(name)
        return tq

    def enqueue(self, tq: TenantQueue, query: GatewayQuery) -> None:
        tq.queue.append(query)

    def next_eligible(
        self, can_serve: Callable[[TenantQueue, GatewayQuery], bool]
    ) -> Optional[Tuple[TenantQueue, GatewayQuery]]:
        """Pick the next (tenant, query) to emit, or None.

        ``can_serve`` expresses the admission constraints beyond fair
        share (per-tenant concurrency, memory budgets); tenants it
        blocks neither serve nor accrue deficit this pick.
        """
        order = [
            self.tenants[self._ring[(self._cursor + i) % len(self._ring)]]
            for i in range(len(self._ring))
        ] if self._ring else []
        eligible = [tq for tq in order if tq.queue and can_serve(tq, tq.queue[0])]
        if not eligible:
            return None
        for _attempt in range(2):
            for tq in eligible:
                head = tq.queue[0]
                if tq.deficit >= head.cost_units:
                    tq.queue.popleft()
                    tq.deficit -= head.cost_units
                    if not tq.queue:
                        # Standard DRR: an idle tenant banks no credit.
                        self.deficit_reset(tq)
                    self._cursor = (self._ring.index(tq.name) + 1) % len(self._ring)
                    return tq, head
            # No head fits: apply, in one step, the fewest whole rounds
            # after which the cheapest-to-reach head fits its deficit.
            rounds = min(
                math.ceil(
                    (tq.queue[0].cost_units - tq.deficit)
                    / (self.quantum_units * max(tq.policy.weight, 1e-9))
                )
                for tq in eligible
            )
            for tq in eligible:
                tq.deficit += rounds * self.quantum_units * tq.policy.weight
        return None  # pragma: no cover - the top-up guarantees a fit

    @staticmethod
    def deficit_reset(tq: TenantQueue) -> None:
        tq.deficit = 0.0
