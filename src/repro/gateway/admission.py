"""Admission control: slots, memory budgets, tenant queues (S52).

The controller decides, for every queued query, *queue or run or
reject*:

* a tenant whose admission queue is at ``max_queued`` rejects new
  submissions outright (back-pressure beats unbounded backlog);
* a query waits while the cluster-wide slot pool, the cluster-wide
  memory budget, the tenant's concurrent-slot quota, or the tenant's
  memory budget is exhausted;
* among runnable queries, the weighted deficit-round-robin picks whose
  turn it is.

Memory estimates are planner-derived: broadcast (dimension) tables are
held whole for the query's lifetime, plus one peak task working set —
the §III resource-agreement currency, kept deliberately simple and
deterministic.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import GatewayOverloadedError
from repro.gateway.config import GatewayConfig
from repro.gateway.fairshare import DeficitRoundRobin, TenantQueue
from repro.gateway.session import GatewayQuery
from repro.planner.physical import PhysicalPlan


def _task_bytes(task) -> float:
    encoded = task.block.bytes_for(task.columns)
    if encoded <= 0:
        # Projection-free scans (SELECT COUNT(*)) still hold per-row
        # presence state; floor the estimate so no query is "free".
        encoded = 8 * task.block.num_rows
    return encoded * task.block.scale_factor


def estimate_query_memory(plan: PhysicalPlan, catalog) -> float:
    """Planner-derived working-set estimate for one query, in bytes."""
    peak_task = max((_task_bytes(task) for task in plan.tasks), default=0.0)
    broadcast = 0.0
    for bc in plan.broadcasts:
        table = catalog.get(bc.table_name)
        broadcast += sum(
            ref.bytes_for(bc.columns) * ref.scale_factor for ref in table.blocks
        )
    return float(broadcast + peak_task)


class AdmissionController:
    """Budgets plus the fair-share pick over tenant queues."""

    def __init__(self, config: GatewayConfig):
        self.config = config
        self.drr = DeficitRoundRobin(config.quantum_units)
        self.running = 0
        self.memory_in_use = 0.0
        self.rejected_total = 0

    # -- tenant registry ---------------------------------------------------

    def tenant(self, name: str) -> TenantQueue:
        return self.drr.tenant(name, self.config.policy_for(name))

    def tenants(self):
        return self.drr.tenants.values()

    # -- queueing ----------------------------------------------------------

    def enqueue(self, tq: TenantQueue, query: GatewayQuery) -> None:
        """Queue a pre-flighted query; raises when the tenant queue is full."""
        if tq.depth >= tq.policy.max_queued:
            tq.rejected += 1
            self.rejected_total += 1
            raise GatewayOverloadedError(
                f"tenant {tq.name!r} admission queue is full "
                f"({tq.depth}/{tq.policy.max_queued}); retry later"
            )
        tq.admitted += 1
        self.drr.enqueue(tq, query)

    def queue_depth(self) -> int:
        return sum(tq.depth for tq in self.tenants())

    # -- admission decision ------------------------------------------------

    def _memory_fits(self, in_use: float, budget: float, need: float, running: int) -> bool:
        if in_use + need <= budget:
            return True
        # An over-budget singleton still runs alone: otherwise a query
        # estimated above the budget would starve forever.
        return running == 0 and in_use == 0.0

    def can_serve(self, tq: TenantQueue, query: GatewayQuery) -> bool:
        """Constraints beyond fair share for one head-of-queue query."""
        if tq.running >= tq.policy.max_concurrent:
            return False
        if not self._memory_fits(
            self.memory_in_use, self.config.memory_budget_bytes, query.memory_bytes, self.running
        ):
            return False
        return self._memory_fits(
            tq.memory_in_use, tq.policy.memory_budget_bytes, query.memory_bytes, tq.running
        )

    def next(self) -> Optional[Tuple[TenantQueue, GatewayQuery]]:
        """The next query to emit, or None while budgets are exhausted."""
        if self.running >= self.config.total_slots:
            return None
        return self.drr.next_eligible(self.can_serve)

    # -- slot accounting ---------------------------------------------------

    def on_emit(self, tq: TenantQueue, query: GatewayQuery) -> None:
        self.running += 1
        self.memory_in_use += query.memory_bytes
        tq.running += 1
        tq.memory_in_use += query.memory_bytes
        tq.served_units += query.cost_units

    def on_release(self, tq: TenantQueue, query: GatewayQuery) -> None:
        self.running -= 1
        self.memory_in_use -= query.memory_bytes
        tq.running -= 1
        tq.memory_in_use -= query.memory_bytes
