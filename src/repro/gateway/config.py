"""Gateway shape and per-tenant resource agreements (S52).

The paper's §III "resource agreement" is the contract between Feisu and
each business tenant: how much of the shared cluster a tenant may hold
at once.  :class:`TenantPolicy` is that contract for one tenant —
fair-share weight, concurrent-slot quota, queue depth, memory budget,
query timeout — and :class:`GatewayConfig` is the deployment-wide shape
(global slot and memory budgets, scheduler quantum).  It plugs into
:class:`repro.core.feisu.FeisuConfig` via the ``gateway`` field; leaving
that field ``None`` (the default) builds no gateway at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class TenantPolicy:
    """One tenant's resource agreement."""

    #: Fair-share weight: a tenant with weight 2 receives twice the
    #: service of a weight-1 tenant while both are backlogged.
    weight: float = 1.0
    #: Concurrent-slot quota: at most this many of the tenant's queries
    #: run at once, however many gateway slots are free.
    max_concurrent: int = 8
    #: Admission-queue depth; submissions beyond it are rejected with
    #: :class:`~repro.errors.GatewayOverloadedError` (back-pressure).
    max_queued: int = 256
    #: Cap on the summed memory estimates of the tenant's running
    #: queries; queries queue (not reject) while it is exhausted.
    memory_budget_bytes: float = float("inf")
    #: Default per-query timeout measured from *submission* (queue wait
    #: included); ``None`` = unbounded.  Overridable per query.
    query_timeout_s: Optional[float] = None


@dataclass
class GatewayConfig:
    """Deployment-wide gateway knobs."""

    #: Cluster-wide concurrent-query slots.  Must not exceed the
    #: master's ``max_concurrent_jobs`` — otherwise the master's own
    #: FIFO candidate queue would re-order what the fair-share scheduler
    #: emits.
    total_slots: int = 32
    #: Cluster-wide cap on the summed memory estimates of running
    #: queries.  A single query estimated above the cap is still served
    #: when it would run alone (no permanent starvation).
    memory_budget_bytes: float = float("inf")
    #: Deficit-round-robin quantum, in task units added per round and
    #: unit of weight.  Larger quanta are cheaper but burstier.
    quantum_units: float = 4.0
    #: Policy for tenants without an explicit entry in ``tenants``.
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    #: Per-tenant resource agreements, keyed by tenant name.
    tenants: Dict[str, TenantPolicy] = field(default_factory=dict)
    #: Collect gateway-side spans (one ``gateway.query`` span per
    #: admitted query, with a ``queue_wait`` child) in
    #: ``SQLGateway.tracer``.  Off by default: span trees grow with
    #: every query, which thousand-session drivers don't want.
    trace: bool = False

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.tenants.get(tenant, self.default_policy)
