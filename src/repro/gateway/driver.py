"""Concurrent multi-session replay driver and its report (S52).

:func:`run_sessions` replays :class:`~repro.workload.generator.SessionTrace`
streams against one gateway on the simulated clock: sessions open at
their trace times, submit their queries with think-time gaps, and the
driver steps the simulation until every admitted query resolves.  The
resulting :class:`MultiSessionReport` carries the serving-quality
numbers the gateway bench gates on — p50/p99 simulated latency split
into queue wait and service, plus a demand-normalized Jain fairness
index across tenants.

Fairness is measured *windowed*: the run splits into time slices, and a
slice contributes a Jain index over the tenants backlogged for its whole
duration (weight-normalized units emitted in the slice).  Conditioning
on contemporaneous demand is what makes the number meaningful — a
work-conserving scheduler hands the whole cluster to the last backlogged
tenant once everyone else drains, which whole-run averages would misread
as favoritism, and a light Zipf-tail tenant that never queued is not
evidence about the scheduler either way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import FeisuError, GatewayOverloadedError
from repro.gateway.gateway import SQLGateway
from repro.gateway.session import GatewayQuery, GatewaySession, QueryStatus
from repro.workload.generator import SessionTrace


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 1]); 0.0 when empty."""
    if not values:
        return 0.0
    xs = sorted(values)
    k = (len(xs) - 1) * q
    lo, hi = math.floor(k), math.ceil(k)
    if lo == hi:
        return float(xs[lo])
    return float(xs[lo] + (xs[hi] - xs[lo]) * (k - lo))


def jain_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly even, → 1/n = one hog."""
    if not allocations:
        return 1.0
    total = sum(allocations)
    squares = sum(x * x for x in allocations)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(allocations) * squares)


@dataclass
class TenantReport:
    """One tenant's share of a multi-session run."""

    tenant: str
    weight: float
    sessions: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    killed: int = 0
    timed_out: int = 0
    served_units: float = 0.0
    backlogged_s: float = 0.0
    queue_wait_p50_s: float = 0.0
    queue_wait_p99_s: float = 0.0
    #: served_units / (weight × backlogged_s); None when the tenant was
    #: not backlogged long enough to measure.
    normalized_rate: Optional[float] = None


@dataclass
class MultiSessionReport:
    """What the gateway bench gates on."""

    sessions: int = 0
    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    killed: int = 0
    timed_out: int = 0
    makespan_s: float = 0.0
    #: Emitted→finished simulated latency over successful queries.
    service_p50_s: float = 0.0
    service_p99_s: float = 0.0
    #: Submission→finished simulated latency (wait + service).
    total_p50_s: float = 0.0
    total_p99_s: float = 0.0
    queue_wait_p50_s: float = 0.0
    queue_wait_p99_s: float = 0.0
    #: Windowed Jain index; ``fairness_tenants`` is how many tenants
    #: participated in at least one measured slice.
    jain_fairness: float = 1.0
    fairness_tenants: int = 0
    per_tenant: Dict[str, TenantReport] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        """Flat numeric view for JSON baselines and metrics."""
        out = {
            "sessions": float(self.sessions),
            "submitted": float(self.submitted),
            "rejected": float(self.rejected),
            "completed": float(self.completed),
            "failed": float(self.failed),
            "killed": float(self.killed),
            "timed_out": float(self.timed_out),
            "makespan_s": self.makespan_s,
            "service_p50_s": self.service_p50_s,
            "service_p99_s": self.service_p99_s,
            "total_p50_s": self.total_p50_s,
            "total_p99_s": self.total_p99_s,
            "queue_wait_p50_s": self.queue_wait_p50_s,
            "queue_wait_p99_s": self.queue_wait_p99_s,
            "jain_fairness": self.jain_fairness,
            "fairness_tenants": float(self.fairness_tenants),
        }
        return out


def run_sessions(
    gateway: SQLGateway,
    traces: Sequence[SessionTrace],
    limit_s: float = float("inf"),
    min_backlog_fraction: float = 0.2,
) -> MultiSessionReport:
    """Replay ``traces`` concurrently and drain the gateway.

    Users referenced by the traces must already exist on the cluster
    (with read grants); :class:`~repro.errors.GatewayOverloadedError`
    rejections are counted, any other submission error propagates.
    Returns the report; raises on deadlock or when the simulated clock
    passes ``limit_s``.
    """
    sim = gateway.cluster.sim
    start = sim.now
    pending = {"opens": len(traces), "submits": sum(len(t.queries) for t in traces)}
    handles: List[GatewayQuery] = []
    sessions: List[GatewaySession] = []

    def _submit(session: GatewaySession, sql: str) -> None:
        pending["submits"] -= 1
        try:
            handles.append(session.submit(sql))
        except GatewayOverloadedError:
            pass  # counted on the tenant queue

    def _open(trace: SessionTrace) -> None:
        pending["opens"] -= 1
        session = gateway.open_session(trace.user, tenant=trace.tenant)
        sessions.append(session)
        for tq in trace.queries:
            sim.schedule(max(0.0, tq.at_s - (sim.now - start)), _submit, session, tq.sql)

    for trace in traces:
        sim.schedule(max(0.0, trace.opens_at_s - (sim.now - start)), _open, trace)

    while pending["opens"] or pending["submits"] or gateway.in_flight() > 0:
        if not sim.step():
            raise FeisuError("multi-session driver deadlock: work pending, no events")
        if sim.now - start > limit_s:
            raise FeisuError(f"multi-session run exceeded the {limit_s}s limit")

    return build_report(gateway, handles, sessions, start, min_backlog_fraction)


def windowed_fairness(
    gateway: SQLGateway,
    handles: Sequence[GatewayQuery],
    start_s: float,
    end_s: float,
    num_slices: int = 20,
) -> tuple:
    """(Jain index, participating-tenant count) over backlogged windows.

    Splits ``[start_s, end_s]`` into ``num_slices`` slices; a slice with
    at least two tenants backlogged throughout contributes the Jain index
    of their weight-normalized emitted units, weighted by the slice's
    total emitted units.  Returns ``(1.0, 0)`` when no slice qualifies
    (the run never had contended, overlapping demand).
    """
    if end_s <= start_s:
        return 1.0, 0
    spans = {tq.name: tq.spans(end_s) for tq in gateway.admission.tenants()}
    weights = {tq.name: max(tq.policy.weight, 1e-9) for tq in gateway.admission.tenants()}
    emissions = [
        (h.emitted_at, h.tenant, h.cost_units)
        for h in handles
        if h.emitted_at is not None
    ]
    emissions.sort(key=lambda e: e[0])
    width = (end_s - start_s) / num_slices
    weighted_sum = 0.0
    weight_total = 0.0
    participants: set = set()
    cursor = 0
    for i in range(num_slices):
        lo = start_s + i * width
        hi = lo + width
        backlogged = [
            name
            for name, sp in spans.items()
            if any(a <= lo and b >= hi for a, b in sp)
        ]
        # Advance through the time-sorted emissions once across slices.
        units: Dict[str, float] = {}
        while cursor < len(emissions) and emissions[cursor][0] < hi:
            _, tenant, cost = emissions[cursor]
            units[tenant] = units.get(tenant, 0.0) + cost
            cursor += 1
        if len(backlogged) < 2:
            continue
        allocations = [units.get(name, 0.0) / weights[name] for name in backlogged]
        slice_units = sum(units.get(name, 0.0) for name in backlogged)
        if slice_units <= 0.0:
            continue
        participants.update(backlogged)
        weighted_sum += jain_index(allocations) * slice_units
        weight_total += slice_units
    if weight_total == 0.0:
        return 1.0, 0
    return weighted_sum / weight_total, len(participants)


def build_report(
    gateway: SQLGateway,
    handles: Sequence[GatewayQuery],
    sessions: Sequence[GatewaySession],
    start_s: float,
    min_backlog_fraction: float = 0.2,
) -> MultiSessionReport:
    """Summarize a finished run (all ``handles`` terminal)."""
    now = gateway.cluster.sim.now
    report = MultiSessionReport(sessions=len(sessions), makespan_s=now - start_s)
    ok = [h for h in handles if h.status is QueryStatus.SUCCEEDED]
    report.service_p50_s = percentile([h.service_s for h in ok], 0.50)
    report.service_p99_s = percentile([h.service_s for h in ok], 0.99)
    report.total_p50_s = percentile([h.total_s for h in ok], 0.50)
    report.total_p99_s = percentile([h.total_s for h in ok], 0.99)
    report.queue_wait_p50_s = percentile([h.queue_wait_s for h in handles], 0.50)
    report.queue_wait_p99_s = percentile([h.queue_wait_s for h in handles], 0.99)

    sessions_per_tenant: Dict[str, int] = {}
    for session in sessions:
        sessions_per_tenant[session.tenant] = sessions_per_tenant.get(session.tenant, 0) + 1
    waits_per_tenant: Dict[str, List[float]] = {}
    for h in handles:
        waits_per_tenant.setdefault(h.tenant, []).append(h.queue_wait_s)

    allocations: List[float] = []
    for tq in gateway.admission.tenants():
        busy = tq.backlogged_total(now)
        waits = waits_per_tenant.get(tq.name, [])
        tr = TenantReport(
            tenant=tq.name,
            weight=tq.policy.weight,
            sessions=sessions_per_tenant.get(tq.name, 0),
            admitted=tq.admitted,
            rejected=tq.rejected,
            completed=tq.completed,
            failed=tq.failed,
            killed=tq.killed,
            timed_out=tq.timed_out,
            served_units=tq.served_units,
            backlogged_s=busy,
            queue_wait_p50_s=percentile(waits, 0.50),
            queue_wait_p99_s=percentile(waits, 0.99),
        )
        if busy >= min_backlog_fraction * report.makespan_s and busy > 0.0:
            tr.normalized_rate = tq.served_units / (max(tq.policy.weight, 1e-9) * busy)
            allocations.append(tr.normalized_rate)
        report.per_tenant[tq.name] = tr
        report.submitted += tq.admitted
        report.rejected += tq.rejected
        report.completed += tq.completed
        report.failed += tq.failed
        report.killed += tq.killed
        report.timed_out += tq.timed_out
    report.jain_fairness, report.fairness_tenants = windowed_fairness(
        gateway, handles, start_s, now
    )
    return report
