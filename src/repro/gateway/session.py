"""Gateway sessions and query handles (S52).

A :class:`GatewaySession` is one authenticated user connection: it
carries the user's credential, a per-session :class:`QueryHistory`, and
the set of query handles it has submitted.  A :class:`GatewayQuery` is
the client's view of one submission as it moves through the gateway —
queued under admission control, emitted to the master, resolved with a
result or an error.  Both live entirely on the simulated clock.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, List, Optional

from repro.client.history import QueryHistory
from repro.cluster.jobs import Job, JobOptions
from repro.engine.executor import QueryResult
from repro.errors import FeisuError, SessionClosedError
from repro.security.auth import Credential
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gateway.gateway import SQLGateway


class QueryStatus(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    KILLED = "killed"
    TIMED_OUT = "timed_out"


#: Statuses from which a query can no longer move.
TERMINAL = (
    QueryStatus.SUCCEEDED,
    QueryStatus.FAILED,
    QueryStatus.KILLED,
    QueryStatus.TIMED_OUT,
)


class SessionState(enum.Enum):
    OPEN = "open"
    CLOSED = "closed"
    KILLED = "killed"


class GatewayQuery:
    """One submission's lifecycle through the gateway.

    ``done`` fires (with the handle itself as value) exactly once, when
    the query reaches a terminal status — whether it ran, was rejected
    by the master's entry guard at emission, was killed with its
    session, or timed out while still queued.
    """

    __slots__ = (
        "query_id",
        "session",
        "sql",
        "options",
        "cost_units",
        "memory_bytes",
        "submitted_at",
        "emitted_at",
        "finished_at",
        "status",
        "job",
        "error",
        "done",
        "timeout_s",
        "_kill_reason",
        "_span",
        "_wait_span",
    )

    def __init__(
        self,
        query_id: str,
        session: "GatewaySession",
        sql: str,
        options: JobOptions,
        cost_units: float,
        memory_bytes: float,
        submitted_at: float,
        done: Event,
        timeout_s: Optional[float],
    ):
        self.query_id = query_id
        self.session = session
        self.sql = sql
        self.options = options
        self.cost_units = cost_units
        self.memory_bytes = memory_bytes
        self.submitted_at = submitted_at
        self.emitted_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.status = QueryStatus.QUEUED
        self.job: Optional[Job] = None
        self.error: Optional[BaseException] = None
        self.done = done
        self.timeout_s = timeout_s
        #: Set before cancelling the underlying job so the completion
        #: callback can tell a kill/timeout from an organic failure.
        self._kill_reason = None
        self._span = None
        self._wait_span = None

    # -- derived views ----------------------------------------------------

    @property
    def user(self) -> str:
        return self.session.user

    @property
    def tenant(self) -> str:
        return self.session.tenant

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL

    @property
    def queue_wait_s(self) -> float:
        """Simulated seconds spent under admission control."""
        if self.emitted_at is None:
            end = self.finished_at if self.finished_at is not None else self.submitted_at
            return end - self.submitted_at
        return self.emitted_at - self.submitted_at

    @property
    def service_s(self) -> float:
        """Simulated seconds the cluster worked on the query."""
        if self.emitted_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.emitted_at

    @property
    def total_s(self) -> float:
        """Submission-to-resolution simulated latency (wait + service)."""
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.submitted_at

    def result(self) -> QueryResult:
        """The query result; raises the query's error if it failed."""
        if not self.terminal:
            raise FeisuError(f"{self.query_id} has not finished (status {self.status.value})")
        if self.error is not None:
            raise self.error
        assert self.job is not None and self.job.result is not None
        return self.job.result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GatewayQuery {self.query_id} {self.tenant}/{self.user} {self.status.value}>"


class GatewaySession:
    """One user's authenticated handle onto the gateway."""

    def __init__(
        self,
        gateway: "SQLGateway",
        session_id: str,
        user: str,
        tenant: str,
        credential: Credential,
    ):
        self.gateway = gateway
        self.session_id = session_id
        self.user = user
        self.tenant = tenant
        self.credential = credential
        self.state = SessionState.OPEN
        self.opened_at = gateway.cluster.sim.now
        #: Per-session query history (private SmartIndex personalization,
        #: same structure the client-end keeps).
        self.history = QueryHistory()
        #: Every handle this session submitted, in submission order.
        self.queries: List[GatewayQuery] = []

    # -- submission -------------------------------------------------------

    def submit(
        self,
        sql: str,
        options: Optional[JobOptions] = None,
        timeout_s: Optional[float] = None,
    ) -> GatewayQuery:
        """Pre-flight, enqueue under admission control, return a handle.

        Raises synchronously on syntax errors, ACL denial, a closed
        session, or a full tenant queue; otherwise the returned handle's
        ``done`` event resolves once the query reaches a terminal state.
        """
        if self.state is not SessionState.OPEN:
            raise SessionClosedError(
                f"session {self.session_id} is {self.state.value}; open a new session"
            )
        return self.gateway._submit(self, sql, options, timeout_s)  # noqa: SLF001

    def query(
        self,
        sql: str,
        options: Optional[JobOptions] = None,
        timeout_s: Optional[float] = None,
    ) -> QueryResult:
        """Submit and drive the simulation until the query resolves.

        Single-session convenience only — concurrent drivers submit
        handles and run the simulation themselves.
        """
        handle = self.submit(sql, options, timeout_s)
        self.gateway.cluster.sim.run_until_complete(handle.done)
        return handle.result()

    # -- lifecycle --------------------------------------------------------

    def active_queries(self) -> List[GatewayQuery]:
        return [q for q in self.queries if not q.terminal]

    def close(self) -> None:
        """Stop accepting submissions; in-flight queries finish normally."""
        if self.state is SessionState.OPEN:
            self.state = SessionState.CLOSED

    def kill(self) -> int:
        """Tear the session down: queued queries resolve ``KILLED``
        immediately, running ones are cancelled at the master (their
        slots release through the normal completion path).  Returns how
        many queries were killed."""
        return self.gateway.kill_session(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GatewaySession {self.session_id} {self.tenant}/{self.user} {self.state.value}>"
