"""The multi-tenant SQL gateway front-end (S52).

The paper's client-end checks syntax and access rights per user; serving
production traffic additionally needs the piece in *front* of the master
that Twitter's hybrid-cloud SQL architecture calls the gateway: session
management, per-tenant admission queues, and fair-share emission against
resource agreements.  :class:`SQLGateway` is that component on the
simulated clock:

* :meth:`open_session` authenticates a user and returns a
  :class:`~repro.gateway.session.GatewaySession`;
* ``session.submit`` pre-flights (syntax + ACL), estimates cost and
  memory from the physical plan, and enqueues under admission control;
* an event-driven pump emits queries to the (reentrant) master whenever
  budgets free up, in weighted deficit-round-robin order across tenants;
* kill and per-query timeout resolve handles at any lifecycle stage,
  always releasing their slots through the one completion path.

The gateway holds no background processes: with no traffic it adds zero
simulation events, so a configured-but-idle gateway never perturbs
committed figure results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.jobs import JobOptions, JobStatus
from repro.errors import FeisuError, QueryCancelled, QueryTimeout
from repro.gateway.admission import AdmissionController, estimate_query_memory
from repro.gateway.config import GatewayConfig
from repro.gateway.fairshare import TenantQueue
from repro.gateway.session import (
    GatewayQuery,
    GatewaySession,
    QueryStatus,
    SessionState,
)
from repro.obs.trace import Tracer
from repro.planner.physical import build_plan
from repro.sim.events import Event
from repro.sql.analyzer import analyze
from repro.sql.parser import parse


@dataclass
class TenantSnapshot:
    """Point-in-time view of one tenant's serving state."""

    tenant: str
    queue_depth: int
    running: int
    admitted: int
    rejected: int
    completed: int
    failed: int
    killed: int
    timed_out: int
    served_units: float
    memory_in_use: float


@dataclass
class GatewaySnapshot:
    """Point-in-time view of the whole gateway (metrics surface)."""

    queue_depth: int = 0
    running: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    killed: int = 0
    timed_out: int = 0
    sessions_open: int = 0
    memory_in_use: float = 0.0
    tenants: Dict[str, TenantSnapshot] = field(default_factory=dict)


class SQLGateway:
    """Serving front-end over one :class:`~repro.core.feisu.FeisuCluster`."""

    def __init__(self, cluster, config: Optional[GatewayConfig] = None):
        self.cluster = cluster
        self.config = config or GatewayConfig()
        if self.config.total_slots < 1:
            raise ValueError("total_slots must be at least 1")
        if self.config.total_slots > cluster.master.max_concurrent_jobs:
            raise ValueError(
                f"gateway total_slots ({self.config.total_slots}) exceeds the master's "
                f"max_concurrent_jobs ({cluster.master.max_concurrent_jobs}); the master's "
                "FIFO candidate queue would re-order fair-share emissions"
            )
        self.admission = AdmissionController(self.config)
        self.sessions: Dict[str, GatewaySession] = {}
        self.queries: Dict[str, GatewayQuery] = {}
        self._session_ids = itertools.count()
        self._query_ids = itertools.count()
        #: Gateway-side span tree (``gateway.query`` → ``queue_wait``),
        #: populated only when ``config.trace`` is on.
        self.tracer: Optional[Tracer] = None
        if self.config.trace:
            self.tracer = Tracer("gateway")
            self.tracer.begin("gateway", cluster.sim.now)

    # -- sessions ---------------------------------------------------------

    def open_session(self, user: str, tenant: Optional[str] = None) -> GatewaySession:
        """Authenticate ``user`` and open a session under ``tenant``
        (defaults to a tenant named after the user)."""
        cred = self.cluster.credential_of(user)
        self.cluster.authority.validate(cred, now=self.cluster.sim.now)
        session = GatewaySession(
            self,
            session_id=f"sess-{next(self._session_ids)}",
            user=user,
            tenant=tenant if tenant is not None else user,
            credential=cred,
        )
        self.sessions[session.session_id] = session
        # First contact registers the tenant's queue with its policy.
        self.admission.tenant(session.tenant)
        return session

    def open_sessions(self) -> List[GatewaySession]:
        return [s for s in self.sessions.values() if s.state is SessionState.OPEN]

    # -- submission (called via GatewaySession.submit) --------------------

    def _submit(
        self,
        session: GatewaySession,
        sql: str,
        options: Optional[JobOptions],
        timeout_s: Optional[float],
    ) -> GatewayQuery:
        sim = self.cluster.sim
        # Client-end pre-flight: syntax and ACL fail synchronously, so
        # bad requests never occupy queue space (§III-C).
        analyzed = analyze(parse(sql), self.cluster.catalog)
        self.cluster.acl.check_read(
            session.user, [t.name for t in analyzed.tables.values()]
        )
        plan = build_plan(analyzed)
        tq = self.admission.tenant(session.tenant)
        if timeout_s is None:
            timeout_s = tq.policy.query_timeout_s
        query_id = f"gq-{next(self._query_ids)}"
        query = GatewayQuery(
            query_id=query_id,
            session=session,
            sql=sql,
            options=options or JobOptions(),
            cost_units=float(max(1, len(plan.tasks))),
            memory_bytes=estimate_query_memory(plan, self.cluster.catalog),
            submitted_at=sim.now,
            done=sim.event(name=f"{query_id}.done"),
            timeout_s=timeout_s,
        )
        self.admission.enqueue(tq, query)  # raises GatewayOverloadedError when full
        tq.note_backlog(sim.now)
        self.queries[query.query_id] = query
        session.queries.append(query)
        session.history.record(sim.now, session.user, sql, analyzed)
        if self.tracer is not None:
            span = self.tracer.root.child("gateway.query", sim.now)
            span.tag("query_id", query.query_id)
            span.tag("tenant", query.tenant)
            span.tag("user", query.user)
            query._span = span  # noqa: SLF001
            query._wait_span = span.child("queue_wait", sim.now)  # noqa: SLF001
        if timeout_s is not None:
            sim.schedule(timeout_s, self._expire, query)
        self._pump()
        return query

    # -- emission ---------------------------------------------------------

    def _pump(self) -> None:
        """Emit queries while budgets and fair share allow."""
        while True:
            pick = self.admission.next()
            if pick is None:
                return
            self._emit(*pick)

    def _emit(self, tq: TenantQueue, query: GatewayQuery) -> None:
        sim = self.cluster.sim
        if tq.depth == 0:
            tq.note_drain(sim.now)
        self.admission.on_emit(tq, query)
        query.emitted_at = sim.now
        query.status = QueryStatus.RUNNING
        if query._wait_span is not None:  # noqa: SLF001
            query._wait_span.tag("wait_s", query.queue_wait_s)  # noqa: SLF001
            query._wait_span.finish(sim.now)  # noqa: SLF001
        try:
            # The master re-validates at emission time (credential
            # lifetime, rate limits, per-user quotas) — the entry
            # guard's books stay authoritative.
            job, done = self.cluster.master.submit(
                query.sql,
                query.user,
                query.session.credential,
                query.options,
            )
        except FeisuError as exc:
            self.admission.on_release(tq, query)
            self._resolve(tq, query, QueryStatus.FAILED, exc)
            return
        query.job = job
        if job.trace is not None and job.trace.root is not None:
            job.trace.root.tag("gateway_wait_s", query.queue_wait_s)
        done.add_callback(lambda ev: self._on_job_done(tq, query, ev))

    def _on_job_done(self, tq: TenantQueue, query: GatewayQuery, ev: Event) -> None:
        """The single resolution point for every emitted query."""
        job = ev.value  # the master always resolves `done` with the job
        self.admission.on_release(tq, query)
        kill = query._kill_reason  # noqa: SLF001
        if kill is not None and job.status is not JobStatus.SUCCEEDED:
            status, error = kill
        elif job.status is JobStatus.SUCCEEDED:
            status, error = QueryStatus.SUCCEEDED, None
        elif job.status is JobStatus.TIMED_OUT:
            status, error = QueryStatus.TIMED_OUT, job.error
        else:
            status, error = QueryStatus.FAILED, job.error
        self._resolve(tq, query, status, error)
        self._pump()

    def _resolve(
        self,
        tq: TenantQueue,
        query: GatewayQuery,
        status: QueryStatus,
        error: Optional[BaseException],
    ) -> None:
        query.status = status
        query.error = error
        query.finished_at = self.cluster.sim.now
        if status is QueryStatus.SUCCEEDED:
            tq.completed += 1
        elif status is QueryStatus.KILLED:
            tq.killed += 1
        elif status is QueryStatus.TIMED_OUT:
            tq.timed_out += 1
        else:
            tq.failed += 1
        if query._span is not None:  # noqa: SLF001
            query._span.tag("status", status.value)  # noqa: SLF001
            query._span.finish_tree(self.cluster.sim.now)  # noqa: SLF001
        query.done.succeed(query)

    # -- kill & timeout ---------------------------------------------------

    def kill_query(
        self, query: "GatewayQuery | str", reason: Optional[BaseException] = None
    ) -> bool:
        """Kill one query (handle or query id) at any stage; returns
        False if already terminal or the id is unknown."""
        if isinstance(query, str):
            found = self.queries.get(query)
            if found is None:
                return False
            query = found
        if query.terminal:
            return False
        if reason is None:
            reason = QueryCancelled(f"{query.query_id} killed by the gateway")
        tq = self.admission.tenant(query.tenant)
        if query.status is QueryStatus.QUEUED:
            tq.remove(query)
            if tq.depth == 0:
                tq.note_drain(self.cluster.sim.now)
            self._resolve(tq, query, QueryStatus.KILLED, reason)
            self._pump()
            return True
        # Running: mark intent, cancel at the master; the completion
        # callback releases the slot and resolves the handle.
        query._kill_reason = (QueryStatus.KILLED, reason)  # noqa: SLF001
        assert query.job is not None
        if not self.cluster.master.cancel(query.job.job_id):
            query._kill_reason = None  # noqa: SLF001 - finished first
            return False
        return True

    def kill_session(self, session: GatewaySession) -> int:
        session.state = SessionState.KILLED
        killed = 0
        for query in session.active_queries():
            if self.kill_query(
                query, QueryCancelled(f"session {session.session_id} killed")
            ):
                killed += 1
        return killed

    def _expire(self, query: GatewayQuery) -> None:
        """Timeout callback: resolve a still-unfinished query TIMED_OUT."""
        if query.terminal:
            return
        exc = QueryTimeout(
            f"{query.query_id} exceeded its {query.timeout_s}s gateway timeout"
        )
        tq = self.admission.tenant(query.tenant)
        if query.status is QueryStatus.QUEUED:
            tq.remove(query)
            if tq.depth == 0:
                tq.note_drain(self.cluster.sim.now)
            self._resolve(tq, query, QueryStatus.TIMED_OUT, exc)
            self._pump()
            return
        query._kill_reason = (QueryStatus.TIMED_OUT, exc)  # noqa: SLF001
        assert query.job is not None
        if not self.cluster.master.cancel(query.job.job_id):
            query._kill_reason = None  # noqa: SLF001 - finished first

    # -- draining & introspection -----------------------------------------

    def in_flight(self) -> int:
        return self.admission.queue_depth() + self.admission.running

    def run_until_drained(self, limit: float = float("inf")) -> None:
        """Drive the simulation until no query is queued or running."""
        sim = self.cluster.sim
        while self.in_flight() > 0:
            if not sim.step():
                raise FeisuError("gateway deadlock: queries pending but no events queued")
            if sim.now > limit:
                raise FeisuError(f"gateway drain exceeded the {limit}s limit")

    def snapshot(self) -> GatewaySnapshot:
        snap = GatewaySnapshot(
            queue_depth=self.admission.queue_depth(),
            running=self.admission.running,
            sessions_open=len(self.open_sessions()),
            memory_in_use=self.admission.memory_in_use,
        )
        for tq in self.admission.tenants():
            snap.tenants[tq.name] = TenantSnapshot(
                tenant=tq.name,
                queue_depth=tq.depth,
                running=tq.running,
                admitted=tq.admitted,
                rejected=tq.rejected,
                completed=tq.completed,
                failed=tq.failed,
                killed=tq.killed,
                timed_out=tq.timed_out,
                served_units=tq.served_units,
                memory_in_use=tq.memory_in_use,
            )
            snap.admitted += tq.admitted
            snap.rejected += tq.rejected
            snap.completed += tq.completed
            snap.failed += tq.failed
            snap.killed += tq.killed
            snap.timed_out += tq.timed_out
        return snap
