"""Feisu reproduction: fast query execution over heterogeneous data
sources on large-scale clusters (Qin et al., ICDE 2017).

Quickstart::

    from repro import FeisuCluster, FeisuConfig, Schema, DataType

    cluster = FeisuCluster(FeisuConfig(nodes_per_rack=4))
    cluster.load_table("T", Schema.of(x=DataType.INT64), {"x": values})
    result = cluster.query("SELECT COUNT(*) FROM T WHERE x > 10")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction of every table and figure in the paper.
"""

from repro.cluster.jobs import JobOptions
from repro.cluster.node import LeafConfig
from repro.columnar.schema import DataType, Field, Schema
from repro.core.feisu import FeisuCluster, FeisuConfig
from repro.engine.executor import QueryResult
from repro.errors import FeisuError

__version__ = "1.0.0"

__all__ = [
    "DataType",
    "FeisuCluster",
    "FeisuConfig",
    "FeisuError",
    "Field",
    "JobOptions",
    "LeafConfig",
    "QueryResult",
    "Schema",
    "__version__",
]
