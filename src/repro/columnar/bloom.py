"""A compact Bloom filter.

The SmartIndex record format (Fig 6) carries a ``bloom`` field next to
the ``range`` statistics; block-level chunk statistics use the same
structure to prune equality and CONTAINS-candidate lookups without
touching the data.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable

import numpy as np

from repro.errors import StorageError


class BloomFilter:
    """Standard k-hash Bloom filter over arbitrary hashable values.

    Hashes are derived from blake2b digests so membership is stable
    across processes and runs (``hash()`` is salted per-process).
    """

    __slots__ = ("bits", "num_hashes", "num_bits", "count")

    def __init__(self, expected_items: int, false_positive_rate: float = 0.01):
        if expected_items < 1:
            expected_items = 1
        if not 0.0 < false_positive_rate < 1.0:
            raise StorageError("false positive rate must be in (0, 1)")
        num_bits = max(8, int(-expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)))
        self.num_bits = num_bits
        self.num_hashes = max(1, round(num_bits / expected_items * math.log(2)))
        self.bits = np.zeros((num_bits + 7) // 8, dtype=np.uint8)
        self.count = 0

    def _positions(self, value: object) -> Iterable[int]:
        digest = hashlib.blake2b(repr(value).encode("utf-8"), digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, value: object) -> None:
        for pos in self._positions(value):
            self.bits[pos >> 3] |= 1 << (pos & 7)
        self.count += 1

    def update(self, values: Iterable[object]) -> None:
        for v in values:
            self.add(v)

    def might_contain(self, value: object) -> bool:
        return all(self.bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(value))

    def size_bytes(self) -> int:
        return int(self.bits.nbytes)

    def to_bytes(self) -> bytes:
        header = self.num_bits.to_bytes(4, "little") + self.num_hashes.to_bytes(2, "little")
        return header + self.bits.tobytes()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "BloomFilter":
        bf = cls.__new__(cls)
        bf.num_bits = int.from_bytes(payload[:4], "little")
        bf.num_hashes = int.from_bytes(payload[4:6], "little")
        bf.bits = np.frombuffer(payload[6:], dtype=np.uint8).copy()
        bf.count = 0
        return bf
