"""Column encodings: plain, run-length, dictionary, bit-packed.

Feisu "organizes data sets into partitions using a compression-friendly
columnar format" (§I).  Each column chunk in a block is stored under one
of these encodings; :func:`choose_encoding` picks the cheapest one for an
array, which is the "compression-friendly" property the paper relies on.

All codecs are self-describing round-trippers::

    payload = codec.encode(array)
    array2  = codec.decode(payload, len(array))
    assert (array == array2).all()

Strings travel as UTF-8 with an offsets vector; numerics as little-endian
numpy buffers.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Sequence, Tuple, Type

import numpy as np

from repro.columnar.schema import DataType
from repro.errors import StorageError

_U32 = "<I"
_U32_SIZE = 4


def _pack_strings(values: Sequence[str]) -> bytes:
    """Offsets + concatenated UTF-8 payload."""
    blobs = [v.encode("utf-8") for v in values]
    out = [struct.pack(_U32, len(blobs))]
    offset = 0
    for b in blobs:
        offset += len(b)
        out.append(struct.pack(_U32, offset))
    out.extend(blobs)
    return b"".join(out)


def _unpack_strings(payload: bytes) -> np.ndarray:
    (count,) = struct.unpack_from(_U32, payload, 0)
    offsets = [0]
    pos = _U32_SIZE
    for _ in range(count):
        (end,) = struct.unpack_from(_U32, payload, pos)
        offsets.append(end)
        pos += _U32_SIZE
    data_start = pos
    arr = np.empty(count, dtype=object)
    for i in range(count):
        arr[i] = payload[data_start + offsets[i] : data_start + offsets[i + 1]].decode("utf-8")
    return arr


def _is_string(array: np.ndarray) -> bool:
    return array.dtype == object


class Encoding:
    """Base codec.  Subclasses set :attr:`tag` (one byte on the wire)."""

    tag: int = -1
    name: str = "base"

    def encode(self, array: np.ndarray) -> bytes:
        raise NotImplementedError

    def decode(self, payload: bytes, count: int) -> np.ndarray:
        raise NotImplementedError

    def encoded_size(self, array: np.ndarray) -> int:
        """Size estimate used by :func:`choose_encoding` (exact here)."""
        return len(self.encode(array))


class PlainEncoding(Encoding):
    """Raw little-endian buffer (strings: offsets + UTF-8)."""

    tag = 0
    name = "plain"

    def encode(self, array: np.ndarray) -> bytes:
        if _is_string(array):
            return b"s" + _pack_strings(list(array))
        return b"n" + array.dtype.str.encode() + b"\x00" + array.tobytes()

    def decode(self, payload: bytes, count: int) -> np.ndarray:
        view = self.decode_view(payload, count)
        if view is None:
            return _unpack_strings(payload[1:])
        return view.copy()  # decouple from the payload buffer

    def decode_view(self, payload: bytes, count: int) -> Optional[np.ndarray]:
        """Zero-copy read-only view of a numeric chunk (None for strings).

        Lets the fused pipeline gather a handful of matching payload rows
        without materializing (and copying) the whole column first; any
        fancy-indexed gather off the view is a fresh writable array.
        ``frombuffer`` with an explicit offset avoids slicing (copying)
        the multi-megabyte payload just to skip the tiny header.
        """
        if payload[:1] == b"s":
            return None
        sep = payload.index(b"\x00", 1)
        dtype = np.dtype(payload[1:sep].decode())
        return np.frombuffer(payload, dtype=dtype, count=count, offset=sep + 1)


class RunLengthEncoding(Encoding):
    """(run_length, value) pairs — wins on sorted or low-churn columns."""

    tag = 1
    name = "rle"

    def encode(self, array: np.ndarray) -> bytes:
        values, lengths = run_length_split(array)
        plain = PlainEncoding()
        vbytes = plain.encode(values)
        lbytes = np.asarray(lengths, dtype=np.uint32).tobytes()
        return struct.pack(_U32, len(lengths)) + struct.pack(_U32, len(vbytes)) + vbytes + lbytes

    def decode(self, payload: bytes, count: int) -> np.ndarray:
        nruns, vlen = struct.unpack_from(_U32 + "I", payload, 0)
        vbytes = payload[8 : 8 + vlen]
        lengths = np.frombuffer(payload[8 + vlen :], dtype=np.uint32, count=nruns)
        values = PlainEncoding().decode(vbytes, nruns)
        if _is_string(values):
            out = np.empty(count, dtype=object)
            pos = 0
            for v, ln in zip(values, lengths):
                out[pos : pos + ln] = v
                pos += ln
            return out
        return np.repeat(values, lengths)


class DictionaryEncoding(Encoding):
    """Distinct values + integer codes — wins on low-cardinality columns."""

    tag = 2
    name = "dictionary"

    def encode(self, array: np.ndarray) -> bytes:
        if _is_string(array):
            # Python-level uniquing: numpy's fixed-width unicode arrays
            # silently strip trailing NULs, corrupting round-trips.
            mapping: dict = {}
            uniques: list = []
            codes = np.empty(len(array), dtype=np.uint32)
            for i, v in enumerate(array):
                idx = mapping.get(v)
                if idx is None:
                    idx = len(uniques)
                    mapping[v] = idx
                    uniques.append(v)
                codes[i] = idx
            uarr = np.empty(len(uniques), dtype=object)
            for i, u in enumerate(uniques):
                uarr[i] = u
        else:
            uarr, codes = np.unique(array, return_inverse=True)
        plain = PlainEncoding()
        ubytes = plain.encode(uarr)
        cbytes = np.asarray(codes, dtype=np.uint32).tobytes()
        return (
            struct.pack(_U32, len(uarr)) + struct.pack(_U32, len(ubytes)) + ubytes + cbytes
        )

    def decode(self, payload: bytes, count: int) -> np.ndarray:
        uarr, codes = self.decode_parts(payload, count)
        if _is_string(uarr):
            out = np.empty(count, dtype=object)
            for i, c in enumerate(codes):
                out[i] = uarr[c]
            return out
        return uarr[codes]

    def decode_parts(self, payload: bytes, count: int) -> "Tuple[np.ndarray, np.ndarray]":
        """``(uniques, codes)`` without materializing the full column.

        ``decode()`` is exactly ``uniques[codes]``, so an elementwise
        predicate can be answered on the (tiny) unique set and mapped
        through the codes, and a selective gather of rows ``r`` is
        ``uniques[codes[r]]`` — the fused pipeline's decode-avoidance
        path.  ``codes`` is a read-only view over the payload buffer
        (no multi-megabyte byte-slice copy).
        """
        nuniq, ulen = struct.unpack_from(_U32 + "I", payload, 0)
        uarr = PlainEncoding().decode(payload[8 : 8 + ulen], nuniq)
        codes = np.frombuffer(payload, dtype=np.uint32, count=count, offset=8 + ulen)
        return uarr, codes


class DeltaEncoding(Encoding):
    """First value + run-length-encoded deltas — wins on sorted or
    near-arithmetic integer columns (timestamps, sequence ids).

    Deltas use wrapping int64 arithmetic, so the cumulative-sum decode is
    exact even when differences overflow (modular inverse).
    """

    tag = 4
    name = "delta"

    def encode(self, array: np.ndarray) -> bytes:
        if not np.issubdtype(array.dtype, np.integer):
            raise StorageError("delta encoding requires an integer array")
        if len(array) == 0:
            return struct.pack("<q", 0) + RunLengthEncoding().encode(array)
        with np.errstate(over="ignore"):
            deltas = np.diff(array.astype(np.int64))
        first = struct.pack("<q", int(array[0]))
        return first + RunLengthEncoding().encode(deltas)

    def decode(self, payload: bytes, count: int) -> np.ndarray:
        (first,) = struct.unpack_from("<q", payload, 0)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        deltas = RunLengthEncoding().decode(payload[8:], count - 1)
        out = np.empty(count, dtype=np.int64)
        out[0] = first
        if count > 1:
            with np.errstate(over="ignore"):
                np.cumsum(deltas, out=out[1:])
                out[1:] += first
        return out


class BitPackedEncoding(Encoding):
    """One bit per value — for BOOL columns (and SmartIndex vectors)."""

    tag = 3
    name = "bitpacked"

    def encode(self, array: np.ndarray) -> bytes:
        if array.dtype != np.bool_:
            raise StorageError("bit-packing requires a boolean array")
        return np.packbits(array).tobytes()

    def decode(self, payload: bytes, count: int) -> np.ndarray:
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8), count=count)
        return bits.astype(np.bool_)


_CODECS: Dict[int, Encoding] = {
    c.tag: c
    for c in (
        PlainEncoding(),
        RunLengthEncoding(),
        DictionaryEncoding(),
        BitPackedEncoding(),
        DeltaEncoding(),
    )
}


def codec_by_tag(tag: int) -> Encoding:
    try:
        return _CODECS[tag]
    except KeyError:
        raise StorageError(f"unknown encoding tag {tag}") from None


def run_length_split(array: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split an array into (run values, run lengths)."""
    n = len(array)
    if n == 0:
        return array[:0], np.empty(0, dtype=np.uint32)
    if _is_string(array):
        change = np.ones(n, dtype=bool)
        change[1:] = array[1:] != array[:-1]
    else:
        change = np.concatenate(([True], array[1:] != array[:-1]))
    starts = np.flatnonzero(change)
    lengths = np.diff(np.concatenate((starts, [n]))).astype(np.uint32)
    return array[starts], lengths


def choose_encoding(array: np.ndarray, dtype: DataType) -> Encoding:
    """Pick the smallest applicable codec for the array.

    Booleans always bit-pack.  For other types we compare plain size
    against cheap analytic estimates of RLE and dictionary sizes, so we
    avoid actually encoding three times.
    """
    if dtype is DataType.BOOL:
        return _CODECS[BitPackedEncoding.tag]
    n = len(array)
    if n == 0:
        return _CODECS[PlainEncoding.tag]
    values, lengths = run_length_split(array)
    nruns = len(values)
    if dtype is DataType.STRING:
        avg = sum(len(str(v)) for v in array[: min(n, 64)]) / min(n, 64) + _U32_SIZE
        plain_size = n * avg
        uniq = len(set(array[: min(n, 4096)].tolist()))
        dict_size = uniq * avg + n * 4
        rle_size = nruns * avg + nruns * 4
    else:
        item = array.dtype.itemsize
        plain_size = n * item
        uniq = len(np.unique(array[: min(n, 4096)]))
        dict_size = uniq * item + n * 4
        rle_size = nruns * item + nruns * 4
    candidates = [
        (plain_size, PlainEncoding.tag),
        (dict_size, DictionaryEncoding.tag),
        (rle_size, RunLengthEncoding.tag),
    ]
    if dtype is DataType.INT64 and n > 1:
        with np.errstate(over="ignore"):
            deltas = np.diff(array.astype(np.int64))
        _dv, dlen = run_length_split(deltas)
        delta_size = 8 + len(_dv) * array.dtype.itemsize + len(dlen) * 4
        candidates.append((delta_size, DeltaEncoding.tag))
    best = min(candidates)
    return _CODECS[best[1]]
