"""Nested-record flattening.

"Feisu also supports nested data format such as json, which will be
flattened into columns when the data are processed" (§III-A).  This
module turns lists of nested dicts into flat dotted-name columns and
infers the resulting schema:

* nested objects flatten with ``.`` separators (``{"a": {"b": 1}}`` →
  column ``a.b``);
* lists of scalars are joined into one string column (log payloads);
* missing keys become type-appropriate defaults, since the engine's
  columns are dense.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.columnar.schema import DataType, Field, Schema, coerce_array
from repro.errors import AnalysisError

_DEFAULTS = {
    DataType.INT64: 0,
    DataType.FLOAT64: 0.0,
    DataType.STRING: "",
    DataType.BOOL: False,
}


def flatten_record(record: Mapping[str, Any], prefix: str = "") -> Dict[str, Any]:
    """Flatten one nested record into a dotted-key dict of scalars."""
    flat: Dict[str, Any] = {}
    for key, value in record.items():
        name = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(flatten_record(value, prefix=f"{name}."))
        elif isinstance(value, (list, tuple)):
            flat[name] = ",".join(str(v) for v in value)
        elif value is None:
            flat[name] = None
        elif isinstance(value, (bool, int, float, str)):
            flat[name] = value
        else:
            raise AnalysisError(
                f"unsupported json value of type {type(value).__name__} at {name!r}"
            )
    return flat


def _infer_type(values: Iterable[Any]) -> DataType:
    seen: set = set()
    for v in values:
        if v is None:
            continue
        seen.add(DataType.from_value(v))
    if not seen:
        return DataType.STRING
    if seen == {DataType.INT64, DataType.FLOAT64}:
        return DataType.FLOAT64
    if len(seen) > 1:
        return DataType.STRING  # mixed types degrade to text, like log fields
    return seen.pop()


def flatten_records(
    records: Sequence[Mapping[str, Any]]
) -> Tuple[Schema, Dict[str, np.ndarray]]:
    """Flatten many records into (schema, column arrays).

    Column order is first-appearance order, which keeps generated tables
    stable for a fixed input ordering.
    """
    flats = [flatten_record(r) for r in records]
    names: List[str] = []
    seen = set()
    for flat in flats:
        for key in flat:
            if key not in seen:
                seen.add(key)
                names.append(key)
    schema_fields = []
    columns: Dict[str, np.ndarray] = {}
    for name in names:
        raw = [flat.get(name) for flat in flats]
        dtype = _infer_type(raw)
        default = _DEFAULTS[dtype]
        cleaned = [default if v is None else _coerce_scalar(v, dtype) for v in raw]
        schema_fields.append(Field(name, dtype))
        columns[name] = coerce_array(cleaned, dtype)
    return Schema(schema_fields), columns


def _coerce_scalar(value: Any, dtype: DataType) -> Any:
    if dtype is DataType.STRING:
        return str(value)
    if dtype is DataType.FLOAT64:
        return float(value)
    if dtype is DataType.INT64:
        return int(value)
    return bool(value)
