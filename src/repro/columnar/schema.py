"""Schema and type system for Feisu's columnar data model.

Feisu tables in Baidu "usually contain hundreds of attributes but only a
small subset of them are actually queried" (§III-A); the schema object is
therefore designed for cheap column lookup and projection.  Nested (json)
data is flattened into dotted column names by
:mod:`repro.columnar.json_flatten` before it reaches a schema.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError


class DataType(enum.Enum):
    """Logical column types supported by the engine."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    BOOL = "bool"

    @property
    def numpy_dtype(self) -> np.dtype:
        if self is DataType.INT64:
            return np.dtype(np.int64)
        if self is DataType.FLOAT64:
            return np.dtype(np.float64)
        if self is DataType.BOOL:
            return np.dtype(np.bool_)
        return np.dtype(object)  # strings ride as object arrays

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT64, DataType.FLOAT64)

    @classmethod
    def from_value(cls, value: object) -> "DataType":
        """Infer the logical type of a scalar Python value."""
        if isinstance(value, bool):
            return cls.BOOL
        if isinstance(value, (int, np.integer)):
            return cls.INT64
        if isinstance(value, (float, np.floating)):
            return cls.FLOAT64
        if isinstance(value, str):
            return cls.STRING
        raise AnalysisError(f"unsupported value type {type(value).__name__}")


def common_type(a: DataType, b: DataType) -> DataType:
    """Numeric widening used by the expression type checker."""
    if a == b:
        return a
    numeric = {DataType.INT64, DataType.FLOAT64}
    if a in numeric and b in numeric:
        return DataType.FLOAT64
    raise AnalysisError(f"no common type for {a.value} and {b.value}")


@dataclass(frozen=True)
class Field:
    """One column: a name, a logical type, and nullability."""

    name: str
    dtype: DataType
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise AnalysisError("field name must be non-empty")


class Schema:
    """An ordered collection of uniquely named fields."""

    def __init__(self, fields: Sequence[Field]):
        self._fields: Tuple[Field, ...] = tuple(fields)
        self._by_name: Dict[str, int] = {}
        for i, f in enumerate(self._fields):
            if f.name in self._by_name:
                raise AnalysisError(f"duplicate field name {f.name!r}")
            self._by_name[f.name] = i

    @classmethod
    def of(cls, **named_types: DataType) -> "Schema":
        """Shorthand: ``Schema.of(a=DataType.INT64, b=DataType.STRING)``."""
        return cls([Field(n, t) for n, t in named_types.items()])

    @property
    def fields(self) -> Tuple[Field, ...]:
        return self._fields

    @property
    def names(self) -> List[str]:
        return [f.name for f in self._fields]

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def field(self, name: str) -> Field:
        try:
            return self._fields[self._by_name[name]]
        except KeyError:
            raise AnalysisError(f"unknown column {name!r}") from None

    def index_of(self, name: str) -> int:
        try:
            return self._by_name[name]
        except KeyError:
            raise AnalysisError(f"unknown column {name!r}") from None

    def select(self, names: Iterable[str]) -> "Schema":
        """Projection: a new schema with only ``names``, in given order."""
        return Schema([self.field(n) for n in names])

    def is_subset_of(self, other: "Schema") -> bool:
        """True when every field here exists identically in ``other``.

        Used to validate the paper's T3-attributes ⊆ T1/T2-attributes
        relationship when planning cross-table scans (§VI-B-2).
        """
        return all(
            f.name in other and other.field(f.name).dtype == f.dtype for f in self._fields
        )

    def to_dict(self) -> Dict[str, str]:
        return {f.name: f.dtype.value for f in self._fields}

    @classmethod
    def from_dict(cls, spec: Dict[str, str]) -> "Schema":
        return cls([Field(n, DataType(t)) for n, t in spec.items()])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{f.name}:{f.dtype.value}" for f in self._fields[:6])
        more = "" if len(self._fields) <= 6 else f", ... ({len(self._fields)} fields)"
        return f"Schema({inner}{more})"


def empty_columns(schema: Schema) -> Dict[str, np.ndarray]:
    """Zero-row column dict matching ``schema`` (used for empty results)."""
    return {f.name: np.empty(0, dtype=f.dtype.numpy_dtype) for f in schema}


def coerce_array(values: Sequence[object], dtype: DataType) -> np.ndarray:
    """Build a column array of logical type ``dtype`` from Python values."""
    if dtype is DataType.STRING:
        arr = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            arr[i] = v
        return arr
    return np.asarray(values, dtype=dtype.numpy_dtype)
