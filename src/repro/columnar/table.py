"""Logical table descriptors.

A :class:`Table` is metadata only: its blocks live serialized inside the
storage substrates, addressed by full paths whose prefixes select the
storage plugin (§III-C "common storage layer").  The descriptor carries
everything the planner and scheduler need — schema, block paths, sizes —
without touching data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.columnar.schema import Schema
from repro.errors import StorageError


@dataclass(frozen=True)
class BlockRef:
    """Pointer to one stored block."""

    block_id: str
    path: str
    num_rows: int
    encoded_bytes: int
    #: Encoded size of each column chunk, for projection-aware I/O costing.
    column_bytes: "tuple"
    scale_factor: float = 1.0
    #: Optional per-column (name, min, max) triples for planner pruning.
    column_ranges: "tuple" = ()

    def bytes_for(self, columns: Iterable[str]) -> int:
        """Encoded bytes a scan of ``columns`` must read from this block."""
        wanted = set(columns)
        by_name = dict(self.column_bytes)
        return sum(size for name, size in by_name.items() if name in wanted)

    def range_of(self, column: str):
        """(min, max) catalog statistics for a column, or None."""
        for name, lo, hi in self.column_ranges:
            if name == column:
                return lo, hi
        return None

    @property
    def modeled_rows(self) -> float:
        return self.num_rows * self.scale_factor


@dataclass
class Table:
    """Schema plus an ordered list of block references."""

    name: str
    schema: Schema
    blocks: List[BlockRef] = field(default_factory=list)
    #: Free-form description, e.g. which paper dataset this models.
    description: str = ""
    #: Per-numeric-column equi-width histograms for selectivity
    #: estimation (:mod:`repro.columnar.stats`); populated at load time.
    column_stats: Dict[str, object] = field(default_factory=dict)

    def histogram(self, column: str):
        """The column's histogram, or None when not collected."""
        return self.column_stats.get(column)

    @property
    def num_rows(self) -> int:
        return sum(b.num_rows for b in self.blocks)

    @property
    def modeled_rows(self) -> float:
        return sum(b.modeled_rows for b in self.blocks)

    @property
    def encoded_bytes(self) -> int:
        return sum(b.encoded_bytes for b in self.blocks)

    @property
    def modeled_bytes(self) -> float:
        return sum(b.encoded_bytes * b.scale_factor for b in self.blocks)

    def block(self, block_id: str) -> BlockRef:
        for b in self.blocks:
            if b.block_id == block_id:
                return b
        raise StorageError(f"table {self.name!r} has no block {block_id!r}")

    def add_block(self, ref: BlockRef) -> None:
        if any(b.block_id == ref.block_id for b in self.blocks):
            raise StorageError(f"duplicate block id {ref.block_id!r} in table {self.name!r}")
        self.blocks.append(ref)


class Catalog:
    """Name → table mapping shared across storage domains.

    The paper's cross-domain mechanism shares "the data schema and access
    rights" between geo-distributed systems (§I); this catalog is that
    schema half (rights live in :mod:`repro.security`).
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    def register(self, table: Table) -> None:
        if table.name in self._tables:
            raise StorageError(f"table {table.name!r} already registered")
        self._tables[table.name] = table

    def replace(self, table: Table) -> None:
        self._tables[table.name] = table

    def get(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(f"unknown table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def names(self) -> List[str]:
        return sorted(self._tables)

    def drop(self, name: str) -> None:
        if name not in self._tables:
            raise StorageError(f"unknown table {name!r}")
        del self._tables[name]
