"""Columnar blocks: the unit of storage, scheduling and indexing.

A :class:`Block` holds a horizontal slice of a table (a few tens of
thousands of rows) as a set of independently encoded column chunks, plus
per-chunk statistics (min/max range, null-free, Bloom filter) used for
block pruning.  SmartIndex entries are keyed by ``(block_id, predicate)``
exactly as Fig 6 shows.

The *logical* row count of a block may represent many more production
rows than are physically materialized: the reproduction scales Baidu's
PB-size tables down (DESIGN.md §1) while keeping modeled byte sizes
proportional, via :attr:`Block.scale_factor`.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.columnar.bloom import BloomFilter
from repro.columnar.encoding import choose_encoding, codec_by_tag
from repro.columnar.schema import DataType, Schema
from repro.errors import StorageError

#: Default number of rows per block.
DEFAULT_BLOCK_ROWS = 8192

_MAGIC = b"FSU1"


@dataclass
class ChunkStats:
    """Statistics for one column chunk, used for pruning."""

    min_value: Optional[object] = None
    max_value: Optional[object] = None
    distinct_estimate: int = 0
    bloom: Optional[BloomFilter] = None

    def range_excludes_equality(self, value: object) -> bool:
        """True if ``column == value`` can't match anything in the chunk."""
        if self.min_value is None or self.max_value is None:
            return False
        try:
            if value < self.min_value or value > self.max_value:
                return True
        except TypeError:
            return False
        if self.bloom is not None and not self.bloom.might_contain(value):
            return True
        return False


class ColumnChunk:
    """One encoded column inside a block."""

    __slots__ = ("name", "dtype", "encoding_tag", "payload", "stats", "row_count")

    def __init__(
        self,
        name: str,
        dtype: DataType,
        encoding_tag: int,
        payload: bytes,
        stats: ChunkStats,
        row_count: int,
    ):
        self.name = name
        self.dtype = dtype
        self.encoding_tag = encoding_tag
        self.payload = payload
        self.stats = stats
        self.row_count = row_count

    @classmethod
    def from_array(cls, name: str, dtype: DataType, array: np.ndarray) -> "ColumnChunk":
        codec = choose_encoding(array, dtype)
        stats = _compute_stats(array, dtype)
        return cls(name, dtype, codec.tag, codec.encode(array), stats, len(array))

    def decode(self) -> np.ndarray:
        return codec_by_tag(self.encoding_tag).decode(self.payload, self.row_count)

    def dictionary_parts(self) -> "Optional[tuple]":
        """``(uniques, codes)`` when dictionary-encoded, else None.

        The fused pipeline (engine.pipeline) evaluates predicates on the
        unique set and gathers payload rows as ``uniques[codes[rows]]``,
        skipping the full ``decode()`` materialization.
        """
        codec = codec_by_tag(self.encoding_tag)
        if not hasattr(codec, "decode_parts"):
            return None
        return codec.decode_parts(self.payload, self.row_count)

    def plain_view(self) -> Optional[np.ndarray]:
        """Zero-copy read-only view when plain-encoded numeric, else None."""
        codec = codec_by_tag(self.encoding_tag)
        if not hasattr(codec, "decode_view"):
            return None
        return codec.decode_view(self.payload, self.row_count)

    @property
    def encoded_bytes(self) -> int:
        return len(self.payload)


def _compute_stats(array: np.ndarray, dtype: DataType) -> ChunkStats:
    if len(array) == 0:
        return ChunkStats()
    if dtype is DataType.BOOL:
        return ChunkStats(bool(array.min()), bool(array.max()), int(array.min() != array.max()) + 1)
    if dtype is DataType.STRING:
        values = [str(v) for v in array]
        uniq = set(values)
        bloom = BloomFilter(expected_items=len(uniq))
        bloom.update(uniq)
        return ChunkStats(min(values), max(values), len(uniq), bloom)
    uniq_count = len(np.unique(array))
    lo, hi = array.min(), array.max()
    if dtype is DataType.INT64:
        return ChunkStats(int(lo), int(hi), uniq_count)
    return ChunkStats(float(lo), float(hi), uniq_count)


class Block:
    """A horizontal slice of a table stored as encoded column chunks."""

    def __init__(
        self,
        block_id: str,
        schema: Schema,
        chunks: Dict[str, ColumnChunk],
        num_rows: int,
        scale_factor: float = 1.0,
    ):
        missing = [f.name for f in schema if f.name not in chunks]
        if missing:
            raise StorageError(f"block {block_id} missing chunks for {missing}")
        self.block_id = block_id
        self.schema = schema
        self.chunks = chunks
        self.num_rows = num_rows
        #: How many production rows each materialized row stands for.
        self.scale_factor = scale_factor

    @classmethod
    def from_arrays(
        cls,
        block_id: str,
        schema: Schema,
        columns: Dict[str, np.ndarray],
        scale_factor: float = 1.0,
    ) -> "Block":
        rows = {len(v) for v in columns.values()}
        if len(rows) > 1:
            raise StorageError(f"ragged columns in block {block_id}: {sorted(rows)}")
        num_rows = rows.pop() if rows else 0
        chunks = {
            f.name: ColumnChunk.from_array(f.name, f.dtype, columns[f.name]) for f in schema
        }
        return cls(block_id, schema, chunks, num_rows, scale_factor)

    def column(self, name: str) -> np.ndarray:
        """Decode and return one column (this is the 'scan' I/O path)."""
        try:
            return self.chunks[name].decode()
        except KeyError:
            raise StorageError(f"block {self.block_id} has no column {name!r}") from None

    def columns(self, names: Sequence[str]) -> Dict[str, np.ndarray]:
        return {n: self.column(n) for n in names}

    def column_bytes(self, names: Sequence[str]) -> int:
        """Encoded bytes of the requested columns — the I/O the columnar
        layout actually pays for a projection (§III-A's motivation)."""
        return sum(self.chunks[n].encoded_bytes for n in names if n in self.chunks)

    @property
    def total_bytes(self) -> int:
        return sum(c.encoded_bytes for c in self.chunks.values())

    @property
    def modeled_rows(self) -> float:
        """Production-scale row count this block represents."""
        return self.num_rows * self.scale_factor

    @property
    def modeled_bytes(self) -> float:
        return self.total_bytes * self.scale_factor

    # -- serialization -------------------------------------------------

    def to_bytes(self) -> bytes:
        """Self-describing binary layout: magic, json header, payloads."""
        header = {
            "block_id": self.block_id,
            "num_rows": self.num_rows,
            "scale_factor": self.scale_factor,
            "schema": self.schema.to_dict(),
            "chunks": [
                {
                    "name": c.name,
                    "dtype": c.dtype.value,
                    "encoding": c.encoding_tag,
                    "length": len(c.payload),
                    "min": _json_safe(c.stats.min_value),
                    "max": _json_safe(c.stats.max_value),
                    "distinct": c.stats.distinct_estimate,
                }
                for c in self.chunks.values()
            ],
        }
        hbytes = json.dumps(header).encode("utf-8")
        parts = [_MAGIC, struct.pack("<I", len(hbytes)), hbytes]
        for spec in header["chunks"]:
            parts.append(self.chunks[spec["name"]].payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "Block":
        if payload[:4] != _MAGIC:
            raise StorageError("not a Feisu columnar block (bad magic)")
        (hlen,) = struct.unpack_from("<I", payload, 4)
        header = json.loads(payload[8 : 8 + hlen].decode("utf-8"))
        schema = Schema.from_dict(header["schema"])
        pos = 8 + hlen
        chunks: Dict[str, ColumnChunk] = {}
        for spec in header["chunks"]:
            raw = payload[pos : pos + spec["length"]]
            pos += spec["length"]
            dtype = DataType(spec["dtype"])
            stats = ChunkStats(spec["min"], spec["max"], spec["distinct"])
            chunks[spec["name"]] = ColumnChunk(
                spec["name"], dtype, spec["encoding"], raw, stats, header["num_rows"]
            )
        return cls(
            header["block_id"], schema, chunks, header["num_rows"], header["scale_factor"]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block {self.block_id} rows={self.num_rows} cols={len(self.chunks)}>"


def _json_safe(value: object) -> object:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def split_into_blocks(
    table_name: str,
    schema: Schema,
    columns: Dict[str, np.ndarray],
    block_rows: int = DEFAULT_BLOCK_ROWS,
    scale_factor: float = 1.0,
) -> List[Block]:
    """Partition full-table columns into fixed-size blocks."""
    if block_rows < 1:
        raise StorageError("block_rows must be >= 1")
    total = len(next(iter(columns.values()))) if columns else 0
    blocks = []
    for start in range(0, max(total, 1), block_rows):
        end = min(start + block_rows, total)
        if end <= start:
            break
        part = {n: v[start:end] for n, v in columns.items()}
        blocks.append(
            Block.from_arrays(
                f"{table_name}.b{start // block_rows}", schema, part, scale_factor
            )
        )
    return blocks
