"""Feisu's compression-friendly columnar format (§III-A)."""

from repro.columnar.block import (
    DEFAULT_BLOCK_ROWS,
    Block,
    ChunkStats,
    ColumnChunk,
    split_into_blocks,
)
from repro.columnar.bloom import BloomFilter
from repro.columnar.encoding import (
    BitPackedEncoding,
    DeltaEncoding,
    DictionaryEncoding,
    Encoding,
    PlainEncoding,
    RunLengthEncoding,
    choose_encoding,
)
from repro.columnar.json_flatten import flatten_record, flatten_records
from repro.columnar.schema import DataType, Field, Schema, coerce_array
from repro.columnar.stats import ColumnHistogram
from repro.columnar.table import BlockRef, Catalog, Table

__all__ = [
    "DEFAULT_BLOCK_ROWS",
    "BitPackedEncoding",
    "Block",
    "BlockRef",
    "BloomFilter",
    "Catalog",
    "ColumnHistogram",
    "ChunkStats",
    "ColumnChunk",
    "DataType",
    "DeltaEncoding",
    "DictionaryEncoding",
    "Encoding",
    "Field",
    "PlainEncoding",
    "RunLengthEncoding",
    "Schema",
    "Table",
    "choose_encoding",
    "coerce_array",
    "flatten_record",
    "flatten_records",
    "split_into_blocks",
]
