"""Table-level column statistics: equi-width histograms.

Block chunks already carry min/max/Bloom for pruning; the *catalog*
additionally keeps one histogram per numeric column so the cost-based
planner (§III-B) can estimate predicate selectivity — how many rows a
filter keeps — which feeds EXPLAIN's row estimates and the master's
result-size expectations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import StorageError

DEFAULT_BINS = 32


@dataclass(frozen=True)
class ColumnHistogram:
    """Equi-width histogram over one numeric column."""

    lo: float
    hi: float
    counts: Tuple[int, ...]
    total: int
    distinct_estimate: int = 0

    @classmethod
    def build(cls, array: np.ndarray, bins: int = DEFAULT_BINS) -> "ColumnHistogram":
        if array.dtype == object or array.dtype == np.bool_:
            raise StorageError("histograms are built over numeric columns only")
        n = len(array)
        if n == 0:
            return cls(0.0, 0.0, tuple([0] * bins), 0, 0)
        lo, hi = float(array.min()), float(array.max())
        if lo == hi:
            counts = [0] * bins
            counts[0] = n
            return cls(lo, hi, tuple(counts), n, 1)
        counts, _edges = np.histogram(array.astype(np.float64), bins=bins, range=(lo, hi))
        distinct = int(len(np.unique(array[: min(n, 8192)])))
        return cls(lo, hi, tuple(int(c) for c in counts), n, distinct)

    # -- selectivity ------------------------------------------------------

    def _bin_width(self) -> float:
        return (self.hi - self.lo) / len(self.counts) if self.hi > self.lo else 0.0

    def fraction_le(self, value: float) -> float:
        """Estimated fraction of rows with column <= value."""
        if self.total == 0:
            return 0.0
        if value < self.lo:
            return 0.0
        if value >= self.hi:
            return 1.0
        width = self._bin_width()
        if width == 0.0:
            return 1.0 if value >= self.lo else 0.0
        position = (value - self.lo) / width
        whole = int(position)
        fraction_in_bin = position - whole
        covered = sum(self.counts[:whole]) + self.counts[min(whole, len(self.counts) - 1)] * fraction_in_bin
        return min(1.0, covered / self.total)

    def selectivity(self, op: str, value: float) -> float:
        """Estimated match fraction for ``column OP value``.

        Strict and non-strict bounds differ by the estimated point mass
        at ``value`` (which matters for discrete columns: on a constant
        column, ``< lo`` is 0 while ``<= lo`` is 1).
        """
        if self.total == 0:
            return 0.0
        if op == "<=":
            return self.fraction_le(value)
        if op == "<":
            return max(0.0, self.fraction_le(value) - self.selectivity("=", value))
        if op == ">":
            return 1.0 - self.fraction_le(value)
        if op == ">=":
            return min(1.0, 1.0 - self.fraction_le(value) + self.selectivity("=", value))
        if op == "=":
            if value < self.lo or value > self.hi:
                return 0.0
            distinct = max(self.distinct_estimate, 1)
            return min(1.0, 1.0 / distinct)
        if op == "!=":
            return 1.0 - self.selectivity("=", value)
        raise StorageError(f"histogram cannot estimate operator {op!r}")

    def max_bin_fraction(self) -> float:
        """Largest single-bin mass — the estimator's intrinsic error bound
        (an equi-width histogram cannot resolve inside one bin)."""
        if self.total == 0:
            return 0.0
        return max(self.counts) / self.total

    def to_dict(self) -> dict:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "counts": list(self.counts),
            "total": self.total,
            "distinct": self.distinct_estimate,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ColumnHistogram":
        return cls(
            doc["lo"], doc["hi"], tuple(doc["counts"]), doc["total"], doc["distinct"]
        )
