"""Discrete-event simulation substrate for the Feisu reproduction."""

from repro.sim.events import Event, Process, SimulationError, Simulator
from repro.sim.netmodel import (
    Link,
    NetworkTopology,
    NodeAddress,
    TopologySpec,
    TrafficClass,
)
from repro.sim.resources import Cpu, Device, Disk, Nic, Resource, Ssd

__all__ = [
    "Cpu",
    "Device",
    "Disk",
    "Event",
    "Link",
    "NetworkTopology",
    "Nic",
    "NodeAddress",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Ssd",
    "TopologySpec",
    "TrafficClass",
]
