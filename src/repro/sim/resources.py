"""Hardware cost models used by the simulated cluster.

Each leaf server owns a :class:`Disk`, an :class:`Ssd`, a :class:`Cpu`
and a :class:`Nic`.  These devices serialize work FIFO: a request issued
while the device is busy starts when the device frees up.  Because the
kernel is single-threaded this is modeled without processes — each device
tracks the time it will next be free and hands back a timeout event for
the caller's completion.

Default parameters mirror the paper's §VI-A hardware table: 4-core
2.4 GHz Xeon, 3 TB SATA disks, one 500 GB SSD, 1 Gbps full-duplex
Ethernet, 64 GB of memory.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.sim.events import Event, SimulationError, Simulator

MB = 1024 * 1024
GB = 1024 * MB

#: Sequential bandwidth of one SATA spindle (paper nodes have four).
SATA_BANDWIDTH_BPS = 120 * MB
#: Random seek + rotational latency of a SATA disk.
SATA_SEEK_S = 8e-3
#: Read bandwidth of the node's SSD cache device.
SSD_BANDWIDTH_BPS = 450 * MB
SSD_SEEK_S = 8e-5
#: Per-port Ethernet bandwidth (1 Gbps full duplex).
NIC_BANDWIDTH_BPS = 125 * MB
NIC_LATENCY_S = 2e-4
#: Crude per-core scalar ops/s for predicate evaluation on a 2.4 GHz Xeon.
CPU_OPS_PER_SEC = 200e6


class Device:
    """A FIFO-serialized device with a scalar service rate.

    Subclasses expose intent-named helpers (``read``, ``transmit``,
    ``compute``) that translate a workload size into a service duration
    and enqueue it.
    """

    def __init__(self, sim: Simulator, name: str = "device"):
        self.sim = sim
        self.name = name
        self._free_at = 0.0
        self.busy_time = 0.0
        self.request_count = 0

    def service(self, duration: float, value: Any = None) -> Event:
        """Occupy the device for ``duration`` seconds (after queueing).

        Returns an event that fires when the work completes; its value is
        ``value``.
        """
        if duration < 0:
            raise SimulationError(f"negative service duration {duration}")
        now = self.sim.now
        start = max(now, self._free_at)
        end = start + duration
        self._free_at = end
        self.busy_time += duration
        self.request_count += 1
        return self.sim.timeout(end - now, value=value, name=f"{self.name}.service")

    def queue_delay(self) -> float:
        """Seconds a request issued now would wait before starting."""
        return max(0.0, self._free_at - self.sim.now)

    def utilization(self) -> float:
        """Fraction of elapsed simulation time this device was busy."""
        if self.sim.now <= 0:
            return 0.0
        return min(1.0, self.busy_time / self.sim.now)


class Disk(Device):
    """A rotational disk: seek latency plus sequential bandwidth."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = SATA_BANDWIDTH_BPS,
        seek_s: float = SATA_SEEK_S,
        name: str = "disk",
    ):
        super().__init__(sim, name=name)
        self.bandwidth_bps = bandwidth_bps
        self.seek_s = seek_s
        self.bytes_read = 0
        self.bytes_written = 0

    def read_time(self, nbytes: int, seeks: int = 1) -> float:
        return seeks * self.seek_s + nbytes / self.bandwidth_bps

    def read(self, nbytes: int, seeks: int = 1, value: Any = None) -> Event:
        self.bytes_read += nbytes
        return self.service(self.read_time(nbytes, seeks), value=value)

    def write(self, nbytes: int, seeks: int = 1, value: Any = None) -> Event:
        self.bytes_written += nbytes
        return self.service(self.read_time(nbytes, seeks), value=value)


class Ssd(Disk):
    """The node's SSD, used by Feisu's data-cache layer (§IV-B)."""

    def __init__(self, sim: Simulator, capacity_bytes: int = 500 * GB, name: str = "ssd"):
        super().__init__(sim, bandwidth_bps=SSD_BANDWIDTH_BPS, seek_s=SSD_SEEK_S, name=name)
        self.capacity_bytes = capacity_bytes


class Nic(Device):
    """A network port: per-message latency plus serialization time.

    Link-level contention along multi-hop paths is handled by
    :mod:`repro.sim.netmodel`; the NIC models the endpoint bottleneck.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = NIC_BANDWIDTH_BPS,
        latency_s: float = NIC_LATENCY_S,
        name: str = "nic",
    ):
        super().__init__(sim, name=name)
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self.bytes_sent = 0

    def transmit_time(self, nbytes: int) -> float:
        return self.latency_s + nbytes / self.bandwidth_bps

    def transmit(self, nbytes: int, value: Any = None) -> Event:
        self.bytes_sent += nbytes
        return self.service(self.transmit_time(nbytes), value=value)


class Cpu(Device):
    """A multi-core CPU modeled as ``cores`` parallel lanes.

    Work is expressed in abstract "ops" (≈ one scalar comparison).  For
    simplicity each compute request runs on the least-loaded lane.
    """

    def __init__(
        self,
        sim: Simulator,
        cores: int = 4,
        ops_per_sec: float = CPU_OPS_PER_SEC,
        name: str = "cpu",
    ):
        super().__init__(sim, name=name)
        if cores < 1:
            raise SimulationError("cpu needs at least one core")
        self.cores = cores
        self.ops_per_sec = ops_per_sec
        self._lane_free_at = [0.0] * cores
        self.ops_executed = 0.0

    def compute_time(self, ops: float) -> float:
        return ops / self.ops_per_sec

    def compute(self, ops: float, value: Any = None) -> Event:
        if ops < 0:
            raise SimulationError(f"negative op count {ops}")
        now = self.sim.now
        lane = min(range(self.cores), key=lambda i: self._lane_free_at[i])
        start = max(now, self._lane_free_at[lane])
        duration = self.compute_time(ops)
        end = start + duration
        self._lane_free_at[lane] = end
        self.busy_time += duration
        self.request_count += 1
        self.ops_executed += ops
        return self.sim.timeout(end - now, value=value, name=f"{self.name}.compute")

    def queue_delay(self) -> float:
        return max(0.0, min(self._lane_free_at) - self.sim.now)


class Resource:
    """A counted resource with FIFO waiters (e.g. task slots on a leaf).

    ``request()`` returns an event that fires once a unit is granted; the
    holder must call ``release()`` exactly once.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._waiters: List[Event] = []

    def request(self) -> Event:
        ev = self.sim.event(name=f"{self.name}.grant")
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release on idle resource {self.name!r}")
        if self._waiters:
            self._waiters.pop(0).succeed()
        else:
            self.in_use -= 1

    def resize(self, capacity: int) -> None:
        """Change capacity at runtime (used when the cluster manager
        reclaims resources for business-critical services, §V-B)."""
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.capacity = capacity
        while self._waiters and self.in_use < self.capacity:
            self.in_use += 1
            self._waiters.pop(0).succeed()

    @property
    def queue_length(self) -> int:
        return len(self._waiters)
