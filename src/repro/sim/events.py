"""Discrete-event simulation kernel.

Feisu's evaluation ran on a 4,000-node production cluster; this
reproduction replaces that testbed with a deterministic discrete-event
simulator.  The kernel here is intentionally small and dependency-free:

* :class:`Simulator` — the event loop: a priority queue of timestamped
  callbacks plus a virtual clock.
* :class:`Event` — a one-shot future that callbacks or processes can wait
  on.
* :class:`Process` — a generator-based cooperative task.  A process body
  ``yield``\\ s :class:`Event` objects (most commonly ``sim.timeout(dt)``)
  and is resumed when they fire.

Determinism: ties in the event queue are broken by insertion order, so a
run is a pure function of the seed used by whatever stochastic workload
drives it.  No wall-clock time or threads are involved anywhere.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import FeisuError


class SimulationError(FeisuError):
    """Raised for kernel misuse (waiting on a consumed event, negative
    delays, running a stopped simulator...)."""


class Event:
    """A one-shot occurrence with an optional value.

    An event starts *pending*; exactly one call to :meth:`succeed` or
    :meth:`fail` resolves it, at which point all registered callbacks are
    scheduled on the simulator's queue at the current simulation time.
    """

    __slots__ = ("sim", "_callbacks", "_value", "_exc", "_resolved", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._callbacks: List[Callable[[Event], None]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._resolved = False

    @property
    def triggered(self) -> bool:
        return self._resolved

    @property
    def ok(self) -> bool:
        return self._resolved and self._exc is None

    @property
    def value(self) -> Any:
        if not self._resolved:
            raise SimulationError("event value read before it triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._resolved:
            # Fire immediately (still via the queue, preserving ordering).
            self.sim.schedule(0.0, fn, self)
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        self._resolve(value, None)
        return self

    def fail(self, exc: BaseException) -> "Event":
        self._resolve(None, exc)
        return self

    def _resolve(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._resolved:
            raise SimulationError(f"event {self.name!r} resolved twice")
        self._resolved = True
        self._value = value
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self.sim.schedule(0.0, fn, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ok" if self.ok else ("failed" if self._resolved else "pending")
        return f"<Event {self.name!r} {state}>"


class Process(Event):
    """A cooperative task driven by a generator.

    The generator yields :class:`Event` instances; the process suspends
    until each fires.  When the generator returns, the process (itself an
    event) succeeds with the return value; an uncaught exception fails it.
    Other processes may therefore ``yield`` a process to join it.
    """

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any], name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        sim.schedule(0.0, self._step, None)

    def _step(self, fired: Optional[Event]) -> None:
        if self._resolved:
            return  # interrupted while waiting; drop the stale wakeup
        try:
            if fired is None:
                target = next(self._gen)
            elif fired.ok:
                target = self._gen.send(fired.value)
            else:
                target = self._gen.throw(fired._exc)  # noqa: SLF001
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # pragma: no cover - defensive
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(SimulationError(f"process {self.name!r} yielded non-event {target!r}"))
            return
        target.add_callback(self._step)

    def interrupt(self, reason: str = "interrupted") -> None:
        """Fail the process from outside (used for task cancellation)."""
        if not self._resolved:
            self._gen.close()
            self.fail(SimulationError(reason))


class Simulator:
    """The event loop: virtual clock + timestamped callback queue."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Any] = []
        self._seq = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- scheduling ---------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), fn, args))

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "timeout") -> Event:
        """An event that fires ``delay`` seconds from now."""
        ev = Event(self, name=name)
        self.schedule(delay, ev.succeed, value)
        return ev

    def process(self, gen: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a cooperative process from a generator."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires when every input event has fired ok.

        Its value is the list of input values in input order.  Fails as
        soon as any input fails.
        """
        events = list(events)
        result = Event(self, name="all_of")
        if not events:
            result.succeed([])
            return result
        remaining = [len(events)]

        def on_fire(_: Event) -> None:
            if result.triggered:
                return
            remaining[0] -= 1
            failed = next((e for e in events if e.triggered and not e.ok), None)
            if failed is not None:
                result.fail(failed._exc)  # noqa: SLF001
            elif remaining[0] == 0:
                result.succeed([e.value for e in events])

        for ev in events:
            ev.add_callback(on_fire)
        return result

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that fires with the first input event's outcome."""
        events = list(events)
        result = Event(self, name="any_of")
        if not events:
            raise SimulationError("any_of() requires at least one event")

        def on_fire(ev: Event) -> None:
            if result.triggered:
                return
            if ev.ok:
                result.succeed(ev.value)
            else:
                result.fail(ev._exc)  # noqa: SLF001

        for ev in events:
            ev.add_callback(on_fire)
        return result

    # -- running ------------------------------------------------------

    def step(self) -> bool:
        """Execute the next queued callback; return False if queue empty."""
        if not self._queue:
            return False
        t, _, fn, args = heapq.heappop(self._queue)
        if t < self._now:  # pragma: no cover - heap invariant
            raise SimulationError("time went backwards")
        self._now = t
        fn(*args)
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue (optionally stopping at time ``until``).

        Returns the simulation time when the run stopped.
        """
        self._running = True
        try:
            while self._queue:
                t = self._queue[0][0]
                if until is not None and t > until:
                    self._now = until
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and self._now < until and not self._queue:
            self._now = until
        return self._now

    def run_until_complete(self, ev: Event, limit: float = float("inf")) -> Any:
        """Run until ``ev`` fires (or ``limit`` is reached) and return its value."""
        while not ev.triggered:
            if not self._queue:
                raise SimulationError(f"deadlock: {ev.name!r} can never fire")
            if self._queue[0][0] > limit:
                raise SimulationError(f"time limit {limit} reached waiting for {ev.name!r}")
            self.step()
        return ev.value
