"""Cluster network model: geo-distributed datacenters, racks, nodes.

The paper's deployment spans six data centers whose nodes talk over
1 Gbps Ethernet, with strict traffic-class priorities (§V-C): control and
state flow first, write data flow second, read data flow last, enforced
in production via switch TOS flags.  This module reproduces that with a
flow-level model:

* topology is a tree: node — top-of-rack link — datacenter core — WAN;
* every link is a FIFO-serialized :class:`Link`;
* a transfer queues on its *bottleneck* link and pays propagation latency
  for the remaining hops (standard flow-level approximation);
* control-class messages ride the reserved bandwidth and skip data
  queues, mirroring the TOS reservation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import FeisuError
from repro.sim.events import Event, Simulator
from repro.sim.resources import MB


class TrafficClass(enum.IntEnum):
    """Priority classes from §V-C, highest priority first."""

    CONTROL = 0
    WRITE = 1
    READ = 2


#: Fraction of link bandwidth available to each class once the reserved
#: control share is carved out.  Read flow is cheapest / lowest priority.
CLASS_BANDWIDTH_SHARE = {
    TrafficClass.CONTROL: 1.0,
    TrafficClass.WRITE: 0.9,
    TrafficClass.READ: 0.7,
}

TOR_BANDWIDTH_BPS = 125 * MB        # 1 Gbps node uplink
CORE_BANDWIDTH_BPS = 1250 * MB      # 10 Gbps rack uplink
WAN_BANDWIDTH_BPS = 250 * MB        # 2 Gbps inter-datacenter
TOR_LATENCY_S = 1e-4
CORE_LATENCY_S = 4e-4
WAN_LATENCY_S = 5e-3


class Link:
    """One duplex link with FIFO data queue and a reserved control lane."""

    def __init__(self, sim: Simulator, name: str, bandwidth_bps: float, latency_s: float):
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self._free_at = 0.0
        self.bytes_carried = 0
        self.busy_time = 0.0

    def transfer_duration(self, nbytes: int, cls: TrafficClass) -> float:
        share = CLASS_BANDWIDTH_SHARE[cls]
        return nbytes / (self.bandwidth_bps * share)

    def occupy(self, nbytes: int, cls: TrafficClass) -> float:
        """Reserve the link for a transfer; returns completion delay from now.

        Control traffic bypasses the data queue (reserved bandwidth);
        write/read traffic queues FIFO behind earlier data transfers.
        """
        duration = self.transfer_duration(nbytes, cls)
        now = self.sim.now
        self.bytes_carried += nbytes
        if cls is TrafficClass.CONTROL:
            return self.latency_s + duration
        start = max(now, self._free_at)
        end = start + duration
        self._free_at = end
        self.busy_time += duration
        return (end - now) + self.latency_s

    def queue_delay(self) -> float:
        return max(0.0, self._free_at - self.sim.now)

    def utilization(self) -> float:
        if self.sim.now <= 0:
            return 0.0
        return min(1.0, self.busy_time / self.sim.now)


@dataclass(frozen=True)
class NodeAddress:
    """Position of a node in the datacenter/rack tree."""

    datacenter: int
    rack: int
    node: int

    def __str__(self) -> str:
        return f"dc{self.datacenter}/rack{self.rack}/node{self.node}"


@dataclass
class TopologySpec:
    """Shape of the simulated cluster."""

    datacenters: int = 1
    racks_per_datacenter: int = 4
    nodes_per_rack: int = 16

    @property
    def total_nodes(self) -> int:
        return self.datacenters * self.racks_per_datacenter * self.nodes_per_rack

    def addresses(self) -> List[NodeAddress]:
        return [
            NodeAddress(d, r, n)
            for d in range(self.datacenters)
            for r in range(self.racks_per_datacenter)
            for n in range(self.nodes_per_rack)
        ]


class NetworkTopology:
    """Tree-structured network with per-link queueing.

    The scheduler consults :meth:`distance` (hop count) for "low network
    transfer overhead" placement (§III-B); data movement goes through
    :meth:`transfer`, which advances the simulated clock appropriately.
    """

    def __init__(self, sim: Simulator, spec: TopologySpec):
        self.sim = sim
        self.spec = spec
        #: Installed :class:`~repro.faults.injector.FaultInjector`, or
        #: None — the default — in which case no fault code runs at all.
        self.faults = None
        self._tor: Dict[Tuple[int, int], Link] = {}
        self._core: Dict[int, Link] = {}
        self._wan: Dict[Tuple[int, int], Link] = {}
        #: Nodes admitted after boot (S55 elastic join).  Links are
        #: per-rack/per-datacenter, not per-node, so a node joining an
        #: existing rack shares that rack's ToR — no new Link objects.
        self._admitted: set = set()
        for d in range(spec.datacenters):
            self._core[d] = Link(sim, f"core-dc{d}", CORE_BANDWIDTH_BPS, CORE_LATENCY_S)
            for r in range(spec.racks_per_datacenter):
                self._tor[(d, r)] = Link(
                    sim, f"tor-dc{d}-rack{r}", TOR_BANDWIDTH_BPS, TOR_LATENCY_S
                )
        for a in range(spec.datacenters):
            for b in range(a + 1, spec.datacenters):
                self._wan[(a, b)] = Link(sim, f"wan-{a}-{b}", WAN_BANDWIDTH_BPS, WAN_LATENCY_S)

    # -- path computation ----------------------------------------------

    def admit_node(self, addr: NodeAddress) -> None:
        """Cable up a node joining after boot (S55 elastic join).

        The rack and datacenter must already exist — the ToR and core
        links are physical — but the node index may exceed the boot
        spec's ``nodes_per_rack``.  Idempotent."""
        rack_ok = (
            0 <= addr.datacenter < self.spec.datacenters
            and 0 <= addr.rack < self.spec.racks_per_datacenter
            and addr.node >= 0
        )
        if not rack_ok:
            raise FeisuError(
                f"cannot admit {addr}: no such rack in topology {self.spec}"
            )
        self._admitted.add(addr)

    def _validate(self, addr: NodeAddress) -> None:
        if addr in self._admitted:
            return
        ok = (
            0 <= addr.datacenter < self.spec.datacenters
            and 0 <= addr.rack < self.spec.racks_per_datacenter
            and 0 <= addr.node < self.spec.nodes_per_rack
        )
        if not ok:
            raise FeisuError(f"address {addr} outside topology {self.spec}")

    def path(self, src: NodeAddress, dst: NodeAddress) -> List[Link]:
        """Links crossed from ``src`` to ``dst`` (empty for same node)."""
        self._validate(src)
        self._validate(dst)
        if src == dst:
            return []
        links: List[Link] = [self._tor[(src.datacenter, src.rack)]]
        if (src.datacenter, src.rack) == (dst.datacenter, dst.rack):
            return links  # one shared ToR switch
        links.append(self._core[src.datacenter])
        if src.datacenter != dst.datacenter:
            a, b = sorted((src.datacenter, dst.datacenter))
            links.append(self._wan[(a, b)])
            links.append(self._core[dst.datacenter])
        links.append(self._tor[(dst.datacenter, dst.rack)])
        return links

    def distance(self, src: NodeAddress, dst: NodeAddress) -> int:
        """Hop count — the scheduler's network-cost proxy."""
        return len(self.path(src, dst))

    # -- data movement ---------------------------------------------------

    def transfer(
        self,
        src: NodeAddress,
        dst: NodeAddress,
        nbytes: int,
        cls: TrafficClass = TrafficClass.READ,
    ) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``; completion event.

        The transfer queues on its bottleneck link and pays propagation
        latency on the rest of the path.  This is the fault layer's RPC
        interception point: with an injector installed, every message may
        be dropped, delayed or duplicated per the active plan.
        """
        if self.faults is not None:
            return self.faults.intercept_transfer(self, src, dst, nbytes, cls)
        return self._transfer(src, dst, nbytes, cls)

    def _transfer(
        self,
        src: NodeAddress,
        dst: NodeAddress,
        nbytes: int,
        cls: TrafficClass = TrafficClass.READ,
    ) -> Event:
        links = self.path(src, dst)
        if not links:
            return self.sim.timeout(0.0, name="local-transfer")
        bottleneck = min(links, key=lambda ln: ln.bandwidth_bps * CLASS_BANDWIDTH_SHARE[cls])
        delay = bottleneck.occupy(nbytes, cls)
        for link in links:
            if link is not bottleneck:
                delay += link.latency_s
                link.bytes_carried += nbytes  # volume accounting on the full path
        return self.sim.timeout(delay, name=f"xfer-{src}->{dst}")

    def transfer_time_estimate(
        self, src: NodeAddress, dst: NodeAddress, nbytes: int, cls: TrafficClass = TrafficClass.READ
    ) -> float:
        """Queue-free estimate used by the cost-based scheduler."""
        links = self.path(src, dst)
        if not links:
            return 0.0
        bottleneck = min(links, key=lambda ln: ln.bandwidth_bps * CLASS_BANDWIDTH_SHARE[cls])
        return sum(ln.latency_s for ln in links) + bottleneck.transfer_duration(nbytes, cls)

    def links(self) -> List[Link]:
        """All links, for utilization reporting."""
        return list(self._tor.values()) + list(self._core.values()) + list(self._wan.values())
