"""SQL formatting: AST → canonical query text.

The client's "query syntax checking ... guides users to write the proper
SQL-like query command" (§III-C); the formatter is the other half of
that loop — history entries, EXPLAIN output and error messages all print
queries in one canonical, re-parseable form.

Guarantee (property-tested): ``parse(format_query(parse(text)))``
produces an AST equal to ``parse(text)``.
"""

from __future__ import annotations

from typing import List

from repro.sql.ast import (
    AggregateCall,
    BinaryOp,
    BinaryOperator,
    Column,
    Expr,
    FunctionCall,
    JoinClause,
    JoinKind,
    Literal,
    Negate,
    NotOp,
    OrderItem,
    Query,
    SelectItem,
    Star,
)

#: Binding strength per operator family; higher binds tighter.
_PRECEDENCE = {
    BinaryOperator.OR: 1,
    BinaryOperator.AND: 2,
    # NOT sits at 3
    BinaryOperator.EQ: 4,
    BinaryOperator.NE: 4,
    BinaryOperator.LT: 4,
    BinaryOperator.LE: 4,
    BinaryOperator.GT: 4,
    BinaryOperator.GE: 4,
    BinaryOperator.CONTAINS: 4,
    BinaryOperator.ADD: 5,
    BinaryOperator.SUB: 5,
    BinaryOperator.MUL: 6,
    BinaryOperator.DIV: 6,
    BinaryOperator.MOD: 6,
}


def format_expression(expr: Expr, parent_precedence: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, Literal):
        if isinstance(expr.value, bool):
            return "TRUE" if expr.value else "FALSE"
        if isinstance(expr.value, str):
            return "'" + expr.value.replace("'", "''") + "'"
        return repr(expr.value)
    if isinstance(expr, Column):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, Negate):
        inner = format_expression(expr.operand, 7)
        return f"-{inner}"
    if isinstance(expr, NotOp):
        inner = format_expression(expr.operand, 3)
        text = f"NOT {inner}"
        return f"({text})" if parent_precedence > 3 else text
    if isinstance(expr, AggregateCall):
        arg = format_expression(expr.argument)
        base = f"{expr.func}({arg})"
        if expr.within is not None:
            base = f"{base} WITHIN {format_expression(expr.within, 7)}"
        return base
    if isinstance(expr, FunctionCall):
        args = ", ".join(format_expression(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, BinaryOp):
        prec = _PRECEDENCE[expr.op]
        left = format_expression(expr.left, prec)
        # right operand of same precedence needs parens to keep the
        # parser's left-associative shape (a - (b - c) != a - b - c)
        right = format_expression(expr.right, prec + 1)
        text = f"{left} {expr.op.value} {right}"
        return f"({text})" if prec < parent_precedence else text
    raise TypeError(f"cannot format node {type(expr).__name__}")  # pragma: no cover


def format_query(query: Query, indent: bool = False) -> str:
    """Render a full query; ``indent`` puts each clause on its own line."""
    sep = "\n" if indent else " "
    parts: List[str] = [f"SELECT {_select_list(query.select_items)}"]
    tables = ", ".join(_table_text(t.name, t.alias) for t in query.tables)
    parts.append(f"FROM {tables}")
    for join in query.joins:
        parts.append(_join_text(join))
    if query.where is not None:
        parts.append(f"WHERE {format_expression(query.where)}")
    if query.group_by:
        parts.append("GROUP BY " + ", ".join(format_expression(g) for g in query.group_by))
    if query.having is not None:
        parts.append(f"HAVING {format_expression(query.having)}")
    if query.order_by:
        parts.append("ORDER BY " + ", ".join(_order_text(o) for o in query.order_by))
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return sep.join(parts)


def _select_list(items) -> str:
    rendered = []
    for item in items:
        text = format_expression(item.expr)
        if item.alias:
            text += f" AS {item.alias}"
        rendered.append(text)
    return ", ".join(rendered)


def _table_text(name: str, alias) -> str:
    return f"{name} AS {alias}" if alias else name


def _join_text(join: JoinClause) -> str:
    keyword = {
        JoinKind.INNER: "JOIN",
        JoinKind.LEFT_OUTER: "LEFT OUTER JOIN",
        JoinKind.RIGHT_OUTER: "RIGHT OUTER JOIN",
        JoinKind.CROSS: "CROSS JOIN",
    }[join.kind]
    text = f"{keyword} {_table_text(join.table.name, join.table.alias)}"
    if join.condition is not None:
        text += f" ON {format_expression(join.condition)}"
    return text


def _order_text(item: OrderItem) -> str:
    text = format_expression(item.expr)
    return text if item.ascending else f"{text} DESC"
