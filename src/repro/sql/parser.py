"""Recursive-descent parser for the §III-A grammar.

Produces the immutable :mod:`repro.sql.ast` node tree.  Precedence
(loosest first): OR, AND, NOT, comparison/CONTAINS, additive,
multiplicative, unary minus, primary.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.sql.ast import (
    AGGREGATE_FUNCTIONS,
    AggregateCall,
    BinaryOp,
    BinaryOperator,
    Column,
    Expr,
    FunctionCall,
    JoinClause,
    JoinKind,
    Literal,
    Negate,
    NotOp,
    OrderItem,
    Query,
    SelectItem,
    Star,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize

_COMPARISON_OPS = {
    "=": BinaryOperator.EQ,
    "!=": BinaryOperator.NE,
    "<": BinaryOperator.LT,
    "<=": BinaryOperator.LE,
    ">": BinaryOperator.GT,
    ">=": BinaryOperator.GE,
}

_SCALAR_FUNCTIONS = frozenset({"LENGTH", "LOWER", "UPPER", "ABS"})

#: Parenthesis-nesting guard: beyond this, reject with a clear error
#: instead of exhausting the recursion stack.
MAX_EXPRESSION_DEPTH = 64


def parse(text: str) -> Query:
    """Parse one SELECT statement (optionally ``;``-terminated)."""
    return _Parser(text).parse_query()


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression (used by tests and the workload
    generator's predicate tooling)."""
    parser = _Parser(text)
    expr = parser._expr()
    parser._expect_eof()
    return expr


class _Parser:
    def __init__(self, text: str):
        self._text = text
        self._tokens = tokenize(text)
        self._pos = 0
        self._depth = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.type is not TokenType.EOF:
            self._pos += 1
        return tok

    def _error(self, message: str) -> ParseError:
        tok = self._peek()
        return ParseError(f"{message}, found {tok}", position=tok.position, text=self._text)

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise self._error(f"expected {word}")

    def _accept_punct(self, ch: str) -> bool:
        tok = self._peek()
        if tok.type is TokenType.PUNCT and tok.text == ch:
            self._advance()
            return True
        return False

    def _expect_punct(self, ch: str) -> None:
        if not self._accept_punct(ch):
            raise self._error(f"expected {ch!r}")

    def _expect_identifier(self, what: str) -> str:
        tok = self._peek()
        if tok.type is not TokenType.IDENTIFIER:
            raise self._error(f"expected {what}")
        self._advance()
        return tok.text

    def _expect_eof(self) -> None:
        self._accept_punct(";")
        if self._peek().type is not TokenType.EOF:
            raise self._error("unexpected trailing input")

    # -- statement -------------------------------------------------------

    def parse_query(self) -> Query:
        self._expect_keyword("SELECT")
        select_items = self._select_list()
        self._expect_keyword("FROM")
        tables = [self._table_ref()]
        while self._accept_punct(","):
            tables.append(self._table_ref())
        joins = self._joins()
        where = self._expr() if self._accept_keyword("WHERE") else None
        group_by: Tuple[Expr, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = tuple(self._expr_list())
        having = self._expr() if self._accept_keyword("HAVING") else None
        order_by: Tuple[OrderItem, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = tuple(self._order_list())
        limit = None
        if self._accept_keyword("LIMIT"):
            tok = self._peek()
            if tok.type is not TokenType.NUMBER or "." in tok.text or "e" in tok.text.lower():
                raise self._error("expected integer LIMIT")
            self._advance()
            limit = int(tok.text)
            if limit < 0:
                raise self._error("LIMIT must be non-negative")
        self._expect_eof()
        return Query(
            select_items=tuple(select_items),
            tables=tuple(tables),
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
        )

    def _select_list(self) -> List[SelectItem]:
        items = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        tok = self._peek()
        if tok.type is TokenType.OPERATOR and tok.text == "*":
            # bare ``SELECT *`` — valid only when alone; analyzer checks.
            self._advance()
            return SelectItem(Star())
        expr = self._expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias after AS")
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().text
        return SelectItem(expr, alias)

    def _table_ref(self) -> TableRef:
        name = self._expect_identifier("table name")
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("table alias")
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().text
        return TableRef(name, alias)

    def _joins(self) -> List[JoinClause]:
        joins: List[JoinClause] = []
        while True:
            kind = self._join_kind()
            if kind is None:
                return joins
            table = self._table_ref()
            condition: Optional[Expr] = None
            if kind is not JoinKind.CROSS:
                self._expect_keyword("ON")
                condition = self._expr()
            joins.append(JoinClause(kind, table, condition))

    def _join_kind(self) -> Optional[JoinKind]:
        tok = self._peek()
        if tok.is_keyword("JOIN"):
            self._advance()
            return JoinKind.INNER
        if tok.is_keyword("INNER"):
            self._advance()
            self._expect_keyword("JOIN")
            return JoinKind.INNER
        if tok.is_keyword("CROSS"):
            self._advance()
            self._expect_keyword("JOIN")
            return JoinKind.CROSS
        if tok.is_keyword("LEFT") or tok.is_keyword("RIGHT"):
            side = self._advance().text
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return JoinKind.LEFT_OUTER if side == "LEFT" else JoinKind.RIGHT_OUTER
        return None

    def _expr_list(self) -> List[Expr]:
        items = [self._expr()]
        while self._accept_punct(","):
            items.append(self._expr())
        return items

    def _order_list(self) -> List[OrderItem]:
        items = []
        while True:
            expr = self._expr()
            ascending = True
            if self._accept_keyword("DESC"):
                ascending = False
            else:
                self._accept_keyword("ASC")
            items.append(OrderItem(expr, ascending))
            if not self._accept_punct(","):
                return items

    # -- expressions -------------------------------------------------------

    def _expr(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._accept_keyword("OR"):
            left = BinaryOp(BinaryOperator.OR, left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self._accept_keyword("AND"):
            left = BinaryOp(BinaryOperator.AND, left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self._accept_keyword("NOT"):
            return NotOp(self._not_expr())
        tok = self._peek()
        if tok.type is TokenType.OPERATOR and tok.text == "!":  # pragma: no cover
            raise self._error("use NOT for negation")
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        tok = self._peek()
        if tok.type is TokenType.OPERATOR and tok.text in _COMPARISON_OPS:
            self._advance()
            return BinaryOp(_COMPARISON_OPS[tok.text], left, self._additive())
        if tok.is_keyword("CONTAINS"):
            self._advance()
            return BinaryOp(BinaryOperator.CONTAINS, left, self._additive())
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            tok = self._peek()
            if tok.type is TokenType.OPERATOR and tok.text in ("+", "-"):
                self._advance()
                op = BinaryOperator.ADD if tok.text == "+" else BinaryOperator.SUB
                left = BinaryOp(op, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            tok = self._peek()
            if tok.type is TokenType.OPERATOR and tok.text in ("*", "/", "%"):
                self._advance()
                op = {
                    "*": BinaryOperator.MUL,
                    "/": BinaryOperator.DIV,
                    "%": BinaryOperator.MOD,
                }[tok.text]
                left = BinaryOp(op, left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        tok = self._peek()
        if tok.type is TokenType.OPERATOR and tok.text == "-":
            self._advance()
            return Negate(self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        tok = self._peek()
        if tok.type is TokenType.NUMBER:
            self._advance()
            text = tok.text
            if "." in text or "e" in text.lower():
                return Literal(float(text))
            return Literal(int(text))
        if tok.type is TokenType.STRING:
            self._advance()
            return Literal(tok.text)
        if tok.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if tok.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if tok.type is TokenType.PUNCT and tok.text == "(":
            if self._depth >= MAX_EXPRESSION_DEPTH:
                raise ParseError(
                    f"expression nested deeper than {MAX_EXPRESSION_DEPTH} parentheses",
                    position=tok.position,
                    text=self._text,
                )
            self._advance()
            self._depth += 1
            try:
                inner = self._expr()
            finally:
                self._depth -= 1
            self._expect_punct(")")
            return inner
        if tok.type is TokenType.IDENTIFIER:
            return self._identifier_expr()
        raise self._error("expected expression")

    def _identifier_expr(self) -> Expr:
        name = self._advance().text
        # function call?
        if self._peek().type is TokenType.PUNCT and self._peek().text == "(":
            return self._call(name)
        # qualified column?
        if self._peek().type is TokenType.PUNCT and self._peek().text == ".":
            self._advance()
            column = self._expect_identifier("column name after '.'")
            return Column(column, table=name)
        return Column(name)

    def _call(self, name: str) -> Expr:
        upper = name.upper()
        self._expect_punct("(")
        if upper in AGGREGATE_FUNCTIONS:
            if upper == "COUNT" and self._peek().type is TokenType.OPERATOR and self._peek().text == "*":
                self._advance()
                argument: Expr = Star()
            else:
                argument = self._expr()
            self._expect_punct(")")
            within = self._expr() if self._accept_keyword("WITHIN") else None
            return AggregateCall(upper, argument, within)
        if upper in _SCALAR_FUNCTIONS:
            args = [self._expr()]
            while self._accept_punct(","):
                args.append(self._expr())
            self._expect_punct(")")
            return FunctionCall(upper, tuple(args))
        raise self._error(f"unknown function {name!r}")
