"""Abstract syntax tree for Feisu's SQL dialect.

The grammar is the star-schema query language of §III-A::

    SELECT expr1 [[AS] alias1] [...]
           [aggr_func(expr3) WITHIN expr4]
    FROM table1 [, table2, ...]
         [[INNER|[RIGHT|LEFT] OUTER|CROSS] JOIN table3 [[AS] alias3]
          ON join_cond [AND join_cond ...]]
    [WHERE cond] [GROUP BY ...] [HAVING cond]
    [ORDER BY field [DESC|ASC] ...] [LIMIT n];

plus the ``CONTAINS`` comparison the evaluation workload uses (§VI-B).
Nodes are immutable dataclasses; the analyzer decorates them externally
rather than mutating them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


class BinaryOperator(enum.Enum):
    """Binary operators, grouped by family."""

    # comparisons
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    CONTAINS = "CONTAINS"
    # boolean connectives
    AND = "AND"
    OR = "OR"
    # arithmetic
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"

    @property
    def is_comparison(self) -> bool:
        return self in (
            BinaryOperator.EQ,
            BinaryOperator.NE,
            BinaryOperator.LT,
            BinaryOperator.LE,
            BinaryOperator.GT,
            BinaryOperator.GE,
            BinaryOperator.CONTAINS,
        )

    @property
    def is_boolean(self) -> bool:
        return self in (BinaryOperator.AND, BinaryOperator.OR)

    @property
    def is_arithmetic(self) -> bool:
        return self in (
            BinaryOperator.ADD,
            BinaryOperator.SUB,
            BinaryOperator.MUL,
            BinaryOperator.DIV,
            BinaryOperator.MOD,
        )


#: Comparison flip table for normalizing ``literal OP column``.
FLIPPED = {
    BinaryOperator.LT: BinaryOperator.GT,
    BinaryOperator.LE: BinaryOperator.GE,
    BinaryOperator.GT: BinaryOperator.LT,
    BinaryOperator.GE: BinaryOperator.LE,
    BinaryOperator.EQ: BinaryOperator.EQ,
    BinaryOperator.NE: BinaryOperator.NE,
}

#: Negation table: NOT (a OP b)  ==  a NEGATED[OP] b.
NEGATED = {
    BinaryOperator.EQ: BinaryOperator.NE,
    BinaryOperator.NE: BinaryOperator.EQ,
    BinaryOperator.LT: BinaryOperator.GE,
    BinaryOperator.LE: BinaryOperator.GT,
    BinaryOperator.GT: BinaryOperator.LE,
    BinaryOperator.GE: BinaryOperator.LT,
}


class Expr:
    """Base class for expression nodes."""

    def children(self) -> Tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Literal(Expr):
    value: Union[int, float, str, bool]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return str(self.value)


@dataclass(frozen=True)
class Column(Expr):
    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` — only valid directly under COUNT() or as the lone select item."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: BinaryOperator
    left: Expr
    right: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class NotOp(Expr):
    operand: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class Negate(Expr):
    """Arithmetic unary minus."""

    operand: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"(-{self.operand})"


#: Aggregate function names the engine implements.
AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


@dataclass(frozen=True)
class AggregateCall(Expr):
    """``aggr_func(expr) [WITHIN expr]``.

    ``WITHIN`` (borrowed from Dremel's dialect, which Feisu's grammar
    echoes) scopes the aggregate to partitions of the given expression;
    the analyzer folds the WITHIN expression into the grouping keys.
    """

    func: str
    argument: Expr  # Star() for COUNT(*)
    within: Optional[Expr] = None

    def children(self) -> Tuple[Expr, ...]:
        kids: Tuple[Expr, ...] = (self.argument,)
        if self.within is not None:
            kids += (self.within,)
        return kids

    def __str__(self) -> str:
        base = f"{self.func}({self.argument})"
        return f"{base} WITHIN {self.within}" if self.within is not None else base


@dataclass(frozen=True)
class FunctionCall(Expr):
    """Scalar functions (LENGTH, LOWER, UPPER, ABS)."""

    name: str
    args: Tuple[Expr, ...]

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


class JoinKind(enum.Enum):
    INNER = "INNER"
    LEFT_OUTER = "LEFT OUTER"
    RIGHT_OUTER = "RIGHT OUTER"
    CROSS = "CROSS"


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name expressions refer to this table by."""
        return self.alias or self.name


@dataclass(frozen=True)
class JoinClause:
    kind: JoinKind
    table: TableRef
    condition: Optional[Expr]  # None only for CROSS


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class Query:
    """One parsed SELECT statement."""

    select_items: Tuple[SelectItem, ...]
    tables: Tuple[TableRef, ...]
    joins: Tuple[JoinClause, ...] = ()
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None


def walk(expr: Expr):
    """Yield ``expr`` and all descendants, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def referenced_columns(expr: Expr) -> List[Column]:
    """All column references inside an expression, in visit order."""
    return [e for e in walk(expr) if isinstance(e, Column)]


def contains_aggregate(expr: Expr) -> bool:
    return any(isinstance(e, AggregateCall) for e in walk(expr))


def map_columns(expr: Expr, fn) -> Expr:
    """Rebuild an expression tree with ``fn`` applied to every Column."""
    if isinstance(expr, Column):
        return fn(expr)
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, map_columns(expr.left, fn), map_columns(expr.right, fn))
    if isinstance(expr, NotOp):
        return NotOp(map_columns(expr.operand, fn))
    if isinstance(expr, Negate):
        return Negate(map_columns(expr.operand, fn))
    if isinstance(expr, FunctionCall):
        return FunctionCall(expr.name, tuple(map_columns(a, fn) for a in expr.args))
    if isinstance(expr, AggregateCall):
        within = map_columns(expr.within, fn) if expr.within is not None else None
        return AggregateCall(expr.func, map_columns(expr.argument, fn), within)
    return expr
