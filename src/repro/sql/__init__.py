"""SQL frontend for Feisu's star-schema dialect (§III-A)."""

from repro.sql.analyzer import AnalyzedQuery, analyze
from repro.sql.ast import (
    AggregateCall,
    BinaryOp,
    BinaryOperator,
    Column,
    Expr,
    FunctionCall,
    JoinClause,
    JoinKind,
    Literal,
    Negate,
    NotOp,
    OrderItem,
    Query,
    SelectItem,
    Star,
    TableRef,
)
from repro.sql.formatter import format_expression, format_query
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse, parse_expression
from repro.sql.statements import classify_statement

__all__ = [
    "AggregateCall",
    "AnalyzedQuery",
    "BinaryOp",
    "BinaryOperator",
    "Column",
    "Expr",
    "FunctionCall",
    "JoinClause",
    "JoinKind",
    "Literal",
    "Negate",
    "NotOp",
    "OrderItem",
    "Query",
    "SelectItem",
    "Star",
    "TableRef",
    "Token",
    "TokenType",
    "analyze",
    "classify_statement",
    "format_expression",
    "format_query",
    "parse",
    "parse_expression",
    "tokenize",
]
