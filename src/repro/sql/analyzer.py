"""Semantic analysis: name resolution, type checking, aggregate rules.

The job manager "analyze[s] query execution semantics" before admitting a
job (§III-C); this module is that step.  It binds table references
against the catalog, resolves (possibly qualified) column names, infers
types, enforces grouping rules, folds ``WITHIN`` scopes into group keys,
and computes the output schema.

The result is an :class:`AnalyzedQuery`, the planner's input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.columnar.schema import DataType, Field, Schema, common_type
from repro.columnar.table import Catalog, Table
from repro.errors import AnalysisError
from repro.sql.ast import (
    AggregateCall,
    BinaryOp,
    BinaryOperator,
    Column,
    Expr,
    FunctionCall,
    JoinClause,
    JoinKind,
    Literal,
    Negate,
    NotOp,
    OrderItem,
    Query,
    SelectItem,
    Star,
    contains_aggregate,
    walk,
)

_AGG_RESULT_TYPE = {
    "COUNT": lambda t: DataType.INT64,
    "SUM": lambda t: t,
    "AVG": lambda t: DataType.FLOAT64,
    "MIN": lambda t: t,
    "MAX": lambda t: t,
}

_SCALAR_SIGNATURES = {
    "LENGTH": ((DataType.STRING,), DataType.INT64),
    "LOWER": ((DataType.STRING,), DataType.STRING),
    "UPPER": ((DataType.STRING,), DataType.STRING),
    "ABS": (None, None),  # numeric identity, checked specially
}


@dataclass
class ResolvedColumn:
    """Where a column reference landed: binding name + field."""

    binding: str
    table: Table
    field: Field

    @property
    def qualified(self) -> str:
        return f"{self.binding}.{self.field.name}"


@dataclass
class AnalyzedQuery:
    """A query that passed semantic analysis."""

    query: Query
    #: binding name (alias or table name) -> Table, in FROM/JOIN order.
    tables: Dict[str, Table]
    #: (table_qualifier_or_None, column_name) -> resolution.
    resolutions: Dict[Tuple[Optional[str], str], ResolvedColumn]
    #: output column names, in select order.
    output_names: List[str]
    #: expressions producing each output column (Star already expanded).
    output_exprs: List[Expr]
    output_schema: Schema
    #: full grouping key list: explicit GROUP BY plus folded WITHIN exprs.
    group_keys: List[Expr]
    #: every aggregate call in SELECT/HAVING/ORDER BY.
    aggregates: List[AggregateCall]
    #: name of the first FROM table — the scan driver.
    base_binding: str

    @property
    def is_aggregate(self) -> bool:
        return bool(self.aggregates) or bool(self.group_keys)

    def resolve(self, column: Column) -> ResolvedColumn:
        try:
            return self.resolutions[(column.table, column.name)]
        except KeyError:
            raise AnalysisError(f"unresolved column {column}") from None

    def type_of(self, expr: Expr) -> DataType:
        return _infer_type(expr, self)

    def columns_of(self, binding: str) -> List[str]:
        """Column names of ``binding`` referenced anywhere in the query."""
        wanted = set()
        exprs: List[Expr] = list(self.output_exprs) + list(self.group_keys)
        if self.query.where is not None:
            exprs.append(self.query.where)
        if self.query.having is not None:
            exprs.append(self.query.having)
        for join in self.query.joins:
            if join.condition is not None:
                exprs.append(join.condition)
        for item in self.query.order_by:
            exprs.append(item.expr)
        for expr in exprs:
            for node in walk(expr):
                if isinstance(node, Column):
                    res = self.resolutions.get((node.table, node.name))
                    if res is not None and res.binding == binding:
                        wanted.add(res.field.name)
        return sorted(wanted)

    @property
    def order_by(self) -> Tuple[OrderItem, ...]:
        return self.query.order_by

    @property
    def limit(self) -> Optional[int]:
        return self.query.limit


def analyze(query: Query, catalog: Catalog) -> AnalyzedQuery:
    """Run full semantic analysis; raises :class:`AnalysisError` on any
    violation."""
    tables = _bind_tables(query, catalog)
    query = _fold_dotted_columns(query, tables)
    resolutions = _resolve_columns(query, tables)

    analyzed = AnalyzedQuery(
        query=query,
        tables=tables,
        resolutions=resolutions,
        output_names=[],
        output_exprs=[],
        output_schema=Schema([]),
        group_keys=[],
        aggregates=[],
        base_binding=query.tables[0].binding,
    )

    _expand_select(analyzed)
    _collect_grouping(analyzed)
    _check_aggregate_rules(analyzed)
    _check_where_having(analyzed)
    _check_join_conditions(analyzed)
    _check_order_by(analyzed)
    analyzed.output_schema = Schema(
        [
            Field(name, _infer_type(expr, analyzed))
            for name, expr in zip(analyzed.output_names, analyzed.output_exprs)
        ]
    )
    return analyzed


# -- binding ---------------------------------------------------------------


def _fold_dotted_columns(query: Query, tables: Dict[str, Table]) -> Query:
    """Fold ``a.b`` into a flat column name when ``a`` is no table binding
    but some bound table has a flattened-json column literally named
    ``a.b`` (nested data is flattened into dotted columns, §III-A)."""
    from repro.sql.ast import map_columns  # local import, tiny helper

    def fold(col: Column) -> Column:
        if col.table is None or col.table in tables:
            return col
        dotted = f"{col.table}.{col.name}"
        if any(dotted in t.schema for t in tables.values()):
            return Column(dotted)
        return col

    def fix(expr: Optional[Expr]) -> Optional[Expr]:
        return map_columns(expr, fold) if expr is not None else None

    return Query(
        select_items=tuple(
            SelectItem(fix(item.expr), item.alias) for item in query.select_items
        ),
        tables=query.tables,
        joins=tuple(
            JoinClause(j.kind, j.table, fix(j.condition)) for j in query.joins
        ),
        where=fix(query.where),
        group_by=tuple(fix(g) for g in query.group_by),
        having=fix(query.having),
        order_by=tuple(OrderItem(fix(o.expr), o.ascending) for o in query.order_by),
        limit=query.limit,
    )


def _bind_tables(query: Query, catalog: Catalog) -> Dict[str, Table]:
    tables: Dict[str, Table] = {}
    refs = list(query.tables) + [j.table for j in query.joins]
    for ref in refs:
        if ref.binding in tables:
            raise AnalysisError(f"duplicate table binding {ref.binding!r}")
        tables[ref.binding] = catalog.get(ref.name)
    return tables


def _resolve_columns(
    query: Query, tables: Dict[str, Table]
) -> Dict[Tuple[Optional[str], str], ResolvedColumn]:
    resolutions: Dict[Tuple[Optional[str], str], ResolvedColumn] = {}
    columns: List[Column] = []
    for expr in _all_expressions(query):
        columns.extend(n for n in walk(expr) if isinstance(n, Column))
    select_aliases = {item.alias for item in query.select_items if item.alias}
    for col in columns:
        key = (col.table, col.name)
        if key in resolutions:
            continue
        if col.table is not None:
            if col.table not in tables:
                raise AnalysisError(f"unknown table qualifier {col.table!r} in {col}")
            table = tables[col.table]
            if col.name not in table.schema:
                raise AnalysisError(f"table {col.table!r} has no column {col.name!r}")
            resolutions[key] = ResolvedColumn(col.table, table, table.schema.field(col.name))
            continue
        hits = [
            (binding, table)
            for binding, table in tables.items()
            if col.name in table.schema
        ]
        if len(hits) > 1:
            raise AnalysisError(
                f"ambiguous column {col.name!r}: present in "
                f"{sorted(b for b, _ in hits)}"
            )
        if not hits:
            if col.name in select_aliases:
                continue  # alias references validated in group/order handling
            raise AnalysisError(f"unknown column {col.name!r}")
        binding, table = hits[0]
        resolutions[key] = ResolvedColumn(binding, table, table.schema.field(col.name))
    return resolutions


def _all_expressions(query: Query) -> List[Expr]:
    exprs: List[Expr] = [item.expr for item in query.select_items]
    exprs.extend(query.group_by)
    if query.where is not None:
        exprs.append(query.where)
    if query.having is not None:
        exprs.append(query.having)
    exprs.extend(item.expr for item in query.order_by)
    for join in query.joins:
        if join.condition is not None:
            exprs.append(join.condition)
    return exprs


# -- select list -------------------------------------------------------------


def _expand_select(analyzed: AnalyzedQuery) -> None:
    query = analyzed.query
    names: List[str] = []
    exprs: List[Expr] = []
    for item in query.select_items:
        if isinstance(item.expr, Star):
            if len(query.select_items) != 1:
                raise AnalysisError("'*' must be the only select item")
            for binding, table in analyzed.tables.items():
                for f in table.schema:
                    names.append(f.name if len(analyzed.tables) == 1 else f"{binding}.{f.name}")
                    col = Column(f.name, table=binding)
                    analyzed.resolutions.setdefault(
                        (binding, f.name), ResolvedColumn(binding, table, f)
                    )
                    exprs.append(col)
            continue
        names.append(item.alias or str(item.expr))
        exprs.append(item.expr)
    if len(set(names)) != len(names):
        raise AnalysisError(f"duplicate output column names in {names}")
    analyzed.output_names = names
    analyzed.output_exprs = exprs


# -- grouping / aggregates ----------------------------------------------------


def _alias_target(analyzed: AnalyzedQuery, expr: Expr) -> Expr:
    """Map an alias reference (bare column matching a select alias) to the
    aliased select expression; otherwise return ``expr`` unchanged."""
    if isinstance(expr, Column) and expr.table is None:
        if (None, expr.name) not in analyzed.resolutions:
            for name, out in zip(analyzed.output_names, analyzed.output_exprs):
                if name == expr.name:
                    return out
    return expr


def _collect_grouping(analyzed: AnalyzedQuery) -> None:
    keys: List[Expr] = []
    for g in analyzed.query.group_by:
        target = _alias_target(analyzed, g)
        if contains_aggregate(target):
            raise AnalysisError(f"aggregate not allowed in GROUP BY: {target}")
        keys.append(target)
    # Fold WITHIN scopes (Dremel-style) into the grouping keys.  ORDER BY
    # may sort on aggregates that aren't selected; collect those too so
    # the executor materializes them.
    extra: List[Expr] = []
    if analyzed.query.having is not None:
        extra.append(analyzed.query.having)
    extra.extend(item.expr for item in analyzed.query.order_by)
    for expr in analyzed.output_exprs + extra:
        for node in walk(expr):
            if isinstance(node, AggregateCall):
                if node not in analyzed.aggregates:
                    analyzed.aggregates.append(node)
                if node.within is not None:
                    if contains_aggregate(node.within):
                        raise AnalysisError("aggregate not allowed inside WITHIN")
                    if node.within not in keys:
                        keys.append(node.within)
    analyzed.group_keys = keys


def _check_aggregate_rules(analyzed: AnalyzedQuery) -> None:
    for agg in analyzed.aggregates:
        for node in walk(agg.argument):
            if isinstance(node, AggregateCall):
                raise AnalysisError(f"nested aggregate in {agg}")
        if not isinstance(agg.argument, Star):
            _infer_type(agg.argument, analyzed)  # type check the argument
            if agg.func in ("SUM", "AVG"):
                arg_type = _infer_type(agg.argument, analyzed)
                if not arg_type.is_numeric:
                    raise AnalysisError(f"{agg.func} requires a numeric argument, got {arg_type.value}")
        elif agg.func != "COUNT":
            raise AnalysisError(f"'*' is only valid in COUNT(*), not {agg.func}(*)")
    if not analyzed.is_aggregate:
        return
    for name, expr in zip(analyzed.output_names, analyzed.output_exprs):
        if contains_aggregate(expr):
            continue
        if not _is_grouped(expr, analyzed):
            raise AnalysisError(
                f"output column {name!r} is neither aggregated nor a grouping key"
            )


def _is_grouped(expr: Expr, analyzed: AnalyzedQuery) -> bool:
    """True if ``expr`` only depends on grouping keys."""
    if expr in analyzed.group_keys:
        return True
    if isinstance(expr, Literal):
        return True
    if isinstance(expr, Column):
        return False
    kids = expr.children()
    return bool(kids) and all(_is_grouped(k, analyzed) for k in kids)


def _check_where_having(analyzed: AnalyzedQuery) -> None:
    where = analyzed.query.where
    if where is not None:
        if contains_aggregate(where):
            raise AnalysisError("aggregates are not allowed in WHERE; use HAVING")
        if _infer_type(where, analyzed) is not DataType.BOOL:
            raise AnalysisError("WHERE condition must be boolean")
    having = analyzed.query.having
    if having is not None:
        if not analyzed.is_aggregate:
            raise AnalysisError("HAVING requires aggregation or GROUP BY")
        if _infer_type(having, analyzed) is not DataType.BOOL:
            raise AnalysisError("HAVING condition must be boolean")
        for node in walk(having):
            if isinstance(node, AggregateCall) and node not in analyzed.aggregates:
                analyzed.aggregates.append(node)


def _check_join_conditions(analyzed: AnalyzedQuery) -> None:
    for join in analyzed.query.joins:
        if join.kind is JoinKind.CROSS:
            continue
        if join.condition is None:
            raise AnalysisError("non-CROSS join requires an ON condition")
        if contains_aggregate(join.condition):
            raise AnalysisError("aggregates are not allowed in join conditions")
        if _infer_type(join.condition, analyzed) is not DataType.BOOL:
            raise AnalysisError("join condition must be boolean")


def _check_order_by(analyzed: AnalyzedQuery) -> None:
    for item in analyzed.query.order_by:
        target = _alias_target(analyzed, item.expr)
        if isinstance(target, Column) and (target.table, target.name) not in analyzed.resolutions:
            if target.name not in analyzed.output_names:
                raise AnalysisError(f"ORDER BY references unknown column {target}")
            continue
        _infer_type(target, analyzed)


# -- type inference ----------------------------------------------------------


def _infer_type(expr: Expr, analyzed: AnalyzedQuery) -> DataType:
    if isinstance(expr, Literal):
        return DataType.from_value(expr.value)
    if isinstance(expr, Column):
        key = (expr.table, expr.name)
        if key in analyzed.resolutions:
            return analyzed.resolutions[key].field.dtype
        # alias reference (ORDER BY / GROUP BY position)
        for name, out in zip(analyzed.output_names, analyzed.output_exprs):
            if name == expr.name and out is not expr:
                return _infer_type(out, analyzed)
        raise AnalysisError(f"unresolved column {expr}")
    if isinstance(expr, Star):
        raise AnalysisError("'*' is not a scalar expression")
    if isinstance(expr, Negate):
        inner = _infer_type(expr.operand, analyzed)
        if not inner.is_numeric:
            raise AnalysisError(f"unary minus needs a numeric operand, got {inner.value}")
        return inner
    if isinstance(expr, NotOp):
        if _infer_type(expr.operand, analyzed) is not DataType.BOOL:
            raise AnalysisError("NOT needs a boolean operand")
        return DataType.BOOL
    if isinstance(expr, AggregateCall):
        if isinstance(expr.argument, Star):
            arg_type = DataType.INT64
        else:
            arg_type = _infer_type(expr.argument, analyzed)
        return _AGG_RESULT_TYPE[expr.func](arg_type)
    if isinstance(expr, FunctionCall):
        return _infer_function_type(expr, analyzed)
    if isinstance(expr, BinaryOp):
        return _infer_binary_type(expr, analyzed)
    raise AnalysisError(f"unsupported expression node {type(expr).__name__}")


def _infer_function_type(expr: FunctionCall, analyzed: AnalyzedQuery) -> DataType:
    if expr.name == "ABS":
        if len(expr.args) != 1:
            raise AnalysisError("ABS takes exactly one argument")
        inner = _infer_type(expr.args[0], analyzed)
        if not inner.is_numeric:
            raise AnalysisError("ABS needs a numeric argument")
        return inner
    signature = _SCALAR_SIGNATURES.get(expr.name)
    if signature is None:
        raise AnalysisError(f"unknown function {expr.name!r}")
    arg_types, result = signature
    if len(expr.args) != len(arg_types):
        raise AnalysisError(f"{expr.name} takes {len(arg_types)} argument(s)")
    for arg, expected in zip(expr.args, arg_types):
        actual = _infer_type(arg, analyzed)
        if actual is not expected:
            raise AnalysisError(
                f"{expr.name} expects {expected.value}, got {actual.value}"
            )
    return result


def _infer_binary_type(expr: BinaryOp, analyzed: AnalyzedQuery) -> DataType:
    left = _infer_type(expr.left, analyzed)
    right = _infer_type(expr.right, analyzed)
    op = expr.op
    if op is BinaryOperator.CONTAINS:
        if left is not DataType.STRING or right is not DataType.STRING:
            raise AnalysisError("CONTAINS requires string operands")
        return DataType.BOOL
    if op.is_comparison:
        common_type(left, right)  # raises on incomparable types
        return DataType.BOOL
    if op.is_boolean:
        if left is not DataType.BOOL or right is not DataType.BOOL:
            raise AnalysisError(f"{op.value} requires boolean operands")
        return DataType.BOOL
    # arithmetic
    if not left.is_numeric or not right.is_numeric:
        raise AnalysisError(f"{op.value} requires numeric operands")
    if op is BinaryOperator.DIV:
        return DataType.FLOAT64
    return common_type(left, right)
