"""Tokenizer for the Feisu SQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ParseError

KEYWORDS = frozenset(
    {
        "SELECT", "AS", "FROM", "WHERE", "AND", "OR", "NOT",
        "GROUP", "BY", "HAVING", "ORDER", "ASC", "DESC", "LIMIT",
        "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "CROSS", "ON",
        "CONTAINS", "WITHIN", "TRUE", "FALSE",
    }
)


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text == word

    def __str__(self) -> str:  # pragma: no cover - error messages
        return "end of input" if self.type is TokenType.EOF else repr(self.text)


_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = {",", "(", ")", ";", "."}


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text; raises :class:`ParseError` on bad input."""
    tokens: List[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":  # line comment
            nl = text.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if ch == "'":
            tok, i = _read_string(text, i)
            tokens.append(tok)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            tok, i = _read_number(text, i)
            tokens.append(tok)
            continue
        if ch.isalpha() or ch == "_":
            tok, i = _read_word(text, i)
            tokens.append(tok)
            continue
        matched = next((op for op in _OPERATORS if text.startswith(op, i)), None)
        if matched is not None:
            tokens.append(Token(TokenType.OPERATOR, "!=" if matched == "<>" else matched, i))
            i += len(matched)
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", position=i, text=text)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_string(text: str, start: int):
    """Read a single-quoted string with '' escaping; returns (token, end)."""
    i = start + 1
    parts: List[str] = []
    while i < len(text):
        ch = text[i]
        if ch == "'":
            if text[i : i + 2] == "''":  # escaped quote
                parts.append("'")
                i += 2
                continue
            return Token(TokenType.STRING, "".join(parts), start), i + 1
        parts.append(ch)
        i += 1
    raise ParseError("unterminated string literal", position=start, text=text)


def _read_number(text: str, start: int):
    i = start
    seen_dot = False
    seen_exp = False
    while i < len(text):
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < len(text) and text[i] in "+-":
                i += 1
        else:
            break
    return Token(TokenType.NUMBER, text[start:i], start), i


def _read_word(text: str, start: int):
    i = start
    while i < len(text) and (text[i].isalnum() or text[i] == "_"):
        i += 1
    word = text[start:i]
    upper = word.upper()
    if upper in KEYWORDS:
        return Token(TokenType.KEYWORD, upper, start), i
    return Token(TokenType.IDENTIFIER, word, start), i
