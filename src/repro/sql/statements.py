"""CLI statement classification: EXPLAIN / EXPLAIN ANALYZE prefixes.

The SQL grammar itself only knows queries; ``EXPLAIN`` and ``EXPLAIN
ANALYZE`` are front-end directives stripped before parsing, the same
split production Feisu's pluggable client tools made (§III-C).
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["classify_statement"]


def classify_statement(text: str) -> Tuple[str, str]:
    """Split a statement into ``(mode, body)``.

    ``mode`` is ``"explain_analyze"``, ``"explain"`` or ``"query"``;
    ``body`` is the SQL with any directive prefix removed.  Matching is
    case-insensitive and whitespace-tolerant.
    """
    stripped = text.strip()
    words = stripped.split(None, 2)
    if words and words[0].upper() == "EXPLAIN":
        if len(words) >= 2 and words[1].upper() == "ANALYZE":
            return "explain_analyze", words[2] if len(words) > 2 else ""
        rest = stripped[len(words[0]):].strip()
        return "explain", rest
    return "query", stripped
