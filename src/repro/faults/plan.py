"""Fault plans: composable, declarative failure schedules.

A :class:`FaultPlan` is the *description* of everything that will go
wrong in a run — nothing here touches the simulator.  It composes two
kinds of primitive:

* **scheduled entries** pinned to absolute simulated times (crash and
  restart a worker, suppress heartbeats, slow a node down, partition
  racks, stall a storage system's first byte);
* **message policies** consulted per message by the injector (drop,
  delay, duplicate), each with an optional traffic-class / endpoint
  filter and an active window, fired through the injector's seeded RNG.

Determinism contract: a plan plus a seed fully determines every injected
fault, because the simulation itself is deterministic and the injector
draws from one seeded generator in event order.  An **empty plan is
provably zero-overhead**: no interception point schedules an event,
consumes randomness, or changes a code path (enforced by the chaos
suite's zero-overhead gate, same standard as ``pytest -m obs``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.sim.netmodel import NodeAddress, TrafficClass

#: Rack coordinates: (datacenter, rack).
RackId = Tuple[int, int]


# -- scheduled entries -------------------------------------------------------


@dataclass(frozen=True)
class CrashWindow:
    """Kill one worker's process at ``at``; optionally restart it later.

    ``restart_after=None`` leaves it down for the rest of the run.
    """

    worker: str
    at: float
    restart_after: Optional[float] = None


@dataclass(frozen=True)
class ZombieWindow:
    """Heartbeat loss *without* process death (§III-C's failure sweep
    pathology): the worker keeps serving tasks but its heartbeats are
    swallowed for ``duration`` seconds, so the cluster manager declares
    it dead and must later re-admit it."""

    worker: str
    at: float
    duration: float


@dataclass(frozen=True)
class SlowNode:
    """Degrade one worker's devices by ``factor`` for a window — the
    consolidated-container interference straggler (§V-B), also used for
    clock-skewed stragglers (a skewed node *behaves* slow)."""

    worker: str
    at: float
    duration: float
    factor: float = 10.0


@dataclass(frozen=True)
class RackPartition:
    """Network partition: messages crossing between ``racks`` and the
    rest of the cluster are dropped while the window is active.  A
    single-rack tuple models a ToR/link failure; multiple racks model a
    datacenter-side split."""

    racks: Tuple[RackId, ...]
    at: float
    duration: float


@dataclass(frozen=True)
class StorageStall:
    """Cold-storage pathology: the named system's first-byte latency
    spikes by ``extra_first_byte_s`` during the window.  ``workers``
    restricts the stall to tasks *running on* those workers (a subset of
    cold replica holders), so speculative backups elsewhere can win."""

    system: str
    at: float
    duration: float
    extra_first_byte_s: float = 1.0
    workers: Optional[Tuple[str, ...]] = None


# -- message policies --------------------------------------------------------


@dataclass(frozen=True)
class MessageDrop:
    """Drop matching messages with ``probability``; the sender observes a
    :class:`~repro.errors.FaultInjectedError` after the plan's RPC
    timeout, exactly like a lost datagram behind a timed-out RPC."""

    probability: float
    cls: Optional[TrafficClass] = None
    src: Optional[NodeAddress] = None
    dst: Optional[NodeAddress] = None
    at: float = 0.0
    duration: float = math.inf


@dataclass(frozen=True)
class MessageDelay:
    """Hold matching messages for ``extra_s`` beyond their modeled
    transfer time (congested or misrouted path)."""

    extra_s: float
    probability: float = 1.0
    cls: Optional[TrafficClass] = None
    src: Optional[NodeAddress] = None
    dst: Optional[NodeAddress] = None
    at: float = 0.0
    duration: float = math.inf


@dataclass(frozen=True)
class MessageDuplicate:
    """Deliver matching messages twice: the duplicate copy pays the link
    model again (bandwidth/queueing pressure), exercising the cluster's
    at-most-once result accounting."""

    probability: float
    cls: Optional[TrafficClass] = None
    at: float = 0.0
    duration: float = math.inf


ScheduledEntry = Union[CrashWindow, ZombieWindow, SlowNode, RackPartition, StorageStall]
MessagePolicy = Union[MessageDrop, MessageDelay, MessageDuplicate]
FaultEntry = Union[ScheduledEntry, MessagePolicy]


@dataclass
class FaultPlan:
    """A composition of fault primitives plus fabric-wide knobs."""

    entries: List[FaultEntry] = field(default_factory=list)
    #: Sender-side timeout before a dropped message surfaces as a
    #: :class:`~repro.errors.FaultInjectedError`.
    rpc_timeout_s: float = 1.0

    def add(self, *entries: FaultEntry) -> "FaultPlan":
        """Append primitives; returns ``self`` for chaining."""
        self.entries.extend(entries)
        return self

    @property
    def is_empty(self) -> bool:
        return not self.entries

    def __len__(self) -> int:
        return len(self.entries)
