"""Always-on cluster invariant monitor for chaos runs.

While a fault plan is tearing the cluster apart, these properties must
still hold — each one is a paper-level guarantee the recovery machinery
(§III-C heartbeat sweeps, backup tasks, re-admission, failover) exists
to preserve:

1. **Bounded liveness** — every admitted job reaches a terminal state
   within a horizon; the event loop never deadlocks waiting on it.
2. **Safety** — a *successful, complete* answer is never wrong
   (differential check against a single-node reference oracle).
3. **Replication floor** — storage systems never silently drop below
   their replica target.
4. **At-most-once accounting** — backup/retry races never count one
   task's result twice.
5. **No corpse resurrection** — a worker whose process is dead is never
   re-admitted to the schedulable set by a stale heartbeat.
6. **No departed-node placement** (S55) — after a decommission completes,
   no block placement still references the departed node.

The monitor accumulates violations instead of raising immediately so a
scenario's report shows *everything* that went wrong; :meth:`assert_ok`
raises one :class:`~repro.errors.InvariantViolation` carrying the seed
and a replay command.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.jobs import Job, JobStatus
from repro.errors import InvariantViolation
from repro.sim.events import SimulationError

#: Job states the liveness invariant accepts as terminal.
TERMINAL_STATES = (JobStatus.SUCCEEDED, JobStatus.FAILED, JobStatus.TIMED_OUT)

#: ``oracle(sql, result)`` returns a violation message or None.
Oracle = Callable[[str, object], Optional[str]]


class InvariantMonitor:
    """Watches one cluster through a chaos scenario."""

    def __init__(self, cluster, horizon_s: float = 600.0, oracle: Optional[Oracle] = None):
        self.cluster = cluster
        self.horizon_s = horizon_s
        self.oracle = oracle
        self.violations: List[str] = []
        self.jobs_checked = 0
        self._floors: Dict[str, Tuple[object, int]] = {}
        self._departed: Dict[str, Tuple[object, Callable[[], List[object]]]] = {}
        cluster.cluster_manager.on_readmit(self._on_readmit)

    # -- invariant 5: corpse resurrection ---------------------------------

    def _on_readmit(self, worker_id: str) -> None:
        worker = next(
            (
                w
                for w in list(self.cluster.leaves) + list(self.cluster.stems)
                if w.worker_id == worker_id
            ),
            None,
        )
        if worker is not None and not worker.alive:
            self._violate(
                f"dead worker {worker_id} re-admitted by a stale heartbeat "
                "(corpse resurrection)"
            )

    # -- invariant 3: replication floor -----------------------------------

    def expect_replication(self, system, floor: Optional[int] = None) -> None:
        """Register a storage system whose live replica count per path
        must never fall below ``floor`` (default: its configured target)."""
        if floor is None:
            floor = getattr(system, "replication", 1)
        self._floors[system.name] = (system, floor)

    def expect_no_departed(self, system, departed: Callable[[], List[object]]) -> None:
        """Register a system whose placements must never reference a
        departed node (S55 decommission): ``departed`` is a live callable
        — e.g. ``lambda: elastic.departed`` — evaluated at check time, so
        nodes that leave *after* registration are still covered."""
        self._departed[system.name] = (system, departed)

    def check_replication(self) -> None:
        for name, (system, departed) in self._departed.items():
            gone = set(departed())
            if not gone:
                continue
            for path in system.list_paths():
                stranded = [n for n in system.locations(path) if n in gone]
                if stranded:
                    self._violate(
                        f"departed-node placement for {name}:{path}: replicas "
                        f"still listed on decommissioned node(s) {stranded}"
                    )
        for name, (system, floor) in self._floors.items():
            for path in system.list_paths():
                locs = system.locations(path)
                live = len(locs)
                if live < floor:
                    self._violate(
                        f"replication of {name}:{path} silently dropped to "
                        f"{live} < floor {floor}"
                    )
                if len(set(locs)) < live:
                    # A retried migration/repair that re-appends the same
                    # holder inflates the count without adding durability.
                    self._violate(
                        f"double-counted replica for {name}:{path}: "
                        f"placement {locs} lists a node twice"
                    )

    # -- invariants 1, 2, 4: per-job checks -------------------------------

    def run_job(self, sql: str, options=None, user: Optional[str] = None) -> Job:
        """Submit ``sql`` and drive the simulation to the job's terminal
        state, recording liveness/safety violations along the way."""
        sim = self.cluster.sim
        job, done = self.cluster.submit(sql, user=user, options=options)
        try:
            sim.run_until_complete(done, limit=sim.now + self.horizon_s)
        except SimulationError as exc:
            kind = "event-loop deadlock" if "deadlock" in str(exc) else "horizon exceeded"
            self._violate(
                f"liveness: job {job.job_id} not terminal within {self.horizon_s:g}s "
                f"({kind}: {exc})"
            )
            return job
        self.check_job(job, sql=sql)
        return job

    def check_job(self, job: Job, sql: Optional[str] = None) -> None:
        self.jobs_checked += 1
        if job.status not in TERMINAL_STATES:
            self._violate(
                f"liveness: job {job.job_id} resolved in non-terminal state "
                f"{job.status.value}"
            )
            return
        stats = job.stats
        if stats.tasks_completed > stats.tasks_total:
            self._violate(
                f"accounting: job {job.job_id} counted {stats.tasks_completed} "
                f"completed tasks out of {stats.tasks_total} planned "
                "(a backup/retry race was double-counted)"
            )
        if (
            job.status is JobStatus.SUCCEEDED
            and job.result is not None
            and job.result.processed_ratio >= 1.0
            and self.oracle is not None
        ):
            problem = self.oracle(sql if sql is not None else job.sql, job.result)
            if problem is not None:
                self._violate(f"safety: job {job.job_id} answered wrong — {problem}")

    # -- reporting --------------------------------------------------------

    def _violate(self, message: str) -> None:
        self.violations.append(f"t={self.cluster.sim.now:.4f}: {message}")

    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_ok(self, seed: Optional[int] = None, scenario: Optional[str] = None) -> None:
        """Run the end-of-scenario checks and raise on any violation.

        The raised report names the scenario, prints the seed, and gives
        the exact command that replays the identical event sequence.
        """
        self.check_replication()
        if not self.violations:
            return
        lines = [
            f"{len(self.violations)} invariant violation(s)"
            + (f" in scenario {scenario!r}" if scenario else "")
            + (f" [seed={seed}]" if seed is not None else "")
        ]
        lines.extend(f"  - {v}" for v in self.violations)
        injector = getattr(self.cluster, "fault_injector", None)
        if injector is not None:
            lines.append(injector.describe())
        if seed is not None:
            selector = f" -k {scenario}" if scenario else ""
            lines.append(
                f"replay: CHAOS_SEED={seed} PYTHONPATH=src "
                f"python -m pytest -m chaos tests/chaos{selector}"
            )
        raise InvariantViolation("\n".join(lines))
