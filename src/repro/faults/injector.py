"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`.

One injector instance owns one seeded RNG and one fault log.  The
fabric and storage layers consult it at exactly three interception
points, each guarded by ``if self.faults is not None`` on the hot path
so a cluster without an injector runs byte-identically to one that never
imported this module:

* :meth:`intercept_transfer` — every cluster message
  (:meth:`repro.sim.netmodel.NetworkTopology.transfer` delegates here);
* :meth:`heartbeat_suppressed` — worker heartbeat loops (zombies);
* :meth:`storage_first_byte_extra` — leaf IO charging (slow/cold disks).

Scheduled entries (crashes, restarts, slow-downs) become plain simulator
callbacks at :meth:`install` time.

Determinism: the RNG is consumed only inside simulator callbacks, whose
order is a pure function of the event queue; replaying the same plan and
seed therefore reproduces the identical :attr:`records` log — the chaos
suite's replay test asserts exactly that, and failure reports print the
seed so any scenario can be re-run bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ClusterStateError, FaultInjectedError
from repro.faults.plan import (
    CrashWindow,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    MessageDuplicate,
    RackPartition,
    SlowNode,
    StorageStall,
    ZombieWindow,
)
from repro.obs.trace import Tracer
from repro.sim.events import Event, Simulator
from repro.sim.netmodel import NodeAddress, TrafficClass


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, as it happened on the simulated clock."""

    t: float
    kind: str
    detail: str


class FaultInjector:
    """Runtime half of the fault layer: plan + seed → injected faults."""

    def __init__(self, sim: Simulator, plan: FaultPlan, seed: int = 0):
        self.sim = sim
        self.plan = plan
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.records: List[FaultRecord] = []
        #: Injected faults double as trace spans (zero-duration events
        #: under one root), so chaos runs can be inspected like queries.
        self.tracer = Tracer(f"faults-seed{seed}")
        self.tracer.begin("faults", 0.0, seed=seed, entries=len(plan))
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0
        self._workers: Dict[str, object] = {}
        self._partitions = [e for e in plan.entries if isinstance(e, RackPartition)]
        self._zombies = [e for e in plan.entries if isinstance(e, ZombieWindow)]
        self._stalls = [e for e in plan.entries if isinstance(e, StorageStall)]
        self._drops = [e for e in plan.entries if isinstance(e, MessageDrop)]
        self._delays = [e for e in plan.entries if isinstance(e, MessageDelay)]
        self._dups = [e for e in plan.entries if isinstance(e, MessageDuplicate)]

    # -- installation ----------------------------------------------------

    def install(self, cluster) -> "FaultInjector":
        """Hook into a :class:`~repro.core.feisu.FeisuCluster` and schedule
        every time-pinned entry.  Call before driving the simulation."""
        self.cluster = cluster
        cluster.net.faults = self
        for worker in list(cluster.leaves) + list(cluster.stems):
            worker.faults = self
            self._workers[worker.worker_id] = worker
        for entry in self.plan.entries:
            if isinstance(entry, CrashWindow):
                self.sim.schedule(self._delay_until(entry.at), self._crash, entry)
                if entry.restart_after is not None:
                    self.sim.schedule(
                        self._delay_until(entry.at + entry.restart_after),
                        self._restart,
                        entry,
                    )
            elif isinstance(entry, SlowNode):
                self.sim.schedule(self._delay_until(entry.at), self._slow, entry)
                self.sim.schedule(
                    self._delay_until(entry.at + entry.duration), self._unslow, entry
                )
        return self

    def _delay_until(self, at: float) -> float:
        return max(0.0, at - self.sim.now)

    def _worker(self, worker_id: str):
        try:
            return self._workers[worker_id]
        except KeyError:
            raise ClusterStateError(
                f"fault plan names unknown worker {worker_id!r}"
            ) from None

    # -- scheduled-entry callbacks ---------------------------------------

    def _crash(self, entry: CrashWindow) -> None:
        self._worker(entry.worker).crash()
        self._record("crash", entry.worker)

    def _restart(self, entry: CrashWindow) -> None:
        self._worker(entry.worker).recover()
        self._record("restart", entry.worker)

    def _slow(self, entry: SlowNode) -> None:
        self._worker(entry.worker).slow_down(entry.factor)
        self._record("slow_down", f"{entry.worker} x{entry.factor:g}")

    def _unslow(self, entry: SlowNode) -> None:
        self._worker(entry.worker).restore_speed(entry.factor)
        self._record("restore_speed", f"{entry.worker} x{entry.factor:g}")

    # -- interception: RPC fabric ----------------------------------------

    def intercept_transfer(
        self, net, src: NodeAddress, dst: NodeAddress, nbytes: int, cls: TrafficClass
    ) -> Event:
        """Apply message policies to one transfer; returns its event.

        Node-local transfers never touch the fabric and are exempt.
        Partitions drop deterministically; probabilistic policies draw
        from the seeded RNG in plan order (drop, then delay, then
        duplicate), so the draw sequence is replayable.
        """
        if src == dst:
            return net._transfer(src, dst, nbytes, cls)
        now = self.sim.now
        if self._partitioned(src, dst, now):
            return self._drop(src, dst, nbytes, cls, reason="partition")
        for pol in self._drops:
            if self._matches(pol, src, dst, cls, now) and self._fires(pol.probability):
                return self._drop(src, dst, nbytes, cls, reason="drop")
        extra = 0.0
        for pol in self._delays:
            if self._matches(pol, src, dst, cls, now) and self._fires(pol.probability):
                extra += pol.extra_s
        for pol in self._dups:
            in_window = pol.at <= now < pol.at + pol.duration
            if (
                in_window
                and (pol.cls is None or pol.cls == cls)
                and self._fires(pol.probability)
            ):
                self.duplicated += 1
                self._record("duplicate", self._msg(src, dst, nbytes, cls))
                net._transfer(src, dst, nbytes, cls)  # ghost copy loads the links
        inner = net._transfer(src, dst, nbytes, cls)
        if extra <= 0.0:
            return inner
        self.delayed += 1
        self._record("delay", f"{self._msg(src, dst, nbytes, cls)} +{extra:g}s")
        held = self.sim.event(name=f"delayed-{src}->{dst}")

        def relay(ev: Event) -> None:
            if ev.ok:
                self.sim.schedule(extra, held.succeed, ev._value)  # noqa: SLF001
            else:  # pragma: no cover - _transfer events always succeed
                self.sim.schedule(extra, held.fail, ev._exc)  # noqa: SLF001

        inner.add_callback(relay)
        return held

    def _drop(
        self, src: NodeAddress, dst: NodeAddress, nbytes: int, cls: TrafficClass, reason: str
    ) -> Event:
        """A dropped message: the sender sees an RPC timeout, not silence.

        The returned event fails with :class:`FaultInjectedError` after
        ``plan.rpc_timeout_s``, so waiting processes unblock through their
        normal error paths (task retry, backup, heartbeat skip) instead of
        stranding the event loop.
        """
        self.dropped += 1
        self._record(reason, self._msg(src, dst, nbytes, cls))
        ev = self.sim.event(name=f"dropped-{src}->{dst}")
        exc = FaultInjectedError(
            f"message {src}->{dst} ({cls.name}, {nbytes}B) {reason} by fault plan "
            f"(seed={self.seed})"
        )
        self.sim.schedule(self.plan.rpc_timeout_s, ev.fail, exc)
        return ev

    def _partitioned(self, src: NodeAddress, dst: NodeAddress, now: float) -> bool:
        for p in self._partitions:
            if not (p.at <= now < p.at + p.duration):
                continue
            inside_src = (src.datacenter, src.rack) in p.racks
            inside_dst = (dst.datacenter, dst.rack) in p.racks
            if inside_src != inside_dst:
                return True
        return False

    @staticmethod
    def _matches(pol, src: NodeAddress, dst: NodeAddress, cls: TrafficClass, now: float) -> bool:
        if not (pol.at <= now < pol.at + pol.duration):
            return False
        if pol.cls is not None and pol.cls != cls:
            return False
        if pol.src is not None and pol.src != src:
            return False
        if pol.dst is not None and pol.dst != dst:
            return False
        return True

    def _fires(self, probability: float) -> bool:
        if probability >= 1.0:
            return True
        if probability <= 0.0:
            return False
        return float(self.rng.random()) < probability

    # -- interception: membership ----------------------------------------

    def heartbeat_suppressed(self, worker_id: str) -> bool:
        """True while ``worker_id`` is inside a zombie window."""
        now = self.sim.now
        for z in self._zombies:
            if z.worker == worker_id and z.at <= now < z.at + z.duration:
                self._record("zombie", f"heartbeat from {worker_id} swallowed")
                return True
        return False

    # -- interception: storage -------------------------------------------

    def storage_first_byte_extra(self, system_name: str, worker_id: str) -> float:
        """Extra first-byte seconds for a task on ``worker_id`` reading
        from ``system_name`` right now (0.0 outside stall windows)."""
        now = self.sim.now
        extra = 0.0
        for s in self._stalls:
            if s.system != system_name or not (s.at <= now < s.at + s.duration):
                continue
            if s.workers is not None and worker_id not in s.workers:
                continue
            extra += s.extra_first_byte_s
        if extra > 0.0:
            self._record(
                "storage_stall", f"{system_name} first byte +{extra:g}s on {worker_id}"
            )
        return extra

    # -- the fault log ----------------------------------------------------

    @staticmethod
    def _msg(src: NodeAddress, dst: NodeAddress, nbytes: int, cls: TrafficClass) -> str:
        return f"{cls.name} {src}->{dst} ({nbytes}B)"

    def _record(self, kind: str, detail: str) -> None:
        self.records.append(FaultRecord(self.sim.now, kind, detail))
        if self.tracer.root is not None:
            self.tracer.root.event(kind, self.sim.now, detail=detail)

    def log_fingerprint(self) -> Tuple[Tuple[float, str, str], ...]:
        """Hashable view of the fault log for replay comparison."""
        return tuple((round(r.t, 9), r.kind, r.detail) for r in self.records)

    def describe(self, limit: Optional[int] = 20) -> str:
        """Human-readable tail of the fault log for failure reports."""
        rows = self.records if limit is None else self.records[-limit:]
        lines = [f"fault log (seed={self.seed}, {len(self.records)} records):"]
        if limit is not None and len(self.records) > limit:
            lines.append(f"  ... {len(self.records) - limit} earlier records elided")
        lines.extend(f"  t={r.t:10.4f}  {r.kind:<14} {r.detail}" for r in rows)
        return "\n".join(lines)
