"""Deterministic fault injection for the simulated cluster.

Compose a :class:`FaultPlan` from primitives, install it on a
:class:`~repro.core.feisu.FeisuCluster` with
:meth:`~repro.core.feisu.FeisuCluster.install_faults`, and watch the
recovery machinery earn its keep under an
:class:`~repro.faults.invariants.InvariantMonitor`:

    >>> plan = FaultPlan().add(
    ...     CrashWindow("leaf-dc0/rack1/node2", at=0.5, restart_after=30.0),
    ...     MessageDrop(0.05, cls=TrafficClass.CONTROL),
    ... )                                                   # doctest: +SKIP
    >>> injector = cluster.install_faults(plan, seed=7)     # doctest: +SKIP

Everything is deterministic: (plan, seed) → identical fault log,
identical event sequence, identical answers, every run.
"""

from repro.faults.injector import FaultInjector, FaultRecord
from repro.faults.invariants import InvariantMonitor
from repro.faults.plan import (
    CrashWindow,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    MessageDuplicate,
    RackPartition,
    SlowNode,
    StorageStall,
    ZombieWindow,
)

__all__ = [
    "CrashWindow",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "InvariantMonitor",
    "MessageDelay",
    "MessageDrop",
    "MessageDuplicate",
    "RackPartition",
    "SlowNode",
    "StorageStall",
    "ZombieWindow",
]
