"""SmartIndex entries and the per-leaf index cache manager (§IV-C).

An entry mirrors the Fig 6 record: block id; the canonical
``op/colname/colvalue`` predicate identity; the 0-1 result vector
(optionally RLE-compressed); and misc metadata (creation time, last use,
preference flag).

The :class:`SmartIndexManager` implements §IV-C-2's management policy:

* entries are created every time a predicate is evaluated on a leaf;
* deletion on (1) memory pressure — LRU — or (2) age beyond the TTL
  (72 h by default, "based on our experiences");
* user-set *preferences* keep entries alive past their TTL while memory
  lasts, and make them the last LRU victims.

Lookup implements the Fig 7 rewrite: a probe for predicate *p* first
tries *p*'s own vector, then the stored vector of *p*'s complement
negated on the fly (one in-memory bit-NOT).

With ``semantic=True`` (default off — the committed paper figures use
the exact/complement-only manager above) three further layers engage:

* **derived hits** — an :class:`~repro.index.intervals.IntervalRegistry`
  finds cached atoms at the probe's exact value and composes the answer
  by bitmap algebra (``EQ = LE & GE``, ``LE = LT | EQ``,
  ``LT = LE &~ EQ``, …).  Compositions use only positively stored
  vectors, so they are bit-identical to evaluation even on NaN rows.
* **residual candidates** — when a cached atom strictly subsumes the
  probe (``x < 10`` ⊆ cached ``x < 20``), the clause is answered with a
  *candidate mask*: the executor re-evaluates the clause on candidate
  rows only and the leaf charges I/O for only that fraction.
* **cost-aware caching** — LRU is replaced by benefit-per-byte scoring
  (``saved_s × observed reuse ÷ nbytes``) with a scan-resistant
  probation segment; a fresh insert that is itself the cheapest victim
  self-evicts, which doubles as admission control.
"""

from __future__ import annotations

import functools
import heapq
import threading
from collections import Counter, OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import IndexError_
from repro.index.bitmap import BitVector, rle_compress, rle_decompress
from repro.index.intervals import IntervalRegistry
from repro.planner.cnf import AtomicPredicate, Clause, ConjunctiveForm
from repro.sql.ast import BinaryOperator

#: Default index Time-To-Live: 72 hours (§IV-C-2).
DEFAULT_TTL_S = 72 * 3600.0
#: Default per-leaf index memory: 512 MB at production scale (§VI-A).
DEFAULT_MEMORY_BYTES = 512 * 1024 * 1024
#: Compress entries whose RLE payload is at most this fraction of raw.
COMPRESS_THRESHOLD = 0.75
#: Re-check preferred-but-expired entries at most this often (seconds).
DEFAULT_SWEEP_INTERVAL_S = 60.0
#: Residual candidate masks covering more than this row fraction are
#: treated as misses — re-scanning ~everything saves nothing.
DEFAULT_RESIDUAL_MAX_FRACTION = 0.95
#: Fallback saved-scan-seconds per row for cost-aware scoring when the
#: caller supplies none: one comparison op per row at a few Gops/s.
DEFAULT_SAVED_S_PER_ROW = 2.5e-10
#: Halve all frequency counters once their sum reaches this (aging).
_FREQ_AGING_LIMIT = 8192
#: Operators with a NaN-exact bitmap-algebra derivation (NE is excluded:
#: it is answered by the EQ complement, see ``_derive_atom``).
_DERIVABLE_OPS = frozenset(
    {
        BinaryOperator.EQ,
        BinaryOperator.LT,
        BinaryOperator.LE,
        BinaryOperator.GT,
        BinaryOperator.GE,
    }
)


@dataclass
class SmartIndexEntry:
    """One (block, predicate) result vector plus Fig 6 metadata."""

    block_id: str
    predicate_key: str
    length: int
    created_at: float
    last_used: float
    preferred: bool = False
    compressed: Optional[bytes] = None
    raw: Optional[BitVector] = None
    hit_count: int = 0
    #: Semantic-mode metadata (unused and default-valued otherwise):
    #: the atom this vector answers (needed to unregister from the
    #: interval registry), the estimated scan-seconds one hit saves,
    #: a sequence number invalidating stale lazy-heap records, and the
    #: probation/protected segment flag (protected = reused at least
    #: once since insertion).
    atom: Optional[AtomicPredicate] = None
    saved_s: float = 0.0
    seq: int = 0
    protected: bool = False

    @classmethod
    def build(
        cls,
        block_id: str,
        predicate_key: str,
        vector: BitVector,
        now: float,
        compress: bool = True,
        atom: Optional[AtomicPredicate] = None,
        saved_s: float = 0.0,
    ) -> "SmartIndexEntry":
        entry = cls(
            block_id=block_id,
            predicate_key=predicate_key,
            length=vector.length,
            created_at=now,
            last_used=now,
            atom=atom,
            saved_s=saved_s,
        )
        if compress:
            payload, _ = rle_compress(vector)
            if len(payload) <= vector.nbytes * COMPRESS_THRESHOLD:
                entry.compressed = payload
                return entry
        entry.raw = vector
        return entry

    def vector(self) -> BitVector:
        if self.raw is not None:
            return self.raw
        if self.compressed is None:
            raise IndexError_(f"entry {self.key} holds no payload")
        return rle_decompress(self.compressed, self.length)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.block_id, self.predicate_key)

    @property
    def nbytes(self) -> int:
        payload = len(self.compressed) if self.compressed is not None else (
            self.raw.nbytes if self.raw is not None else 0
        )
        return payload + 96  # struct overhead: ids, timestamps, misc


@dataclass
class IndexStats:
    """Counters for the Fig 9/10/11 measurements."""

    hits: int = 0
    complement_hits: int = 0
    misses: int = 0
    creations: int = 0
    evictions_lru: int = 0
    evictions_ttl: int = 0
    #: TTL sweep passes executed (at most one per lookup/cover call).
    ttl_sweeps: int = 0
    #: Semantic-mode counters (stay zero with ``semantic=False``).
    #: Atom answered exactly by bitmap algebra over cached neighbours.
    subsumption_hits: int = 0
    #: Clause answered with a candidate mask for a residual scan.
    residual_hits: int = 0
    #: Fresh insert that was itself the cheapest victim (admission).
    admission_rejects: int = 0
    #: Benefit-per-byte evictions (the semantic-mode LRU replacement).
    evictions_cost: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.complement_hits + self.subsumption_hits + self.misses

    def miss_ratio(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0


@dataclass
class ResidualClause:
    """A clause answered by a candidate superset instead of a full hit.

    ``mask`` over-approximates the clause's true-set (the NaN rows a
    complement vector admits only widen it); the executor evaluates the
    clause on candidate rows only and ANDs the result back in.
    ``fraction`` is the candidate row fraction — what the leaf charges
    I/O and decode CPU for.
    """

    clause: Clause
    mask: BitVector
    fraction: float


def _locked(method):
    """Serialize a public entry point on the instance's ``_lock``.

    The fused pipeline's morsel workers (engine.pipeline) share one
    manager per leaf and probe/insert from real OS threads; an RLock
    (public methods call other public methods) keeps the cache's books —
    ``_bytes``, the eviction heaps, the secondary indexes — consistent
    without per-structure locking.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


class SmartIndexManager:
    """Per-leaf in-memory cache of SmartIndex entries."""

    def __init__(
        self,
        memory_budget_bytes: int = DEFAULT_MEMORY_BYTES,
        ttl_s: float = DEFAULT_TTL_S,
        compress: bool = True,
        sweep_interval_s: float = DEFAULT_SWEEP_INTERVAL_S,
        semantic: bool = False,
        residual_max_fraction: float = DEFAULT_RESIDUAL_MAX_FRACTION,
    ):
        if memory_budget_bytes <= 0:
            raise IndexError_("index memory budget must be positive")
        self._lock = threading.RLock()
        self.memory_budget_bytes = memory_budget_bytes
        self.ttl_s = ttl_s
        self.compress = compress
        self.sweep_interval_s = sweep_interval_s
        self.semantic = semantic
        self.residual_max_fraction = residual_max_fraction
        self._entries: "OrderedDict[Tuple[str, str], SmartIndexEntry]" = OrderedDict()
        self._bytes = 0
        self._preferred_predicates: set = set()
        # TTL bookkeeping is O(1) amortized per lookup: entries join a
        # creation-time-ordered deque at insert (simulation time is
        # monotonic), and a sweep only pops the expired prefix.  Records
        # go stale when their entry is evicted or re-created; they are
        # skipped on pop.  Preferred entries that outlive their TTL move
        # to ``_pinned_expired`` and are re-checked at most once per
        # ``sweep_interval_s`` (they die at the first sweep after being
        # unpreferred).
        self._created: Deque[Tuple[float, Tuple[str, str]]] = deque()
        self._pinned_expired: Dict[Tuple[str, str], float] = {}
        self._last_pinned_sweep = float("-inf")
        # Secondary indexes: block id -> insertion-ordered set of entry
        # keys (invalidate_block/entries_for_block) and predicate key ->
        # set of entry keys (prefer/unprefer), so neither scans the
        # whole cache.
        self._by_block: Dict[str, Dict[Tuple[str, str], None]] = {}
        self._by_predicate: Dict[str, Dict[Tuple[str, str], None]] = {}
        # Semantic-mode state: the interval registry mirrors the cached
        # atoms; the frequency sketch tracks probe demand per predicate
        # key (aged by halving); the two lazy min-heaps hold
        # (score, seq, key) records for the probation and protected
        # segments — stale records (seq mismatch or promoted entry) are
        # dropped on pop, under-scored records are re-pushed.
        self._registry = IntervalRegistry()
        self._freq: Counter = Counter()
        self._freq_total = 0
        self._seq = 0
        self._heap_probation: List[Tuple[float, int, Tuple[str, str]]] = []
        self._heap_protected: List[Tuple[float, int, Tuple[str, str]]] = []
        self.stats = IndexStats()

    # -- preferences (§IV-C-2 user interfaces) ---------------------------

    @_locked
    def prefer_predicate(self, predicate_key: str) -> None:
        """Pin all (current and future) entries for this predicate."""
        self._preferred_predicates.add(predicate_key)
        for key in self._by_predicate.get(predicate_key, ()):
            self._entries[key].preferred = True

    @_locked
    def unprefer_predicate(self, predicate_key: str) -> None:
        self._preferred_predicates.discard(predicate_key)
        for key in self._by_predicate.get(predicate_key, ()):
            self._entries[key].preferred = False

    # -- core cache operations -------------------------------------------

    @_locked
    def lookup_atom(
        self, block_id: str, atom: AtomicPredicate, now: float, sweep: bool = True
    ) -> Optional[BitVector]:
        """Fetch the result vector for one atom, directly or via the
        complement's bit-NOT (Fig 7)."""
        if sweep:
            self._expire(now)
        entry = self._touch((block_id, atom.key), now)
        if entry is not None:
            self.stats.hits += 1
            return entry.vector()
        entry = self._touch((block_id, atom.complement().key), now)
        if entry is not None:
            self.stats.complement_hits += 1
            return ~entry.vector()
        self.stats.misses += 1
        return None

    @_locked
    def lookup_clause(
        self, block_id: str, clause: Clause, now: float, sweep: bool = True
    ) -> Optional[BitVector]:
        """OR of all atom vectors; None unless *every* atom is present.

        The TTL sweep runs once up front, not per atom.
        """
        if not clause.is_indexable:
            return None
        if sweep:
            self._expire(now)
        result: Optional[BitVector] = None
        for atom in clause.atoms:
            vec = self.lookup_atom(block_id, atom, now, sweep=False)
            if vec is None:
                return None
            result = vec if result is None else (result | vec)
        return result

    @_locked
    def cover(
        self, block_id: str, cnf: ConjunctiveForm, now: float, span=None
    ) -> Tuple[Optional[BitVector], List[Clause]]:
        """Try to answer a whole scan filter from the cache.

        Returns ``(mask, missing_clauses)``.  ``mask`` is the AND of the
        clause vectors found; ``missing_clauses`` are the ones that must
        be evaluated against data.  Full cover ⇔ ``missing_clauses == []``
        — then the block scan and predicate evaluation are both skipped.

        The TTL sweep runs exactly once per cover call (not once per
        atom), so a multi-clause CNF probe does not multiply sweep cost;
        see ``stats.ttl_sweeps``.

        ``span`` (a :class:`~repro.obs.trace.Span`, or None) is tagged
        with this probe's hit/miss deltas.
        """
        before = (
            (self.stats.hits, self.stats.complement_hits, self.stats.misses)
            if span is not None
            else None
        )
        self._expire(now)
        mask: Optional[BitVector] = None
        missing: List[Clause] = []
        for clause in cnf.clauses:
            vec = self.lookup_clause(block_id, clause, now, sweep=False)
            if vec is None:
                missing.append(clause)
            else:
                mask = vec if mask is None else (mask & vec)
        if before is not None:
            span.tag("atom_hits", self.stats.hits - before[0])
            span.tag("complement_hits", self.stats.complement_hits - before[1])
            span.tag("atom_misses", self.stats.misses - before[2])
        return mask, missing

    # -- semantic probe layer (flag-gated; see module docstring) -----------

    @_locked
    def cover_semantic(
        self, block_id: str, cnf: ConjunctiveForm, now: float, span=None
    ) -> Tuple[Optional[BitVector], List[Clause], List[ResidualClause]]:
        """Subsumption-aware :meth:`cover`.

        Returns ``(mask, missing, residuals)``: ``mask`` ANDs the
        exactly answered clauses (exact, complement, or derived hits);
        ``residuals`` are clauses answered with a candidate superset
        mask for a partial re-scan; ``missing`` must be evaluated in
        full.  Requires ``semantic=True``.
        """
        if not self.semantic:
            raise IndexError_("cover_semantic requires semantic=True")
        before = (
            (
                self.stats.hits,
                self.stats.complement_hits,
                self.stats.misses,
                self.stats.subsumption_hits,
                self.stats.residual_hits,
            )
            if span is not None
            else None
        )
        self._expire(now)
        mask: Optional[BitVector] = None
        missing: List[Clause] = []
        residuals: List[ResidualClause] = []
        for clause in cnf.clauses:
            if not clause.is_indexable:
                missing.append(clause)
                continue
            vecs: List[Optional[BitVector]] = []
            resolved = True
            for atom in clause.atoms:
                vec = self._probe_atom_semantic(block_id, atom, now)
                vecs.append(vec)
                if vec is None:
                    resolved = False
            if resolved:
                clause_vec = vecs[0]
                for vec in vecs[1:]:
                    clause_vec = clause_vec | vec
                mask = clause_vec if mask is None else (mask & clause_vec)
                continue
            residual = self._candidate_clause(block_id, clause, vecs, now)
            if residual is not None:
                residuals.append(residual)
                self.stats.residual_hits += 1
            else:
                missing.append(clause)
        if before is not None:
            span.tag("atom_hits", self.stats.hits - before[0])
            span.tag("complement_hits", self.stats.complement_hits - before[1])
            span.tag("atom_misses", self.stats.misses - before[2])
            span.tag("subsumption_hits", self.stats.subsumption_hits - before[3])
            span.tag("residual_clauses", self.stats.residual_hits - before[4])
            if residuals:
                span.tag(
                    "residual_fraction",
                    round(sum(r.fraction for r in residuals) / len(residuals), 4),
                )
        return mask, missing, residuals

    def _probe_atom_semantic(
        self, block_id: str, atom: AtomicPredicate, now: float
    ) -> Optional[BitVector]:
        """Exact → complement → derived-by-composition, with stats."""
        self._bump_freq(atom.key)
        entry = self._touch((block_id, atom.key), now)
        if entry is not None:
            self.stats.hits += 1
            return entry.vector()
        entry = self._touch((block_id, atom.complement().key), now)
        if entry is not None:
            self.stats.complement_hits += 1
            return ~entry.vector()
        vec = self._derive_atom(block_id, atom, now)
        if vec is not None:
            self.stats.subsumption_hits += 1
            # Materialize: the composition is exact, so future probes of
            # this atom (and its complement) become plain hits.
            self._insert_vector(block_id, atom, vec, now)
            return vec
        self.stats.misses += 1
        return None

    def _derive_atom(
        self, block_id: str, atom: AtomicPredicate, now: float
    ) -> Optional[BitVector]:
        """Exact bitmap-algebra composition from same-value cached atoms.

        Every identity below uses only positively stored vectors, which
        makes the result bit-identical to evaluating the atom — NaN rows
        included (NaN fails EQ/LT/LE/GT/GE, and set algebra over sets
        that all exclude NaN cannot re-admit it).  NE is never derived
        here: its answer is the EQ complement, which the complement
        probe above already finds.
        """
        op = atom.op
        if op not in _DERIVABLE_OPS:
            return None
        found = self._registry.same_value(block_id, atom.column, atom.value)
        if not found:
            return None

        def vec(want: BinaryOperator) -> Optional[BitVector]:
            key = found.get(want)
            if key is None:
                return None
            entry = self._touch((block_id, key), now)
            return entry.vector() if entry is not None else None

        if op is BinaryOperator.EQ:
            le = vec(BinaryOperator.LE)
            ge = vec(BinaryOperator.GE)
            if le is not None and ge is not None:
                return le & ge  # {x<=v} ∩ {x>=v} = {x=v}
            lt = vec(BinaryOperator.LT)
            if le is not None and lt is not None:
                return le.andnot(lt)  # {x<=v} \ {x<v} = {x=v}
            gt = vec(BinaryOperator.GT)
            if ge is not None and gt is not None:
                return ge.andnot(gt)
            return None
        if op is BinaryOperator.LE:
            lt = vec(BinaryOperator.LT)
            eq = vec(BinaryOperator.EQ)
            if lt is not None and eq is not None:
                return lt | eq
            return None
        if op is BinaryOperator.GE:
            gt = vec(BinaryOperator.GT)
            eq = vec(BinaryOperator.EQ)
            if gt is not None and eq is not None:
                return gt | eq
            return None
        if op is BinaryOperator.LT:
            le = vec(BinaryOperator.LE)
            eq = vec(BinaryOperator.EQ)
            if le is not None and eq is not None:
                return le.andnot(eq)
            return None
        # GT
        ge = vec(BinaryOperator.GE)
        eq = vec(BinaryOperator.EQ)
        if ge is not None and eq is not None:
            return ge.andnot(eq)
        return None

    def _candidate_clause(
        self,
        block_id: str,
        clause: Clause,
        vecs: List[Optional[BitVector]],
        now: float,
    ) -> Optional[ResidualClause]:
        """Build a candidate superset mask for a partially missed clause.

        Per atom: its exact vector if the probe resolved, else the AND
        of the registry's tightest cached supersets.  The clause mask is
        the OR across atoms (clause ⊆ OR of per-atom supersets).  None
        when some atom has no cached superset or the candidate fraction
        is too high to be worth a partial scan.
        """
        candidate: Optional[BitVector] = None
        for atom, vec in zip(clause.atoms, vecs):
            atom_vec = vec
            if atom_vec is None:
                atom_vec = self._candidate_atom(block_id, atom, now)
            if atom_vec is None:
                return None
            candidate = atom_vec if candidate is None else (candidate | atom_vec)
        if candidate is None:
            return None
        fraction = candidate.count() / candidate.length if candidate.length else 0.0
        if fraction > self.residual_max_fraction:
            return None
        return ResidualClause(clause, candidate, fraction)

    def _candidate_atom(
        self, block_id: str, atom: AtomicPredicate, now: float
    ) -> Optional[BitVector]:
        """AND of every tightest cached superset of this atom."""
        result: Optional[BitVector] = None
        for cand in self._registry.superset_candidates(block_id, atom):
            entry = self._touch((block_id, cand.predicate_key), now)
            if entry is None:
                continue  # registry momentarily ahead of an eviction
            vec = ~entry.vector() if cand.invert else entry.vector()
            result = vec if result is None else (result & vec)
        return result

    @_locked
    def benefit_snapshot(self) -> Dict[str, float]:
        """Observed benefit per predicate key for :class:`IndexAdvisor`.

        Sums ``saved_s × realized-plus-demanded reuse`` over the live
        entries of each key — the same quantity the eviction score
        maximizes per byte, aggregated for advisory ranking.
        """
        out: Dict[str, float] = {}
        for entry in self._entries.values():
            reuse = entry.hit_count + self._freq.get(entry.predicate_key, 0)
            out[entry.predicate_key] = out.get(entry.predicate_key, 0.0) + (
                entry.saved_s * reuse
            )
        return out

    @_locked
    def insert(
        self,
        block_id: str,
        atom: AtomicPredicate,
        mask: np.ndarray,
        now: float,
        saved_s: Optional[float] = None,
    ) -> None:
        """Record a freshly evaluated predicate result (§IV-C-2:
        "Feisu creates a SmartIndex each time a query predicate is
        evaluated in a leaf server").

        ``saved_s`` is the estimated scan-seconds one future hit saves —
        the numerator of the semantic-mode benefit-per-byte score.
        Ignored (and optional) with ``semantic=False``.
        """
        self._insert_vector(block_id, atom, BitVector.from_bool_array(mask), now, saved_s)

    def _insert_vector(
        self,
        block_id: str,
        atom: AtomicPredicate,
        vector: BitVector,
        now: float,
        saved_s: Optional[float] = None,
    ) -> None:
        if saved_s is None:
            saved_s = vector.length * DEFAULT_SAVED_S_PER_ROW
        entry = SmartIndexEntry.build(
            block_id,
            atom.key,
            vector,
            now,
            compress=self.compress,
            atom=atom,
            saved_s=saved_s,
        )
        entry.preferred = atom.key in self._preferred_predicates
        old = self._entries.pop(entry.key, None)
        if old is not None:
            self._bytes -= old.nbytes
        self._entries[entry.key] = entry
        self._bytes += entry.nbytes
        self._created.append((now, entry.key))
        self._pinned_expired.pop(entry.key, None)  # re-created: TTL restarts
        self._by_block.setdefault(block_id, {})[entry.key] = None
        self._by_predicate.setdefault(atom.key, {})[entry.key] = None
        self.stats.creations += 1
        if self.semantic:
            self._seq += 1
            entry.seq = self._seq
            self._registry.add(block_id, atom)
            heapq.heappush(self._heap_probation, (self._score(entry), entry.seq, entry.key))
            self._enforce_budget(inserted=entry.key)
        else:
            self._enforce_budget()

    # -- policy ------------------------------------------------------------

    def _touch(self, key: Tuple[str, str], now: float) -> Optional[SmartIndexEntry]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        entry.last_used = now
        entry.hit_count += 1
        self._entries.move_to_end(key)
        if self.semantic and not entry.protected:
            # First reuse promotes out of the probation segment; one-shot
            # entries never promote and are the preferred victims.
            entry.protected = True
            heapq.heappush(self._heap_protected, (self._score(entry), entry.seq, key))
        return entry

    def _expire(self, now: float) -> None:
        """TTL sweep; preferred entries outlive their TTL while memory
        is not scarce (§IV-C-2).

        Pops only the expired prefix of the creation-ordered deque —
        O(1) amortized per lookup instead of a full cache scan.
        """
        self.stats.ttl_sweeps += 1
        horizon = now - self.ttl_s
        created = self._created
        while created and created[0][0] < horizon:
            created_at, key = created.popleft()
            entry = self._entries.get(key)
            if entry is None or entry.created_at != created_at:
                continue  # stale record: entry was evicted or re-created
            if entry.preferred:
                self._pinned_expired[key] = created_at
                continue
            self._remove(key)
            self.stats.evictions_ttl += 1
        if self._pinned_expired and now - self._last_pinned_sweep >= self.sweep_interval_s:
            self._last_pinned_sweep = now
            for key, created_at in list(self._pinned_expired.items()):
                entry = self._entries.get(key)
                if entry is None or entry.created_at != created_at:
                    del self._pinned_expired[key]
                elif not entry.preferred:
                    self._remove(key)
                    self.stats.evictions_ttl += 1

    def _enforce_budget(self, inserted: Optional[Tuple[str, str]] = None) -> None:
        if self.semantic:
            while self._bytes > self.memory_budget_bytes and self._entries:
                victim = self._pop_victim()
                if victim is None:
                    break
                self._remove(victim)
                if victim == inserted:
                    # The fresh entry was itself the cheapest victim:
                    # the cache declined admission.
                    self.stats.admission_rejects += 1
                else:
                    self.stats.evictions_cost += 1
            return
        while self._bytes > self.memory_budget_bytes and self._entries:
            victim = None
            for key, e in self._entries.items():  # LRU -> MRU
                if not e.preferred:
                    victim = key
                    break
            if victim is None:
                victim = next(iter(self._entries))  # all preferred: evict LRU
            self._remove(victim)
            self.stats.evictions_lru += 1

    def _score(self, entry: SmartIndexEntry) -> float:
        """Benefit per byte: saved-scan-seconds × observed reuse ÷ size.

        Reuse counts both realized hits and the probe *demand* for the
        predicate key (the frequency sketch), so an entry whose key is
        hot keeps a high score even right after (re-)insertion.
        """
        reuse = 1.0 + entry.hit_count + self._freq.get(entry.predicate_key, 0)
        return entry.saved_s * reuse / max(entry.nbytes, 1)

    def _bump_freq(self, predicate_key: str) -> None:
        self._freq[predicate_key] += 1
        self._freq_total += 1
        if self._freq_total >= _FREQ_AGING_LIMIT:
            # Periodic halving keeps the sketch scan-resistant: stale
            # hot keys decay instead of pinning their entries forever.
            for k in list(self._freq):
                nv = self._freq[k] // 2
                if nv:
                    self._freq[k] = nv
                else:
                    del self._freq[k]
            self._freq_total = sum(self._freq.values())

    def _pop_victim(self) -> Optional[Tuple[str, str]]:
        """Lowest benefit-per-byte entry, probation segment first.

        Lazy-heap discipline: records whose seq no longer matches their
        entry (evicted/re-created) or that belong to a promoted entry
        are dropped; records whose entry now scores higher than when
        pushed are re-pushed at the current score (scores only grow
        between aging passes, so this terminates).  Preferred entries
        are set aside and only evicted when nothing else is left.
        """
        deferred: List[Tuple[float, SmartIndexEntry]] = []
        victim: Optional[Tuple[str, str]] = None
        for heap in (self._heap_probation, self._heap_protected):
            is_probation = heap is self._heap_probation
            while heap:
                score, seq, key = heapq.heappop(heap)
                entry = self._entries.get(key)
                if entry is None or entry.seq != seq:
                    continue
                if is_probation and entry.protected:
                    continue  # promoted: its live record is in the other heap
                current = self._score(entry)
                if current > score * (1.0 + 1e-9):
                    heapq.heappush(heap, (current, seq, key))
                    continue
                if entry.preferred:
                    deferred.append((current, entry))
                    continue
                victim = key
                break
            if victim is not None:
                break
        # Re-seat the preferred entries we skipped over.
        for score, entry in deferred:
            target = self._heap_protected if entry.protected else self._heap_probation
            heapq.heappush(target, (score, entry.seq, entry.key))
        if victim is None and deferred:
            victim = min(deferred, key=lambda pair: pair[0])[1].key
        return victim

    def _remove(self, key: Tuple[str, str]) -> None:
        entry = self._entries.pop(key)
        self._bytes -= entry.nbytes
        self._pinned_expired.pop(key, None)
        block_keys = self._by_block.get(key[0])
        if block_keys is not None:
            block_keys.pop(key, None)
            if not block_keys:
                del self._by_block[key[0]]
        pred_keys = self._by_predicate.get(entry.predicate_key)
        if pred_keys is not None:
            pred_keys.pop(key, None)
            if not pred_keys:
                del self._by_predicate[entry.predicate_key]
        if self.semantic and entry.atom is not None:
            self._registry.discard(key[0], entry.atom)

    @_locked
    def invalidate_block(self, block_id: str) -> None:
        """Drop every entry of a block (data rewrite)."""
        for key in list(self._by_block.get(block_id, ())):
            self._remove(key)

    # -- introspection -----------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._bytes

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    @_locked
    def entries_for_block(self, block_id: str) -> List[SmartIndexEntry]:
        return [self._entries[k] for k in self._by_block.get(block_id, ())]
