"""SmartIndex entries and the per-leaf index cache manager (§IV-C).

An entry mirrors the Fig 6 record: block id; the canonical
``op/colname/colvalue`` predicate identity; the 0-1 result vector
(optionally RLE-compressed); and misc metadata (creation time, last use,
preference flag).

The :class:`SmartIndexManager` implements §IV-C-2's management policy:

* entries are created every time a predicate is evaluated on a leaf;
* deletion on (1) memory pressure — LRU — or (2) age beyond the TTL
  (72 h by default, "based on our experiences");
* user-set *preferences* keep entries alive past their TTL while memory
  lasts, and make them the last LRU victims.

Lookup implements the Fig 7 rewrite: a probe for predicate *p* first
tries *p*'s own vector, then the stored vector of *p*'s complement
negated on the fly (one in-memory bit-NOT).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import IndexError_
from repro.index.bitmap import BitVector, rle_compress, rle_decompress
from repro.planner.cnf import AtomicPredicate, Clause, ConjunctiveForm

#: Default index Time-To-Live: 72 hours (§IV-C-2).
DEFAULT_TTL_S = 72 * 3600.0
#: Default per-leaf index memory: 512 MB at production scale (§VI-A).
DEFAULT_MEMORY_BYTES = 512 * 1024 * 1024
#: Compress entries whose RLE payload is at most this fraction of raw.
COMPRESS_THRESHOLD = 0.75
#: Re-check preferred-but-expired entries at most this often (seconds).
DEFAULT_SWEEP_INTERVAL_S = 60.0


@dataclass
class SmartIndexEntry:
    """One (block, predicate) result vector plus Fig 6 metadata."""

    block_id: str
    predicate_key: str
    length: int
    created_at: float
    last_used: float
    preferred: bool = False
    compressed: Optional[bytes] = None
    raw: Optional[BitVector] = None
    hit_count: int = 0

    @classmethod
    def build(
        cls,
        block_id: str,
        predicate_key: str,
        vector: BitVector,
        now: float,
        compress: bool = True,
    ) -> "SmartIndexEntry":
        entry = cls(
            block_id=block_id,
            predicate_key=predicate_key,
            length=vector.length,
            created_at=now,
            last_used=now,
        )
        if compress:
            payload, _ = rle_compress(vector)
            if len(payload) <= vector.nbytes * COMPRESS_THRESHOLD:
                entry.compressed = payload
                return entry
        entry.raw = vector
        return entry

    def vector(self) -> BitVector:
        if self.raw is not None:
            return self.raw
        if self.compressed is None:
            raise IndexError_(f"entry {self.key} holds no payload")
        return rle_decompress(self.compressed, self.length)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.block_id, self.predicate_key)

    @property
    def nbytes(self) -> int:
        payload = len(self.compressed) if self.compressed is not None else (
            self.raw.nbytes if self.raw is not None else 0
        )
        return payload + 96  # struct overhead: ids, timestamps, misc


@dataclass
class IndexStats:
    """Counters for the Fig 9/10/11 measurements."""

    hits: int = 0
    complement_hits: int = 0
    misses: int = 0
    creations: int = 0
    evictions_lru: int = 0
    evictions_ttl: int = 0
    #: TTL sweep passes executed (at most one per lookup/cover call).
    ttl_sweeps: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.complement_hits + self.misses

    def miss_ratio(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0


class SmartIndexManager:
    """Per-leaf in-memory cache of SmartIndex entries."""

    def __init__(
        self,
        memory_budget_bytes: int = DEFAULT_MEMORY_BYTES,
        ttl_s: float = DEFAULT_TTL_S,
        compress: bool = True,
        sweep_interval_s: float = DEFAULT_SWEEP_INTERVAL_S,
    ):
        if memory_budget_bytes <= 0:
            raise IndexError_("index memory budget must be positive")
        self.memory_budget_bytes = memory_budget_bytes
        self.ttl_s = ttl_s
        self.compress = compress
        self.sweep_interval_s = sweep_interval_s
        self._entries: "OrderedDict[Tuple[str, str], SmartIndexEntry]" = OrderedDict()
        self._bytes = 0
        self._preferred_predicates: set = set()
        # TTL bookkeeping is O(1) amortized per lookup: entries join a
        # creation-time-ordered deque at insert (simulation time is
        # monotonic), and a sweep only pops the expired prefix.  Records
        # go stale when their entry is evicted or re-created; they are
        # skipped on pop.  Preferred entries that outlive their TTL move
        # to ``_pinned_expired`` and are re-checked at most once per
        # ``sweep_interval_s`` (they die at the first sweep after being
        # unpreferred).
        self._created: Deque[Tuple[float, Tuple[str, str]]] = deque()
        self._pinned_expired: Dict[Tuple[str, str], float] = {}
        self._last_pinned_sweep = float("-inf")
        # Secondary index: block id -> insertion-ordered set of entry
        # keys, so invalidate_block/entries_for_block do not scan the
        # whole cache.
        self._by_block: Dict[str, Dict[Tuple[str, str], None]] = {}
        self.stats = IndexStats()

    # -- preferences (§IV-C-2 user interfaces) ---------------------------

    def prefer_predicate(self, predicate_key: str) -> None:
        """Pin all (current and future) entries for this predicate."""
        self._preferred_predicates.add(predicate_key)
        for entry in self._entries.values():
            if entry.predicate_key == predicate_key:
                entry.preferred = True

    def unprefer_predicate(self, predicate_key: str) -> None:
        self._preferred_predicates.discard(predicate_key)
        for entry in self._entries.values():
            if entry.predicate_key == predicate_key:
                entry.preferred = False

    # -- core cache operations -------------------------------------------

    def lookup_atom(
        self, block_id: str, atom: AtomicPredicate, now: float, sweep: bool = True
    ) -> Optional[BitVector]:
        """Fetch the result vector for one atom, directly or via the
        complement's bit-NOT (Fig 7)."""
        if sweep:
            self._expire(now)
        entry = self._touch((block_id, atom.key), now)
        if entry is not None:
            self.stats.hits += 1
            return entry.vector()
        entry = self._touch((block_id, atom.complement().key), now)
        if entry is not None:
            self.stats.complement_hits += 1
            return ~entry.vector()
        self.stats.misses += 1
        return None

    def lookup_clause(
        self, block_id: str, clause: Clause, now: float, sweep: bool = True
    ) -> Optional[BitVector]:
        """OR of all atom vectors; None unless *every* atom is present.

        The TTL sweep runs once up front, not per atom.
        """
        if not clause.is_indexable:
            return None
        if sweep:
            self._expire(now)
        result: Optional[BitVector] = None
        for atom in clause.atoms:
            vec = self.lookup_atom(block_id, atom, now, sweep=False)
            if vec is None:
                return None
            result = vec if result is None else (result | vec)
        return result

    def cover(
        self, block_id: str, cnf: ConjunctiveForm, now: float, span=None
    ) -> Tuple[Optional[BitVector], List[Clause]]:
        """Try to answer a whole scan filter from the cache.

        Returns ``(mask, missing_clauses)``.  ``mask`` is the AND of the
        clause vectors found; ``missing_clauses`` are the ones that must
        be evaluated against data.  Full cover ⇔ ``missing_clauses == []``
        — then the block scan and predicate evaluation are both skipped.

        The TTL sweep runs exactly once per cover call (not once per
        atom), so a multi-clause CNF probe does not multiply sweep cost;
        see ``stats.ttl_sweeps``.

        ``span`` (a :class:`~repro.obs.trace.Span`, or None) is tagged
        with this probe's hit/miss deltas.
        """
        before = (
            (self.stats.hits, self.stats.complement_hits, self.stats.misses)
            if span is not None
            else None
        )
        self._expire(now)
        mask: Optional[BitVector] = None
        missing: List[Clause] = []
        for clause in cnf.clauses:
            vec = self.lookup_clause(block_id, clause, now, sweep=False)
            if vec is None:
                missing.append(clause)
            else:
                mask = vec if mask is None else (mask & vec)
        if before is not None:
            span.tag("atom_hits", self.stats.hits - before[0])
            span.tag("complement_hits", self.stats.complement_hits - before[1])
            span.tag("atom_misses", self.stats.misses - before[2])
        return mask, missing

    def insert(self, block_id: str, atom: AtomicPredicate, mask: np.ndarray, now: float) -> None:
        """Record a freshly evaluated predicate result (§IV-C-2:
        "Feisu creates a SmartIndex each time a query predicate is
        evaluated in a leaf server")."""
        vector = BitVector.from_bool_array(mask)
        entry = SmartIndexEntry.build(
            block_id, atom.key, vector, now, compress=self.compress
        )
        entry.preferred = atom.key in self._preferred_predicates
        old = self._entries.pop(entry.key, None)
        if old is not None:
            self._bytes -= old.nbytes
        self._entries[entry.key] = entry
        self._bytes += entry.nbytes
        self._created.append((now, entry.key))
        self._pinned_expired.pop(entry.key, None)  # re-created: TTL restarts
        self._by_block.setdefault(block_id, {})[entry.key] = None
        self.stats.creations += 1
        self._enforce_budget()

    # -- policy ------------------------------------------------------------

    def _touch(self, key: Tuple[str, str], now: float) -> Optional[SmartIndexEntry]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        entry.last_used = now
        entry.hit_count += 1
        self._entries.move_to_end(key)
        return entry

    def _expire(self, now: float) -> None:
        """TTL sweep; preferred entries outlive their TTL while memory
        is not scarce (§IV-C-2).

        Pops only the expired prefix of the creation-ordered deque —
        O(1) amortized per lookup instead of a full cache scan.
        """
        self.stats.ttl_sweeps += 1
        horizon = now - self.ttl_s
        created = self._created
        while created and created[0][0] < horizon:
            created_at, key = created.popleft()
            entry = self._entries.get(key)
            if entry is None or entry.created_at != created_at:
                continue  # stale record: entry was evicted or re-created
            if entry.preferred:
                self._pinned_expired[key] = created_at
                continue
            self._remove(key)
            self.stats.evictions_ttl += 1
        if self._pinned_expired and now - self._last_pinned_sweep >= self.sweep_interval_s:
            self._last_pinned_sweep = now
            for key, created_at in list(self._pinned_expired.items()):
                entry = self._entries.get(key)
                if entry is None or entry.created_at != created_at:
                    del self._pinned_expired[key]
                elif not entry.preferred:
                    self._remove(key)
                    self.stats.evictions_ttl += 1

    def _enforce_budget(self) -> None:
        while self._bytes > self.memory_budget_bytes and self._entries:
            victim = None
            for key, e in self._entries.items():  # LRU -> MRU
                if not e.preferred:
                    victim = key
                    break
            if victim is None:
                victim = next(iter(self._entries))  # all preferred: evict LRU
            self._remove(victim)
            self.stats.evictions_lru += 1

    def _remove(self, key: Tuple[str, str]) -> None:
        entry = self._entries.pop(key)
        self._bytes -= entry.nbytes
        self._pinned_expired.pop(key, None)
        block_keys = self._by_block.get(key[0])
        if block_keys is not None:
            block_keys.pop(key, None)
            if not block_keys:
                del self._by_block[key[0]]

    def invalidate_block(self, block_id: str) -> None:
        """Drop every entry of a block (data rewrite)."""
        for key in list(self._by_block.get(block_id, ())):
            self._remove(key)

    # -- introspection -----------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._bytes

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def entries_for_block(self, block_id: str) -> List[SmartIndexEntry]:
        return [self._entries[k] for k in self._by_block.get(block_id, ())]
