"""SmartIndex (adaptive predicate-result cache) and the B+ tree baseline."""

from repro.index.bitmap import BitVector, rle_compress, rle_decompress
from repro.index.advisor import IndexAdvisor, Recommendation, apply_recommendations
from repro.index.btree import BPlusTree
from repro.index.smartindex import (
    DEFAULT_MEMORY_BYTES,
    DEFAULT_TTL_S,
    IndexStats,
    SmartIndexEntry,
    SmartIndexManager,
)

__all__ = [
    "BPlusTree",
    "IndexAdvisor",
    "Recommendation",
    "apply_recommendations",
    "BitVector",
    "DEFAULT_MEMORY_BYTES",
    "DEFAULT_TTL_S",
    "IndexStats",
    "SmartIndexEntry",
    "SmartIndexManager",
    "rle_compress",
    "rle_decompress",
]
