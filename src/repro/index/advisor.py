"""Index advisor: turn query history into SmartIndex preferences.

§IV-C-2 gives users "interfaces ... to set preferences and retire
strategies on indices to increase the possibility that they are cached";
the client collects per-user history "to build private index for
specific users or user groups" (§III-C).  The advisor closes that loop:
it scores each historical predicate by *expected benefit* — how much
scan work a pinned index would save, given the predicate's repetition
rate and the table's size — and recommends the top ones.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.columnar.table import Catalog
from repro.planner.cost import OPS_PER_COMPARISON, OPS_PER_CONTAINS, CostModel


@dataclass(frozen=True)
class Recommendation:
    """One suggested preference, ranked by expected benefit."""

    predicate_key: str
    table: str
    repetitions: int
    #: Estimated seconds of scan+evaluation work one repetition saves.
    saved_seconds_per_use: float
    #: Benefit the semantic cache has *measured* for this key (from
    #: :meth:`SmartIndexManager.benefit_snapshot`); 0 when unavailable.
    observed_benefit_s: float = 0.0

    @property
    def score(self) -> float:
        # First use builds the index; every later one collects the win.
        # Observed benefit (realized saved-seconds, when the semantic
        # cache reports it) is evidence on top of the estimate.
        return max(self.repetitions - 1, 0) * self.saved_seconds_per_use + self.observed_benefit_s


class IndexAdvisor:
    """Scores history predicates against catalog statistics."""

    def __init__(self, catalog: Catalog, cost_model: Optional[CostModel] = None):
        self.catalog = catalog
        # Per-instance default: a def-time CostModel() would be shared
        # by every advisor and leak calibration tweaks between them.
        self.cost_model = cost_model if cost_model is not None else CostModel()

    def _saved_seconds(self, table_name: str, predicate_key: str) -> float:
        """Scan bytes + predicate ops a full-cover hit avoids, in seconds."""
        if table_name not in self.catalog:
            return 0.0
        table = self.catalog.get(table_name)
        column = predicate_key.split(" ")[1] if predicate_key.startswith("NOT ") else predicate_key.split(" ")[0]
        io_bytes = sum(ref.bytes_for([column]) * ref.scale_factor for ref in table.blocks)
        ops_per_row = (
            OPS_PER_CONTAINS if " CONTAINS " in predicate_key else OPS_PER_COMPARISON
        )
        rows = table.modeled_rows
        io_s = io_bytes / self.cost_model.disk_bandwidth_bps
        cpu_s = ops_per_row * rows / self.cost_model.cpu_ops_per_sec
        return io_s + cpu_s

    def recommend(
        self,
        entries: Sequence[Any],
        top: int = 5,
        min_repetitions: int = 2,
        observed: Optional[Dict[str, float]] = None,
    ) -> List[Recommendation]:
        """Rank predicates from history entries by expected benefit.

        ``entries`` are :class:`repro.client.history.HistoryEntry`-shaped
        objects (``tables`` and ``predicate_keys`` attributes); the duck
        typing avoids a package cycle with the client layer.

        ``observed`` maps predicate keys to realized saved-seconds, as
        produced by :meth:`SmartIndexManager.benefit_snapshot` (sum it
        across leaves for a cluster-wide view); keys with measured
        benefit rank above equal estimates.
        """
        reps: Counter = Counter()
        table_of: Dict[str, str] = {}
        for entry in entries:
            if not entry.tables:
                continue
            for key in set(entry.predicate_keys):
                reps[key] += 1
                table_of.setdefault(key, entry.tables[0])
        observed = observed or {}
        recs = [
            Recommendation(
                predicate_key=key,
                table=table_of[key],
                repetitions=count,
                saved_seconds_per_use=self._saved_seconds(table_of[key], key),
                observed_benefit_s=observed.get(key, 0.0),
            )
            for key, count in reps.items()
            if count >= min_repetitions
        ]
        recs.sort(key=lambda r: r.score, reverse=True)
        return recs[:top]

    def recommend_for_user(
        self, history: Any, user: str, top: int = 5, since: Optional[float] = None
    ) -> List[Recommendation]:
        """Convenience over a :class:`repro.client.history.QueryHistory`."""
        return self.recommend(history.entries(user, since), top=top)


def apply_recommendations(cluster, recommendations: Sequence[Recommendation]) -> List[str]:
    """Pin the recommended predicates on every leaf's index manager."""
    keys = [r.predicate_key for r in recommendations]
    for leaf in cluster.leaves:
        if leaf.index_manager is not None:
            for key in keys:
                leaf.index_manager.prefer_predicate(key)
    return keys
