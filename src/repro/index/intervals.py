"""Per-(block, column) interval registry over cached SmartIndex atoms.

The semantic probe layer (ISSUE 4) needs two questions answered fast,
for every atom probe, without scanning the whole cache:

* *derivation*: which cached atoms sit at **exactly this value** on this
  column?  (``x <= 10`` and ``x < 10`` together derive ``x = 10`` by
  bitmap AND-NOT; ``x < 10`` OR ``x = 10`` derives ``x <= 10``; …)
* *subsumption*: which cached atom is the **tightest superset** of the
  probe?  (a cached ``x < 20`` vector is a sound candidate mask for a
  ``x < 10`` probe — the residual scan then touches only candidate
  rows.)

Both are O(log n) here: per ``(block, column, type-class)`` the registry
keeps one sorted value array per range operator (LT/LE/GT/GE) probed
with ``bisect``, a value→key dict for equalities, and a needle→key dict
for CONTAINS.  Values are bucketed by *type class* (numbers vs strings)
so a mixed-type column never makes ``bisect`` compare unorderable
values.

Soundness of the candidate tables below relies on numpy comparison
semantics: NaN fails every ordered comparison, so for ordered probes a
*complement* vector (``invert=True`` — the bit-NOT of a stored entry)
over-approximates by exactly the NaN rows.  Supersets stay supersets;
the residual evaluation restores exactness.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.planner.cnf import AtomicPredicate
from repro.sql.ast import BinaryOperator

#: Range operators tracked in sorted arrays.
RANGE_OPS = (
    BinaryOperator.LT,
    BinaryOperator.LE,
    BinaryOperator.GT,
    BinaryOperator.GE,
)


def _type_class(value) -> str:
    """Bucket values into mutually orderable families."""
    if isinstance(value, (bool, int, float)):
        return "num"
    if isinstance(value, str):
        return "str"
    return type(value).__name__


class _SortedAtoms:
    """Sorted value array with a parallel predicate-key array.

    Values are unique within one (block, column, op) family — the
    canonical predicate key makes duplicates impossible — so lookups
    need no tie handling.
    """

    __slots__ = ("values", "keys")

    def __init__(self) -> None:
        self.values: List = []
        self.keys: List[str] = []

    def __len__(self) -> int:
        return len(self.values)

    def add(self, value, key: str) -> None:
        i = bisect_left(self.values, value)
        if i < len(self.values) and self.values[i] == value:
            self.keys[i] = key
            return
        self.values.insert(i, value)
        self.keys.insert(i, key)

    def discard(self, value) -> None:
        i = bisect_left(self.values, value)
        if i < len(self.values) and self.values[i] == value:
            del self.values[i]
            del self.keys[i]

    def get(self, value) -> Optional[str]:
        i = bisect_left(self.values, value)
        if i < len(self.values) and self.values[i] == value:
            return self.keys[i]
        return None

    def ceil(self, value, strict: bool) -> Optional[Tuple[object, str]]:
        """Smallest entry ``> value`` (strict) or ``>= value``."""
        i = bisect_right(self.values, value) if strict else bisect_left(self.values, value)
        if i < len(self.values):
            return self.values[i], self.keys[i]
        return None

    def floor(self, value, strict: bool) -> Optional[Tuple[object, str]]:
        """Largest entry ``< value`` (strict) or ``<= value``."""
        i = (bisect_left(self.values, value) if strict else bisect_right(self.values, value)) - 1
        if i >= 0:
            return self.values[i], self.keys[i]
        return None


@dataclass(frozen=True)
class Candidate:
    """One cached superset of a probe atom.

    ``invert`` marks complement use: the candidate vector is the bit-NOT
    of the stored entry's vector (sound for candidate masks — the NaN
    over-approximation only widens the superset).
    """

    predicate_key: str
    invert: bool


# Tightest-superset probe table.  Per probe operator: which cached-op
# array to consult, whether the match is used through bit-NOT, whether
# to take the floor (lower bound) or ceil (upper bound) neighbour, and
# whether the bound must be strict.  Derivation (one row each, probe
# ``OP v`` against cached ``cached_op w``):
#
#   LT v ⊆ LT w / LE w / ~GE w / ~GT w   iff w >= v
#   LE v ⊆ LE w / ~GT w                  iff w >= v ;  ⊆ LT w / ~GE w iff w > v
#   GT v ⊆ GT w / GE w / ~LE w / ~LT w   iff w <= v
#   GE v ⊆ GE w / ~LT w                  iff w <= v ;  ⊆ GT w / ~LE w iff w < v
#   EQ v: both sides of the point — the LE-probe rows above v and the
#         GE-probe rows below v.
_CANDIDATE_PROBES: Dict[BinaryOperator, Tuple[Tuple[BinaryOperator, bool, bool, bool], ...]] = {
    BinaryOperator.LT: (
        (BinaryOperator.LT, False, False, False),
        (BinaryOperator.LE, False, False, False),
        (BinaryOperator.GE, True, False, False),
        (BinaryOperator.GT, True, False, False),
    ),
    BinaryOperator.LE: (
        (BinaryOperator.LT, False, False, True),
        (BinaryOperator.LE, False, False, False),
        (BinaryOperator.GE, True, False, True),
        (BinaryOperator.GT, True, False, False),
    ),
    BinaryOperator.GT: (
        (BinaryOperator.GT, False, True, False),
        (BinaryOperator.GE, False, True, False),
        (BinaryOperator.LE, True, True, False),
        (BinaryOperator.LT, True, True, False),
    ),
    BinaryOperator.GE: (
        (BinaryOperator.GT, False, True, True),
        (BinaryOperator.GE, False, True, False),
        (BinaryOperator.LE, True, True, True),
        (BinaryOperator.LT, True, True, False),
    ),
}
_CANDIDATE_PROBES[BinaryOperator.EQ] = (
    _CANDIDATE_PROBES[BinaryOperator.LE] + _CANDIDATE_PROBES[BinaryOperator.GE]
)


class IntervalRegistry:
    """Secondary index over cached atoms, kept in sync by the manager.

    Only *positively stored* atoms are registered (the entry's own
    predicate, never its complement) — ``invert`` in probe results is
    how complements are reached.
    """

    def __init__(self) -> None:
        self._ranges: Dict[Tuple[str, str, str], Dict[BinaryOperator, _SortedAtoms]] = {}
        self._eq: Dict[Tuple[str, str, str], Dict[object, str]] = {}
        self._contains: Dict[Tuple[str, str], Dict[str, str]] = {}
        self._atoms = 0

    @property
    def atom_count(self) -> int:
        return self._atoms

    # -- maintenance -------------------------------------------------------

    def add(self, block_id: str, atom: AtomicPredicate) -> None:
        op = atom.op
        if op is BinaryOperator.CONTAINS:
            if atom.negated:
                return  # negated CONTAINS subsumes nothing useful
            needles = self._contains.setdefault((block_id, atom.column), {})
            if str(atom.value) not in needles:
                self._atoms += 1
            needles[str(atom.value)] = atom.key
            return
        if op is BinaryOperator.NE:
            return  # NE answers come from the EQ complement, never composition
        bucket = (block_id, atom.column, _type_class(atom.value))
        if op is BinaryOperator.EQ:
            eqs = self._eq.setdefault(bucket, {})
            if atom.value not in eqs:
                self._atoms += 1
            eqs[atom.value] = atom.key
            return
        ranges = self._ranges.setdefault(bucket, {})
        arr = ranges.get(op)
        if arr is None:
            arr = ranges[op] = _SortedAtoms()
        before = len(arr)
        arr.add(atom.value, atom.key)
        self._atoms += len(arr) - before

    def discard(self, block_id: str, atom: AtomicPredicate) -> None:
        op = atom.op
        if op is BinaryOperator.CONTAINS:
            needles = self._contains.get((block_id, atom.column))
            if needles and needles.pop(str(atom.value), None) is not None:
                self._atoms -= 1
                if not needles:
                    del self._contains[(block_id, atom.column)]
            return
        if op is BinaryOperator.NE:
            return
        bucket = (block_id, atom.column, _type_class(atom.value))
        if op is BinaryOperator.EQ:
            eqs = self._eq.get(bucket)
            if eqs and eqs.pop(atom.value, None) is not None:
                self._atoms -= 1
                if not eqs:
                    del self._eq[bucket]
            return
        ranges = self._ranges.get(bucket)
        if not ranges:
            return
        arr = ranges.get(op)
        if arr is None:
            return
        before = len(arr)
        arr.discard(atom.value)
        self._atoms -= before - len(arr)
        if not len(arr):
            del ranges[op]
            if not ranges:
                del self._ranges[bucket]

    # -- probes ------------------------------------------------------------

    def same_value(self, block_id: str, column: str, value) -> Dict[BinaryOperator, str]:
        """Cached atoms pinned at exactly ``value`` on this column.

        Feeds the exact derivation compositions (``EQ = LE & GE``,
        ``LE = LT | EQ``, ``LT = LE &~ EQ``, …); each lookup is one
        bisect or dict hit.
        """
        bucket = (block_id, column, _type_class(value))
        out: Dict[BinaryOperator, str] = {}
        eqs = self._eq.get(bucket)
        if eqs is not None:
            key = eqs.get(value)
            if key is not None:
                out[BinaryOperator.EQ] = key
        ranges = self._ranges.get(bucket)
        if ranges:
            for op, arr in ranges.items():
                key = arr.get(value)
                if key is not None:
                    out[op] = key
        return out

    def superset_candidates(self, block_id: str, atom: AtomicPredicate) -> List[Candidate]:
        """Tightest cached supersets of ``atom`` (at most one per table row).

        The caller ANDs the candidate vectors: each is a superset of the
        probe's true-set, so their intersection is the tightest sound
        candidate mask the cache can offer.
        """
        if atom.op is BinaryOperator.CONTAINS:
            if atom.negated:
                return []
            needles = self._contains.get((block_id, atom.column))
            if not needles:
                return []
            probe = str(atom.value)
            # Needle dicts are tiny (distinct CONTAINS literals per
            # column); the substring test is the whole filter.
            return [
                Candidate(key, False)
                for needle, key in needles.items()
                if needle != probe and needle in probe
            ]
        rows = _CANDIDATE_PROBES.get(atom.op)
        if rows is None:
            return []
        bucket = (block_id, atom.column, _type_class(atom.value))
        ranges = self._ranges.get(bucket)
        if not ranges:
            return []
        out: List[Candidate] = []
        for cached_op, invert, use_floor, strict in rows:
            arr = ranges.get(cached_op)
            if arr is None:
                continue
            hit = arr.floor(atom.value, strict) if use_floor else arr.ceil(atom.value, strict)
            if hit is None:
                continue
            _, key = hit
            if not invert and key == atom.key:
                continue  # the probe itself; exact lookup already failed upstream
            out.append(Candidate(key, invert))
        return out
