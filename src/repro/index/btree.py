"""B+ tree secondary index — the baseline of Fig 9(b).

The paper compares SmartIndex against "B-tree index in Feisu": a
conventional per-column value index built ahead of queries.  This is a
real bulk-loaded B+ tree (order-64 internal fan-out, leaf chaining for
range scans), mapping column values to row positions inside one block.

Why it loses to SmartIndex on this workload (§VI-B-1): a B-tree answers
*point and range* lookups on the indexed column, but (1) it cannot help
``CONTAINS`` predicates at all, (2) each query still pays result
materialization per matching row, and (3) it memorizes *values*, not
*predicate results*, so repeated predicate evaluation work is repaid
only partially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import IndexError_
from repro.planner.cnf import AtomicPredicate
from repro.sql.ast import BinaryOperator

#: Max keys per node.
ORDER = 64


@dataclass
class _LeafNode:
    keys: List = field(default_factory=list)
    #: One row-position array per key (duplicates collapse onto one key).
    rows: List[np.ndarray] = field(default_factory=list)
    next: Optional["_LeafNode"] = None


@dataclass
class _InnerNode:
    #: separators[i] is the smallest key in children[i + 1]'s subtree.
    separators: List = field(default_factory=list)
    children: List[Union["_InnerNode", _LeafNode]] = field(default_factory=list)


class BPlusTree:
    """Bulk-loaded, read-only B+ tree over one column of one block."""

    def __init__(self, values: np.ndarray):
        self.num_rows = len(values)
        if self.num_rows == 0:
            self._root, self._first_leaf = _bulk_load([], [])
            self.num_keys = 0
            self.height = _height(self._root)
            return
        order = np.argsort(values, kind="stable")
        sorted_vals = values[order]
        boundaries = np.flatnonzero(
            np.concatenate(([True], sorted_vals[1:] != sorted_vals[:-1]))
        )
        ends = np.append(boundaries[1:], len(sorted_vals))
        keys = [sorted_vals[b] for b in boundaries]
        rows = [np.sort(order[b:e]) for b, e in zip(boundaries, ends)]
        self._root, self._first_leaf = _bulk_load(keys, rows)
        self.num_keys = len(keys)
        self.height = _height(self._root)

    # -- lookups ---------------------------------------------------------

    def _leaf_for(self, key) -> _LeafNode:
        node = self._root
        while isinstance(node, _InnerNode):
            idx = _upper_bound(node.separators, key)
            node = node.children[idx]
        return node

    def search(self, key) -> np.ndarray:
        """Row positions where the column equals ``key``."""
        leaf = self._leaf_for(key)
        for k, rows in zip(leaf.keys, leaf.rows):
            if k == key:
                return rows
        return np.empty(0, dtype=np.int64)

    def range(
        self,
        low=None,
        high=None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Row positions with ``low (<|<=) value (<|<=) high``."""
        leaf = self._first_leaf if low is None else self._leaf_for(low)
        out: List[np.ndarray] = []
        while leaf is not None:
            for k, rows in zip(leaf.keys, leaf.rows):
                if low is not None:
                    if k < low or (k == low and not low_inclusive):
                        continue
                if high is not None:
                    if k > high or (k == high and not high_inclusive):
                        return _concat(out)
                out.append(rows)
            leaf = leaf.next
        return _concat(out)

    # -- predicate interface (what the leaf server calls) -----------------

    def supports(self, atom: AtomicPredicate) -> bool:
        """B-trees answer ordered comparisons and equality — not CONTAINS
        and not inequality (≠ selects nearly everything anyway)."""
        return atom.op in (
            BinaryOperator.EQ,
            BinaryOperator.LT,
            BinaryOperator.LE,
            BinaryOperator.GT,
            BinaryOperator.GE,
        )

    def evaluate(self, atom: AtomicPredicate) -> np.ndarray:
        """Boolean mask for an atom over this block's rows."""
        if not self.supports(atom):
            raise IndexError_(f"B+ tree cannot answer {atom.key}")
        op, v = atom.op, atom.value
        if op is BinaryOperator.EQ:
            positions = self.search(v)
        elif op is BinaryOperator.LT:
            positions = self.range(high=v, high_inclusive=False)
        elif op is BinaryOperator.LE:
            positions = self.range(high=v, high_inclusive=True)
        elif op is BinaryOperator.GT:
            positions = self.range(low=v, low_inclusive=False)
        else:  # GE
            positions = self.range(low=v, low_inclusive=True)
        mask = np.zeros(self.num_rows, dtype=np.bool_)
        mask[positions] = True
        return mask

    def nbytes(self) -> int:
        """Rough memory footprint (keys + row arrays + node overhead)."""
        total = 0
        leaf = self._first_leaf
        while leaf is not None:
            total += 64 + 16 * len(leaf.keys)
            total += sum(r.nbytes for r in leaf.rows)
            leaf = leaf.next
        return total


def _bulk_load(keys: List, rows: List[np.ndarray]) -> Tuple[Union[_InnerNode, _LeafNode], _LeafNode]:
    """Classic bottom-up bulk load: pack leaves, then build inner levels."""
    leaves: List[_LeafNode] = []
    for start in range(0, max(len(keys), 1), ORDER):
        leaf = _LeafNode(keys=keys[start : start + ORDER], rows=rows[start : start + ORDER])
        if leaves:
            leaves[-1].next = leaf
        leaves.append(leaf)
    if not leaves:
        leaves = [_LeafNode()]
    level: List[Union[_InnerNode, _LeafNode]] = list(leaves)
    level_min_keys = [leaf.keys[0] if leaf.keys else None for leaf in leaves]
    while len(level) > 1:
        parents: List[Union[_InnerNode, _LeafNode]] = []
        parent_mins: List = []
        for start in range(0, len(level), ORDER):
            children = level[start : start + ORDER]
            mins = level_min_keys[start : start + ORDER]
            node = _InnerNode(separators=list(mins[1:]), children=list(children))
            parents.append(node)
            parent_mins.append(mins[0])
        level = parents
        level_min_keys = parent_mins
    return level[0], leaves[0]


def _upper_bound(separators: List, key) -> int:
    """Child index for ``key``: count of separators <= key."""
    lo, hi = 0, len(separators)
    while lo < hi:
        mid = (lo + hi) // 2
        if separators[mid] <= key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _height(node: Union[_InnerNode, _LeafNode]) -> int:
    h = 1
    while isinstance(node, _InnerNode):
        node = node.children[0]
        h += 1
    return h


def _concat(arrays: List[np.ndarray]) -> np.ndarray:
    if not arrays:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(arrays)
