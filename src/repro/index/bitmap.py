"""0-1 vectors for SmartIndex (Fig 6).

Each SmartIndex stores "the evaluation results of a query predicate" as a
0-1 vector.  :class:`BitVector` is the uncompressed working form (packed
bits, vectorized logical ops); :func:`rle_compress` implements the
byte-level run-length compression the paper mentions ("Feisu can
compress the index to improve memory efficiency") — selective predicates
produce long zero runs that collapse well.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import IndexError_


class BitVector:
    """A fixed-length bit vector with bitwise algebra.

    Supports the exact operations of the Fig 7 plan rewrite: bit-AND to
    combine conjuncts, bit-OR for disjunctive clauses, and bit-NOT to
    answer a predicate from its stored complement.
    """

    __slots__ = ("_bits", "length")

    def __init__(self, packed: np.ndarray, length: int):
        if packed.dtype != np.uint8:
            raise IndexError_("BitVector needs a uint8 packed buffer")
        self._bits = packed
        self.length = length

    @classmethod
    def from_bool_array(cls, mask: np.ndarray) -> "BitVector":
        mask = np.asarray(mask, dtype=np.bool_)
        return cls(np.packbits(mask), len(mask))

    @classmethod
    def zeros(cls, length: int) -> "BitVector":
        return cls(np.zeros((length + 7) // 8, dtype=np.uint8), length)

    @classmethod
    def ones(cls, length: int) -> "BitVector":
        bv = cls(np.full((length + 7) // 8, 0xFF, dtype=np.uint8), length)
        bv._mask_tail()
        return bv

    def _mask_tail(self) -> None:
        """Zero the padding bits beyond ``length``."""
        tail = self.length % 8
        if tail and len(self._bits):
            self._bits[-1] &= np.uint8(0xFF << (8 - tail) & 0xFF)

    def to_bool_array(self) -> np.ndarray:
        return np.unpackbits(self._bits, count=self.length).astype(np.bool_)

    def _check(self, other: "BitVector") -> None:
        if self.length != other.length:
            raise IndexError_(
                f"bit vector length mismatch: {self.length} vs {other.length}"
            )

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check(other)
        return BitVector(self._bits & other._bits, self.length)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check(other)
        return BitVector(self._bits | other._bits, self.length)

    def __invert__(self) -> "BitVector":
        out = BitVector(~self._bits, self.length)
        out._mask_tail()
        return out

    def count(self) -> int:
        """Number of set bits (matching rows)."""
        # popcount via unpackbits on the exact length
        return int(np.unpackbits(self._bits, count=self.length).sum())

    def any(self) -> bool:
        return bool(self._bits.any())

    @property
    def nbytes(self) -> int:
        return int(self._bits.nbytes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self.length == other.length and bool((self._bits == other._bits).all())

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((self.length, self._bits.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BitVector len={self.length} set={self.count()}>"


def rle_compress(bv: BitVector) -> Tuple[bytes, int]:
    """Byte-level run-length compression of the packed buffer.

    Returns ``(payload, original_length)``.  Format: repeating
    ``(count:uint16, byte)`` records.
    """
    raw = bv._bits  # noqa: SLF001
    if len(raw) == 0:
        return b"", bv.length
    change = np.concatenate(([True], raw[1:] != raw[:-1]))
    starts = np.flatnonzero(change)
    lengths = np.diff(np.concatenate((starts, [len(raw)])))
    out = bytearray()
    for start, run in zip(starts, lengths):
        run = int(run)
        while run > 0:
            chunk = min(run, 0xFFFF)
            out += chunk.to_bytes(2, "little")
            out.append(int(raw[start]))
            run -= chunk
    return bytes(out), bv.length


def rle_decompress(payload: bytes, length: int) -> BitVector:
    """Inverse of :func:`rle_compress`."""
    chunks = []
    pos = 0
    while pos < len(payload):
        run = int.from_bytes(payload[pos : pos + 2], "little")
        byte = payload[pos + 2]
        chunks.append(np.full(run, byte, dtype=np.uint8))
        pos += 3
    if chunks:
        packed = np.concatenate(chunks)
    else:
        packed = np.zeros(0, dtype=np.uint8)
    expected = (length + 7) // 8
    if len(packed) != expected:
        raise IndexError_(
            f"corrupt RLE payload: {len(packed)} bytes for length {length}"
        )
    return BitVector(packed, length)
