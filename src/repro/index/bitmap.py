"""0-1 vectors for SmartIndex (Fig 6).

Each SmartIndex stores "the evaluation results of a query predicate" as a
0-1 vector.  :class:`BitVector` is the uncompressed working form (packed
bits, vectorized logical ops); :func:`rle_compress` implements the
byte-level run-length compression the paper mentions ("Feisu can
compress the index to improve memory efficiency") — selective predicates
produce long zero runs that collapse well.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import IndexError_

#: Per-byte popcount lookup table; indexing with a uint8 buffer popcounts
#: the whole buffer without materializing an 8x bool expansion.
_POPCOUNT8 = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(
    axis=1, dtype=np.int64
)


class BitVector:
    """A fixed-length bit vector with bitwise algebra.

    Supports the exact operations of the Fig 7 plan rewrite: bit-AND to
    combine conjuncts, bit-OR for disjunctive clauses, and bit-NOT to
    answer a predicate from its stored complement.
    """

    __slots__ = ("_bits", "length")

    def __init__(self, packed: np.ndarray, length: int):
        if packed.dtype != np.uint8:
            raise IndexError_("BitVector needs a uint8 packed buffer")
        self._bits = packed
        self.length = length

    @classmethod
    def from_bool_array(cls, mask: np.ndarray) -> "BitVector":
        mask = np.asarray(mask, dtype=np.bool_)
        return cls(np.packbits(mask), len(mask))

    @classmethod
    def zeros(cls, length: int) -> "BitVector":
        return cls(np.zeros((length + 7) // 8, dtype=np.uint8), length)

    @classmethod
    def ones(cls, length: int) -> "BitVector":
        bv = cls(np.full((length + 7) // 8, 0xFF, dtype=np.uint8), length)
        bv._mask_tail()
        return bv

    def _mask_tail(self) -> None:
        """Zero the padding bits beyond ``length``."""
        tail = self.length % 8
        if tail and len(self._bits):
            self._bits[-1] &= np.uint8(0xFF << (8 - tail) & 0xFF)

    def to_bool_array(self) -> np.ndarray:
        return np.unpackbits(self._bits, count=self.length).astype(np.bool_)

    def _check(self, other: "BitVector") -> None:
        if self.length != other.length:
            raise IndexError_(
                f"bit vector length mismatch: {self.length} vs {other.length}"
            )

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check(other)
        return BitVector(self._bits & other._bits, self.length)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check(other)
        return BitVector(self._bits | other._bits, self.length)

    def andnot(self, other: "BitVector") -> "BitVector":
        """``self & ~other`` in one pass — the range AND-NOT composition
        the semantic probe layer uses (e.g. ``x < v`` from cached
        ``x <= v`` minus cached ``x = v``).  No tail re-masking needed:
        the result is a subset of ``self``'s set bits."""
        self._check(other)
        return BitVector(self._bits & ~other._bits, self.length)

    def __invert__(self) -> "BitVector":
        out = BitVector(~self._bits, self.length)
        out._mask_tail()
        return out

    def count(self) -> int:
        """Number of set bits (matching rows).

        Popcount via the 256-entry byte table — no ``unpackbits``
        materialization; tail padding bits are masked out of the last
        byte so arbitrary packed buffers still count exactly.
        """
        used = (self.length + 7) // 8
        if used == 0:
            return 0
        total = int(_POPCOUNT8[self._bits[:used]].sum())
        tail = self.length % 8
        if tail:
            last = int(self._bits[used - 1])
            masked = last & (0xFF << (8 - tail) & 0xFF)
            total += int(_POPCOUNT8[masked]) - int(_POPCOUNT8[last])
        return total

    def any(self) -> bool:
        return bool(self._bits.any())

    @property
    def nbytes(self) -> int:
        return int(self._bits.nbytes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self.length == other.length and bool((self._bits == other._bits).all())

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((self.length, self._bits.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BitVector len={self.length} set={self.count()}>"


def rle_compress(bv: BitVector) -> Tuple[bytes, int]:
    """Byte-level run-length compression of the packed buffer.

    Returns ``(payload, original_length)``.  Format: repeating
    ``(count:uint16, byte)`` records.
    """
    raw = bv._bits  # noqa: SLF001
    if len(raw) == 0:
        return b"", bv.length
    change = np.concatenate(([True], raw[1:] != raw[:-1]))
    starts = np.flatnonzero(change)
    lengths = np.diff(np.append(starts, len(raw)))
    # Runs longer than 0xFFFF split into full chunks plus a remainder;
    # records for all chunks are emitted in one vectorized pass.
    n_chunks = (lengths + 0xFFFE) // 0xFFFF
    total = int(n_chunks.sum())
    run_idx = np.repeat(np.arange(len(starts)), n_chunks)
    within = np.arange(total) - np.repeat(np.cumsum(n_chunks) - n_chunks, n_chunks)
    sizes = np.where(
        within == n_chunks[run_idx] - 1,
        lengths[run_idx] - (n_chunks[run_idx] - 1) * 0xFFFF,
        0xFFFF,
    ).astype(np.uint16)
    records = np.empty((total, 3), dtype=np.uint8)
    records[:, 0] = sizes & 0xFF  # count, little-endian uint16
    records[:, 1] = sizes >> 8
    records[:, 2] = raw[starts][run_idx]
    return records.tobytes(), bv.length


def rle_decompress(payload: bytes, length: int) -> BitVector:
    """Inverse of :func:`rle_compress`."""
    buf = np.frombuffer(payload, dtype=np.uint8)
    if len(buf) % 3:
        raise IndexError_(
            f"corrupt RLE payload: {len(buf)} bytes is not a whole number of records"
        )
    records = buf.reshape(-1, 3)
    runs = records[:, 0].astype(np.int64) | (records[:, 1].astype(np.int64) << 8)
    packed = np.repeat(records[:, 2], runs)
    expected = (length + 7) // 8
    if len(packed) != expected:
        raise IndexError_(
            f"corrupt RLE payload: {len(packed)} bytes for length {length}"
        )
    return BitVector(packed, length)
