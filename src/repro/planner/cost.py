"""Cost model backing the master's cost-based planning (§III-B).

Cost estimates feed three decisions:

* the scheduler's placement choice (local disk read vs. remote transfer);
* backup-task timeouts (a task overdue by ``BACKUP_FACTOR`` × its
  estimate gets a speculative copy, §III-C);
* the planner's block pruning payoff accounting.

Units are simulated seconds, matching the DES clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.planner.cnf import ConjunctiveForm
from repro.planner.physical import ScanTask
from repro.sim.resources import CPU_OPS_PER_SEC, SATA_BANDWIDTH_BPS, SATA_SEEK_S
from repro.sql.ast import BinaryOperator

#: Ops charged per row per atomic comparison during a scan filter.
OPS_PER_COMPARISON = 1.0
#: CONTAINS is a substring search — charged heavier, see §VI-B workload.
OPS_PER_CONTAINS = 20.0
#: Ops per row for decoding one column chunk.
OPS_PER_DECODE = 0.5
#: In-memory SmartIndex application cost per row (bitvector AND/NOT).
OPS_PER_INDEX_ROW = 0.03125  # one 64-bit word op covers 64 rows, ~2 ops/word
#: Fixed ops per morsel in the fused pipeline (scheduling, slice setup,
#: aggregate-state merge) — the reason morsels are ~64K rows, not 64.
OPS_PER_MORSEL = 256.0
#: Default fused-pipeline morsel granularity (rows).
MORSEL_ROWS_DEFAULT = 64 * 1024


@dataclass(frozen=True)
class CostModel:
    """Tunable rates; defaults mirror the §VI-A hardware table."""

    disk_bandwidth_bps: float = SATA_BANDWIDTH_BPS
    disk_seek_s: float = SATA_SEEK_S
    cpu_ops_per_sec: float = CPU_OPS_PER_SEC

    def predicate_ops_per_row(self, cnf: ConjunctiveForm) -> float:
        ops = 0.0
        for clause in cnf.clauses:
            for atom in clause.atoms:
                if atom.op is BinaryOperator.CONTAINS:
                    ops += OPS_PER_CONTAINS
                else:
                    ops += OPS_PER_COMPARISON
            ops += 2.0 * len(clause.residuals)  # opaque exprs: rough charge
        return ops

    def scan_io_seconds(
        self,
        task: ScanTask,
        bandwidth_factor: float = 1.0,
        nbytes: Optional[float] = None,
    ) -> float:
        """``nbytes`` lets a caller supply the (memoized) modeled read
        size; None computes it from the block, the original behaviour."""
        if nbytes is None:
            nbytes = task.block.bytes_for(task.columns) * task.block.scale_factor
        bw = self.disk_bandwidth_bps * bandwidth_factor
        return self.disk_seek_s + nbytes / bw

    def scan_cpu_seconds(self, task: ScanTask, cnf: ConjunctiveForm) -> float:
        rows = task.block.modeled_rows
        decode_ops = OPS_PER_DECODE * rows * len(task.columns)
        filter_ops = self.predicate_ops_per_row(cnf) * rows
        return (decode_ops + filter_ops) / self.cpu_ops_per_sec

    def index_cpu_seconds(self, task: ScanTask, num_clauses: int) -> float:
        """Cost of answering the filter purely from SmartIndex vectors."""
        rows = task.block.modeled_rows
        return (OPS_PER_INDEX_ROW * rows * max(1, num_clauses)) / self.cpu_ops_per_sec

    def residual_scan_seconds(
        self, task: ScanTask, cnf: ConjunctiveForm, fraction: float
    ) -> float:
        """Estimate for a residual candidate-mask scan (semantic index).

        The candidate fraction scales both the column read and the
        predicate re-evaluation; the index pass over the candidate
        vectors is charged in full.
        """
        fraction = min(max(fraction, 0.0), 1.0)
        nbytes = task.block.bytes_for(task.columns) * task.block.scale_factor
        io = self.disk_seek_s + fraction * nbytes / self.disk_bandwidth_bps
        cpu = fraction * self.scan_cpu_seconds(task, cnf)
        return io + cpu + self.index_cpu_seconds(task, max(1, len(cnf.clauses)))

    def morsel_count(self, task: ScanTask, morsel_rows: int = MORSEL_ROWS_DEFAULT) -> int:
        """Morsels the fused driver splits this task's block into."""
        rows = max(1, task.block.num_rows)
        return -(-rows // max(1, int(morsel_rows)))  # ceil division

    def fused_task_seconds(
        self,
        task: ScanTask,
        cnf: ConjunctiveForm,
        workers: int = 1,
        morsel_rows: int = MORSEL_ROWS_DEFAULT,
        bandwidth_factor: float = 1.0,
    ) -> float:
        """Wall-clock-shaped estimate for a fused morsel-parallel task.

        The I/O term is unchanged (the device model serializes reads
        regardless of CPU fan-out); decode+filter CPU divides across the
        worker lanes actually usable (``min(workers, morsels)``), and
        each morsel pays a fixed scheduling/merge overhead — which is
        why a finer ``morsel_rows`` is not free.  The *simulated* clock
        never uses this: fused and unfused tasks charge identical ops by
        design, so this estimate exists for EXPLAIN and for sizing
        ``LeafConfig.morsel_rows``.
        """
        morsels = self.morsel_count(task, morsel_rows)
        lanes = max(1, min(int(workers) if workers else 1, morsels))
        overhead = OPS_PER_MORSEL * morsels / self.cpu_ops_per_sec
        return (
            self.scan_io_seconds(task, bandwidth_factor)
            + self.scan_cpu_seconds(task, cnf) / lanes
            + overhead
        )

    def sized_task_seconds(
        self,
        nbytes: float,
        modeled_rows: float,
        cnf: ConjunctiveForm,
        num_columns: int,
        bandwidth_factor: float = 1.0,
        extra_latency_s: float = 0.0,
    ) -> float:
        """Like :meth:`task_seconds` but for an explicitly-sized read.

        The layout-aware scheduler (S54) prices a candidate replica by
        the bytes *its* physical variant would actually serve — a
        column-subset projection or a sorted replica's binary-searched
        candidate range — rather than the catalog block's estimate.
        """
        io = (
            extra_latency_s
            + self.disk_seek_s
            + nbytes / (self.disk_bandwidth_bps * bandwidth_factor)
        )
        decode_ops = OPS_PER_DECODE * modeled_rows * max(0, num_columns)
        filter_ops = self.predicate_ops_per_row(cnf) * modeled_rows
        return io + (decode_ops + filter_ops) / self.cpu_ops_per_sec

    def tier_saved_seconds(self, nbytes: float, cold_profile, hot_profile) -> float:
        """Scan-seconds one read saves after promotion cold → hot.

        Profiles are duck-typed ``ServiceProfile``-likes (first-byte
        latency + bandwidth factor) so the planner stays import-free of
        the storage package.  The numerator of the tiering daemon's
        benefit-per-byte score, mirroring :func:`atom_saved_seconds`.
        """
        cold_s = cold_profile.first_byte_latency_s + nbytes / (
            self.disk_bandwidth_bps * cold_profile.bandwidth_factor
        )
        hot_s = hot_profile.first_byte_latency_s + nbytes / (
            self.disk_bandwidth_bps * hot_profile.bandwidth_factor
        )
        return max(0.0, cold_s - hot_s)

    def task_seconds(
        self,
        task: ScanTask,
        cnf: ConjunctiveForm,
        index_covered: bool = False,
        bandwidth_factor: float = 1.0,
        extra_latency_s: float = 0.0,
        nbytes: Optional[float] = None,
    ) -> float:
        """End-to-end single-task estimate.

        With full SmartIndex cover, both the block scan I/O and the
        predicate evaluation are skipped (§IV-C-3): only the index pass
        and the (much smaller) projection read of matching rows remain.
        ``nbytes`` optionally supplies a memoized modeled read size (see
        :meth:`scan_io_seconds`).
        """
        if index_covered:
            return self.index_cpu_seconds(task, max(1, len(cnf.clauses)))
        return (
            extra_latency_s
            + self.scan_io_seconds(task, bandwidth_factor, nbytes=nbytes)
            + self.scan_cpu_seconds(task, cnf)
        )


def atom_saved_seconds(block, atom, cost_model: "CostModel" = None) -> float:
    """Scan-seconds one future hit on a cached atom vector saves.

    The numerator of the semantic cache's benefit-per-byte score: the
    per-row comparison plus decode CPU the hit skips, and the cached
    atom's share of the block read (its own column's bytes).
    """
    cm = cost_model if cost_model is not None else CostModel()
    rows = block.modeled_rows
    ops = OPS_PER_CONTAINS if atom.op is BinaryOperator.CONTAINS else OPS_PER_COMPARISON
    cpu = (ops + OPS_PER_DECODE) * rows / cm.cpu_ops_per_sec
    io = block.bytes_for([atom.column]) * block.scale_factor / cm.disk_bandwidth_bps
    return cpu + io
