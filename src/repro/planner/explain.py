"""EXPLAIN: human-readable physical plans.

Renders what the master decided for a query — the §III-B "optimized
query execution plan" — including predicate classification (indexable
scan CNF vs. post-join residual), block pruning, projection pushdown,
broadcast joins and cost estimates.  Exposed to users through
:meth:`repro.client.FeisuClient.explain`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.planner.cost import CostModel
from repro.planner.physical import PhysicalPlan


def explain(
    plan: PhysicalPlan,
    cost_model: Optional[CostModel] = None,
    leaf_config=None,
) -> str:
    """Render a physical plan as an indented tree.

    ``leaf_config`` (a :class:`~repro.cluster.node.LeafConfig`, duck-typed)
    lets the scan section show leaf execution mode — fused pipelines and
    their morsel split — next to the planner's decisions.
    """
    lines, _anchors = _plan_lines(plan, cost_model, leaf_config=leaf_config)
    return "\n".join(lines)


def _plan_lines(
    plan: PhysicalPlan,
    cost_model: Optional[CostModel] = None,
    leaf_config=None,
) -> "tuple[List[str], Dict[str, int]]":
    """The explain tree plus anchor indices for operator annotations."""
    # A def-time `CostModel()` default would be one shared instance for
    # every explain() call ever made; construct per call instead.
    cost_model = cost_model if cost_model is not None else CostModel()
    analyzed = plan.analyzed
    lines: List[str] = [f"Plan {plan.plan_id}"]
    anchors: Dict[str, int] = {}

    def add(depth: int, text: str) -> None:
        lines.append("  " * depth + text)

    add(1, f"output: {', '.join(analyzed.output_names)}")

    if analyzed.query.limit is not None:
        add(1, f"limit: {analyzed.query.limit}")
    if analyzed.query.order_by:
        keys = ", ".join(
            f"{item.expr}{'' if item.ascending else ' DESC'}" for item in analyzed.query.order_by
        )
        add(1, f"order by: {keys}")

    if plan.is_aggregate:
        aggs = ", ".join(str(a) for a in analyzed.aggregates)
        add(1, f"aggregate: {aggs or '(none)'}")
        anchors["aggregate"] = len(lines) - 1
        if analyzed.group_keys:
            add(2, f"group keys: {', '.join(str(k) for k in analyzed.group_keys)}")
        if analyzed.query.having is not None:
            add(2, f"having: {analyzed.query.having}")

    for bc in plan.broadcasts:
        add(1, f"broadcast join [{bc.kind.value}] {bc.table_name} AS {bc.binding}")
        anchors.setdefault("broadcast", len(lines) - 1)
        add(2, f"on: {bc.condition}")
        add(2, f"columns: {', '.join(bc.columns)}")

    if plan.post_filter is not None:
        add(1, f"post-join filter: {plan.post_filter}")

    table = analyzed.tables[analyzed.base_binding]
    add(1, f"scan {table.name} ({len(plan.tasks)} tasks, {plan.pruned_blocks} blocks pruned)")
    anchors["scan"] = len(lines) - 1
    if plan.scan_cnf.clauses:
        add(2, "scan predicates (CNF, SmartIndex-eligible):")
        for clause in plan.scan_cnf.clauses:
            add(3, str(clause))
    else:
        add(2, "scan predicates: (none)")
    add(2, f"read columns: {', '.join(plan.tasks[0].columns) if plan.tasks else '(no tasks)'}")
    add(2, f"payload columns: {', '.join(plan.payload_columns) or '(none)'}")

    scan_bytes = plan.estimated_scan_bytes()
    add(2, f"estimated scan: {_fmt_bytes(scan_bytes)} encoded")
    if plan.tasks:
        from repro.planner.selectivity import estimate_result_rows, estimate_selectivity

        selectivity = estimate_selectivity(plan.scan_cnf, table)
        add(
            2,
            f"estimated selectivity: {selectivity:.3f} "
            f"(~{estimate_result_rows(plan):,.0f} of {table.modeled_rows:,.0f} modeled rows)",
        )
    if plan.tasks:
        cold = sum(cost_model.task_seconds(t, plan.scan_cnf) for t in plan.tasks)
        warm = sum(
            cost_model.task_seconds(t, plan.scan_cnf, index_covered=True) for t in plan.tasks
        )
        add(2, f"estimated task seconds: {cold:.3f} cold / {warm:.3f} index-covered")
    if leaf_config is not None and getattr(leaf_config, "enable_fused_pipelines", False):
        # Only rendered when the flag-gated fused path is on, so default
        # EXPLAIN output is unchanged.
        import os as _os

        morsel_rows = getattr(leaf_config, "morsel_rows", 64 * 1024)
        workers = getattr(leaf_config, "worker_threads", 0) or (_os.cpu_count() or 1)
        morsels = sum(cost_model.morsel_count(t, morsel_rows) for t in plan.tasks)
        add(2, f"fused pipeline: yes, morsels: {morsels} "
               f"({workers} workers, {morsel_rows} rows/morsel)")
    return lines, anchors


def explain_analyze(
    plan: PhysicalPlan,
    job,
    cost_model: Optional[CostModel] = None,
    leaf_config=None,
) -> str:
    """Render the plan annotated with what actually happened.

    ``job`` is an executed :class:`~repro.cluster.jobs.Job`.  Each
    operator line gains ``actual:`` annotations — simulated seconds,
    rows, modeled bytes and index hit counts next to the cost model's
    estimates — sourced from the job's :class:`~repro.obs.trace.Tracer`
    when it ran with ``JobOptions.trace=True``, falling back to the
    aggregate job counters when tracing was off.
    """
    lines, anchors = _plan_lines(plan, cost_model, leaf_config=leaf_config)
    stats = job.stats
    timeline = job.task_timeline
    trace = getattr(job, "trace", None)
    totals = trace.totals_by_name() if trace is not None else {}

    def tot(name: str) -> "tuple[int, float]":
        agg = totals.get(name)
        return (int(agg["count"]), agg["total_s"]) if agg else (0, 0.0)

    inserts: List["tuple[int, List[str]]"] = []
    if "scan" in anchors:
        scan_lines: List[str] = []
        if trace is not None:
            _n_scan, scan_s = tot("scan")
            rows_in = trace.tag_sum("rows_in", "scan")
            rows_out = trace.tag_sum("rows_out", "scan")
            n_probe, _ = tot("index_probe")
            n_wait, wait_s = tot("queue_wait")
            scan_lines.append(
                f"actual: {len(timeline)} attempts, {scan_s:.4f}s scan, "
                f"{stats.io_bytes_modeled / 1e6:.1f} MB modeled, "
                f"rows {int(rows_in):,} -> {int(rows_out):,}"
            )
            scan_lines.append(
                f"actual index: {stats.index_full_covers} full covers, "
                f"{stats.index_clause_hits} clause hits, "
                f"{stats.index_clause_misses} misses ({n_probe} probes)"
            )
            if stats.index_subsumption_hits or stats.index_residual_clauses:
                # Semantic-index line: only rendered when the flag-gated
                # probe layer actually fired, so default-mode output is
                # unchanged.
                mean_fraction = (
                    stats.index_residual_fraction_sum / stats.index_residual_clauses
                    if stats.index_residual_clauses
                    else 0.0
                )
                scan_lines.append(
                    f"actual semantic: {stats.index_subsumption_hits} subsumption hits, "
                    f"{stats.index_residual_clauses} residual clauses "
                    f"(mean candidate fraction {mean_fraction:.3f})"
                )
            morsels = trace.tag_sum("morsels", "scan")
            if morsels:
                # Fused-pipeline line: the tags only exist when the
                # flag-gated fused path ran, so default output is
                # unchanged.
                wall = trace.tag_sum("morsel_wall_s", "scan")
                scan_lines.append(
                    f"actual fused: {int(morsels)} morsels, "
                    f"{wall * 1000:.2f} ms worker wall-clock"
                )
            tiers = trace.tag_values("tier", "scan")
            if tiers:
                # Tiering line: the tag only exists when the flag-gated
                # daemon is attached, so default-mode output is unchanged.
                parts = ", ".join(f"{n} {t}" for t, n in sorted(tiers.items()))
                scan_lines.append(f"actual tier: {parts}")
            layouts = trace.tag_values("layout", "scan")
            if layouts:
                # Trojan-replica line (S54): the tag only exists when the
                # flag-gated layout daemon is attached, so default-mode
                # output is unchanged.
                parts = ", ".join(f"{n} {t}" for t, n in sorted(layouts.items()))
                scan_lines.append(f"actual layout: {parts}")
            scan_lines.append(f"actual queue wait: {wait_s:.4f}s over {n_wait} slot waits")
        else:
            scan_lines.append(
                f"actual: {stats.tasks_completed}/{stats.tasks_total} tasks, "
                f"{stats.io_bytes_modeled / 1e6:.1f} MB modeled (trace disabled)"
            )
        if stats.adaptive_waves:
            # Adaptive line: the counters are only nonzero when the
            # flag-gated re-optimizer ran, so default output is unchanged.
            scan_lines.append(
                f"actual adaptive: {stats.adaptive_waves} waves, "
                f"{stats.adaptive_replans} re-plans, {stats.adaptive_splits} splits, "
                f"{stats.adaptive_partitions_recovered} partitions recovered, "
                f"{stats.adaptive_tasks_skipped} tasks skipped"
            )
        inserts.append((anchors["scan"], scan_lines))
    if "aggregate" in anchors and trace is not None:
        n_agg, agg_s = tot("aggregate")
        groups = job.result.num_rows if job.result is not None else 0
        inserts.append(
            (
                anchors["aggregate"],
                [
                    f"actual: {groups} groups, {agg_s:.4f}s partial-aggregate CPU "
                    f"over {n_agg} attempts"
                ],
            )
        )
    if "broadcast" in anchors and trace is not None:
        ship_bytes = trace.tag_sum("bytes", "broadcast_ship")
        n_ship, _ = tot("broadcast_ship")
        fetch_bytes = trace.tag_sum("bytes", "fetch_broadcasts")
        _, fetch_s = tot("fetch_broadcasts")
        inserts.append(
            (
                anchors["broadcast"],
                [
                    f"actual: fetched {fetch_bytes / 1e6:.1f} MB in {fetch_s:.4f}s, "
                    f"shipped {ship_bytes / 1e6:.1f} MB to {n_ship} leaves"
                ],
            )
        )
    for idx, ins in sorted(inserts, key=lambda pair: -pair[0]):
        anchor = lines[idx]
        indent = " " * (len(anchor) - len(anchor.lstrip()) + 2)
        lines[idx + 1 : idx + 1] = [indent + text for text in ins]

    lines.append("")
    lines.append("execution:")
    queued = (
        f" (queued {job.started_at - job.submitted_at:.4f}s)"
        if job.started_at and job.started_at > job.submitted_at
        else ""
    )
    lines.append(f"  response: {stats.response_time_s:.4f}s simulated{queued}")
    if getattr(job, "replanned_plan_digest", None):
        lines.append(
            f"  plan digest: {job.plan_digest} -> {job.replanned_plan_digest} (re-planned)"
        )
    lines.append(
        f"  tasks: {stats.tasks_completed}/{stats.tasks_total} completed, "
        f"{stats.tasks_reused} reused, {stats.backups_launched} backups, "
        f"{stats.results_spilled} spilled"
    )
    covered = sum(t.index_full_cover for t in timeline)
    lines.append(
        f"  SmartIndex: {covered}/{len(timeline)} attempts fully covered, "
        f"{stats.io_bytes_modeled / 1e6:.1f} MB modeled scan"
    )
    if trace is not None:
        for phase in (
            "fetch_broadcasts",
            "dispatch",
            "broadcast_ship",
            "queue_wait",
            "index_probe",
            "scan",
            "aggregate",
            "project",
            "result_return",
        ):
            if phase in totals:
                count, total_s = tot(phase)
                lines.append(f"  phase {phase}: {total_s:.4f}s over {count} spans")
        by_class = trace.bytes_by_class()
        if by_class:
            parts = ", ".join(
                f"{cls} {by_class[cls] / 1e3:.1f} KB" for cls in sorted(by_class)
            )
            lines.append(f"  traffic: {parts}")
    if timeline:
        slowest = sorted(timeline, key=lambda t: -t.duration_s)[:5]
        lines.append("  slowest task attempts:")
        for t in slowest:
            flags = "".join(
                [" [covered]" if t.index_full_cover else "", " [backup]" if t.backup else ""]
            )
            lines.append(
                f"    {t.task_id} on {t.worker_id}: {t.duration_s * 1000:.2f} ms, "
                f"{t.io_bytes_modeled / 1e6:.1f} MB{flags}"
            )
    return "\n".join(lines)


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB", "TB", "PB"):
        if n < 1024 or unit == "PB":
            return f"{n:.1f} {unit}"
        n /= 1024
    return f"{n:.1f} PB"  # pragma: no cover
