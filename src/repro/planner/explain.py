"""EXPLAIN: human-readable physical plans.

Renders what the master decided for a query — the §III-B "optimized
query execution plan" — including predicate classification (indexable
scan CNF vs. post-join residual), block pruning, projection pushdown,
broadcast joins and cost estimates.  Exposed to users through
:meth:`repro.client.FeisuClient.explain`.
"""

from __future__ import annotations

from typing import List

from repro.planner.cost import CostModel
from repro.planner.physical import PhysicalPlan


def explain(plan: PhysicalPlan, cost_model: CostModel = CostModel()) -> str:
    """Render a physical plan as an indented tree."""
    analyzed = plan.analyzed
    lines: List[str] = [f"Plan {plan.plan_id}"]

    def add(depth: int, text: str) -> None:
        lines.append("  " * depth + text)

    add(1, f"output: {', '.join(analyzed.output_names)}")

    if analyzed.query.limit is not None:
        add(1, f"limit: {analyzed.query.limit}")
    if analyzed.query.order_by:
        keys = ", ".join(
            f"{item.expr}{'' if item.ascending else ' DESC'}" for item in analyzed.query.order_by
        )
        add(1, f"order by: {keys}")

    if plan.is_aggregate:
        aggs = ", ".join(str(a) for a in analyzed.aggregates)
        add(1, f"aggregate: {aggs or '(none)'}")
        if analyzed.group_keys:
            add(2, f"group keys: {', '.join(str(k) for k in analyzed.group_keys)}")
        if analyzed.query.having is not None:
            add(2, f"having: {analyzed.query.having}")

    for bc in plan.broadcasts:
        add(1, f"broadcast join [{bc.kind.value}] {bc.table_name} AS {bc.binding}")
        add(2, f"on: {bc.condition}")
        add(2, f"columns: {', '.join(bc.columns)}")

    if plan.post_filter is not None:
        add(1, f"post-join filter: {plan.post_filter}")

    table = analyzed.tables[analyzed.base_binding]
    add(1, f"scan {table.name} ({len(plan.tasks)} tasks, {plan.pruned_blocks} blocks pruned)")
    if plan.scan_cnf.clauses:
        add(2, "scan predicates (CNF, SmartIndex-eligible):")
        for clause in plan.scan_cnf.clauses:
            add(3, str(clause))
    else:
        add(2, "scan predicates: (none)")
    add(2, f"read columns: {', '.join(plan.tasks[0].columns) if plan.tasks else '(no tasks)'}")
    add(2, f"payload columns: {', '.join(plan.payload_columns) or '(none)'}")

    scan_bytes = plan.estimated_scan_bytes()
    add(2, f"estimated scan: {_fmt_bytes(scan_bytes)} encoded")
    if plan.tasks:
        from repro.planner.selectivity import estimate_result_rows, estimate_selectivity

        selectivity = estimate_selectivity(plan.scan_cnf, table)
        add(
            2,
            f"estimated selectivity: {selectivity:.3f} "
            f"(~{estimate_result_rows(plan):,.0f} of {table.modeled_rows:,.0f} modeled rows)",
        )
    if plan.tasks:
        cold = sum(cost_model.task_seconds(t, plan.scan_cnf) for t in plan.tasks)
        warm = sum(
            cost_model.task_seconds(t, plan.scan_cnf, index_covered=True) for t in plan.tasks
        )
        add(2, f"estimated task seconds: {cold:.3f} cold / {warm:.3f} index-covered")
    return "\n".join(lines)


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB", "TB", "PB"):
        if n < 1024 or unit == "PB":
            return f"{n:.1f} {unit}"
        n /= 1024
    return f"{n:.1f} PB"  # pragma: no cover
