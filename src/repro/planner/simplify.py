"""Conjunctive-form simplification.

Drill-down sessions (§IV-A) pile predicates onto the same columns —
``a > 3 AND a > 5`` and worse.  Before the scan CNF reaches SmartIndex
and the executor, the planner normalizes it:

* **domination**: among single-atom clauses on one column, keep only the
  tightest bound per direction (``a > 3 AND a > 5`` → ``a > 5``);
* **equality propagation**: an equality absorbs every ordered bound it
  satisfies (``a = 4 AND a > 3`` → ``a = 4``);
* **contradiction detection**: an unsatisfiable conjunction
  (``a > 5 AND a < 3``, ``a = 1 AND a = 2``) marks the whole filter
  *empty* — the planner then produces zero tasks.

Simplification is semantics-preserving (property-tested) and improves
index reuse: fewer, canonical conjuncts mean fewer distinct cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.planner.cnf import AtomicPredicate, Clause, ConjunctiveForm
from repro.sql.ast import BinaryOperator

_LOWER = (BinaryOperator.GT, BinaryOperator.GE)
_UPPER = (BinaryOperator.LT, BinaryOperator.LE)


@dataclass
class SimplifiedForm:
    """Result of :func:`simplify_cnf`."""

    cnf: ConjunctiveForm
    #: True when the conjunction is provably unsatisfiable.
    contradiction: bool = False
    #: Atoms removed as redundant (for EXPLAIN/debugging).
    removed: Tuple[str, ...] = ()


def simplify_cnf(cnf: ConjunctiveForm) -> SimplifiedForm:
    """Simplify; multi-atom (OR) and residual clauses pass through."""
    passthrough: List[Clause] = []
    singles: Dict[str, List[AtomicPredicate]] = {}
    for clause in cnf.clauses:
        if clause.is_indexable and len(clause.atoms) == 1:
            atom = clause.atoms[0]
            singles.setdefault(atom.column, []).append(atom)
        else:
            passthrough.append(clause)

    kept: List[Clause] = []
    removed: List[str] = []
    for column in sorted(singles):
        atoms = singles[column]
        survivors, contradiction = _simplify_column(atoms)
        if contradiction:
            return SimplifiedForm(ConjunctiveForm([]), contradiction=True)
        removed.extend(a.key for a in atoms if a not in survivors)
        kept.extend(Clause((a,)) for a in survivors)
    return SimplifiedForm(
        ConjunctiveForm(kept + passthrough), removed=tuple(removed)
    )


def _simplify_column(atoms: List[AtomicPredicate]) -> Tuple[List[AtomicPredicate], bool]:
    """Simplify the conjunction of single-column atoms.

    Only numeric/orderable comparisons participate; CONTAINS and
    mixed-type oddities pass through untouched.
    """
    ordered = [a for a in atoms if _comparable(a)]
    rest = [a for a in atoms if not _comparable(a)]
    if not ordered:
        return _dedupe(atoms), False

    equalities = [a for a in ordered if a.op is BinaryOperator.EQ]
    inequalities = [a for a in ordered if a.op is BinaryOperator.NE]
    lowers = [a for a in ordered if a.op in _LOWER]
    uppers = [a for a in ordered if a.op in _UPPER]

    # Multiple distinct equalities on one column contradict.
    eq_values = {a.value for a in equalities}
    if len(eq_values) > 1:
        return [], True

    if equalities:
        v = equalities[0].value
        # the equality must satisfy every other constraint, else contradiction
        for a in lowers:
            if not _holds(v, a):
                return [], True
        for a in uppers:
            if not _holds(v, a):
                return [], True
        for a in inequalities:
            if v == a.value:
                return [], True
        return _dedupe([equalities[0]] + rest), False

    best_lower = _tightest(lowers, direction="lower")
    best_upper = _tightest(uppers, direction="upper")
    if best_lower is not None and best_upper is not None:
        if not _range_satisfiable(best_lower, best_upper):
            return [], True
    survivors = [a for a in (best_lower, best_upper) if a is not None]
    # NE atoms whose value lies outside the surviving range are vacuous.
    for a in inequalities:
        if best_lower is not None and not _holds(a.value, best_lower):
            continue
        if best_upper is not None and not _holds(a.value, best_upper):
            continue
        survivors.append(a)
    return _dedupe(survivors + rest), False


def _comparable(atom: AtomicPredicate) -> bool:
    if atom.op is BinaryOperator.CONTAINS:
        return False
    return isinstance(atom.value, (int, float)) and not isinstance(atom.value, bool)


def _holds(value, atom: AtomicPredicate) -> bool:
    """Does ``value`` satisfy ``column OP atom.value``?"""
    op, bound = atom.op, atom.value
    if op is BinaryOperator.GT:
        return value > bound
    if op is BinaryOperator.GE:
        return value >= bound
    if op is BinaryOperator.LT:
        return value < bound
    if op is BinaryOperator.LE:
        return value <= bound
    if op is BinaryOperator.EQ:
        return value == bound
    return value != bound


def _tightest(atoms: List[AtomicPredicate], direction: str) -> Optional[AtomicPredicate]:
    """The binding constraint among same-direction bounds."""
    if not atoms:
        return None
    if direction == "lower":
        # larger bound is tighter; on ties, strict (>) beats non-strict (>=)
        return max(
            atoms, key=lambda a: (a.value, 1 if a.op is BinaryOperator.GT else 0)
        )
    return min(
        atoms, key=lambda a: (a.value, -1 if a.op is BinaryOperator.LT else 0)
    )


def _range_satisfiable(lower: AtomicPredicate, upper: AtomicPredicate) -> bool:
    lo, hi = lower.value, upper.value
    if lo > hi:
        return False
    if lo == hi:
        # touching bounds satisfiable only when both ends are inclusive
        return lower.op is BinaryOperator.GE and upper.op is BinaryOperator.LE
    return True


def _dedupe(atoms: List[AtomicPredicate]) -> List[AtomicPredicate]:
    seen = set()
    out = []
    for a in atoms:
        if a.key not in seen:
            seen.add(a.key)
            out.append(a)
    return out
