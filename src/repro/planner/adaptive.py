"""Adaptive mid-query re-optimization (S53, ROADMAP item 2).

Feisu's static planner freezes every estimate before execution; this
module re-plans mid-flight, in the spirit of Shark's partial-DAG
execution.  The master splits a job into two *waves* with a checkpoint
between them:

1. **Pilot wave** — a thin row slice of every scan task (a
   :attr:`~repro.planner.physical.ScanTask.row_slice` covering
   ``pilot_fraction`` of each block).  Slices charge I/O and CPU
   proportionally, so the pilot is genuinely cheap on the simulated
   clock and the two waves together cost exactly one full scan.
2. **Checkpoint** — the :class:`ReoptController` compares observed
   selectivity (from the pilot's task reports) and group-key skew (from
   its partial-aggregate histograms) against the planner's estimates,
   and times each pilot slice against the cost model.
3. **Remainder wave** — the complement slices, re-planned: hot or
   straggling work is split into sub-slices across idle leaves
   (``skew-split``), a large selectivity misestimate with idle capacity
   repartitions the remainder the same way (``repartition``), placement
   may be narrowed to leaves that already hold the broadcast frames
   (``colocate-broadcast``), cost estimates are rescaled so backup
   deadlines track reality (``revise-selectivity``), and blocks the
   pilot already covered whole are skipped outright.

Everything here is pure planning — no simulator access, no I/O — so the
controller is unit-testable without a cluster.  The master retains every
pilot result across the checkpoint; on a worker crash only the lost
partitions of the current wave re-run (partition-level recovery).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.planner.physical import PhysicalPlan, ScanTask
from repro.planner.selectivity import estimate_selectivity


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs for the adaptive re-optimizer (``FeisuConfig.adaptive``)."""

    #: Fraction of each block the pilot wave scans.
    pilot_fraction: float = 0.125
    #: Floor on pilot rows per block (tiny blocks: pilot = whole block,
    #: and the remainder wave skips them — honest stage skipping).
    pilot_min_rows: int = 256
    #: Re-plan when max(est, obs) / min(est, obs) selectivity ≥ this.
    error_ratio: float = 2.0
    #: Skew-split when the hottest group holds ≥ this share of pilot rows.
    skew_threshold: float = 0.3
    #: ... or when the slowest pilot slice ran ≥ this multiple of the
    #: median (a straggling/slow leaf looks exactly like data skew to
    #: the remainder wave: split its work so others absorb it).
    straggler_ratio: float = 3.0
    #: Max sub-slices one remainder partition splits into.
    split_factor: int = 4
    #: Never create sub-slices smaller than this many rows.
    min_split_rows: int = 512
    #: Jobs with fewer tasks than this run the frozen path (the
    #: checkpoint would cost more than it could save).
    min_tasks: int = 1
    #: Colocate remainder tasks with broadcast-holding leaves when the
    #: dimension ship is at least this fraction of a task's own read.
    colocate_ratio: float = 0.25
    #: Clamp on the cost-estimate rescale derived from pilot timings.
    estimate_scale_bounds: Tuple[float, float] = (0.25, 4.0)


@dataclass(frozen=True)
class ReoptDecision:
    """One checkpoint's outcome — the re-plan, or the decision not to."""

    at_s: float
    estimated_selectivity: float
    observed_selectivity: float
    error_ratio: float
    #: Subset of {"revise-selectivity", "skew-split", "repartition",
    #: "colocate-broadcast", "skip-covered"}; empty = keep the frozen
    #: remainder plan.
    actions: Tuple[str, ...] = ()
    split_factor: int = 1
    estimate_scale: float = 1.0
    prefer_workers: Tuple[str, ...] = ()
    hot_group: Optional[str] = None
    hot_share: float = 0.0
    duration_skew: float = 0.0
    skipped_tasks: int = 0

    @property
    def replanned(self) -> bool:
        return bool(self.actions)


def plan_fingerprint(plan: PhysicalPlan, tasks: Optional[Sequence[ScanTask]] = None) -> str:
    """Stable structural digest of a plan (or of a revised task set).

    Covers what determines the answer and the work: scan predicates,
    residual filter, broadcasts, and per-task block/slice/columns.
    ``QueryHistory`` records the original plan's digest plus (after a
    re-plan) the revised one, so history and EXPLAIN ANALYZE agree.
    """
    chosen = plan.tasks if tasks is None else tasks
    h = hashlib.blake2b(digest_size=8)
    h.update(repr(tuple(sorted(str(c) for c in plan.scan_cnf.clauses))).encode())
    h.update(str(plan.post_filter).encode())
    for bc in plan.broadcasts:
        h.update(f"|{bc.binding}:{bc.table_name}:{bc.kind.value}".encode())
    for t in chosen:
        h.update(f"|{t.block.block_id}:{t.row_slice}:{','.join(t.columns)}".encode())
    return h.hexdigest()


class ReoptController:
    """Plans the pilot wave, judges its actuals, re-plans the remainder."""

    def __init__(self, config: AdaptiveConfig, plan: PhysicalPlan, cost_model=None):
        self.config = config
        self.plan = plan
        self.base_table = plan.analyzed.tables[plan.analyzed.base_binding]
        #: The scheduler's cost model (so ablation-tweaked rates carry
        #: into the checkpoint's observed-vs-modeled comparison).
        self._cost_model = cost_model
        #: Every checkpoint's outcome, in order (the decision log).
        self.decisions: List[ReoptDecision] = []

    # -- wave construction ------------------------------------------------

    def pilot_rows(self, task: ScanTask) -> int:
        """Rows the pilot slice of ``task`` covers (whole block if small)."""
        n = task.block.num_rows
        want = max(self.config.pilot_min_rows, int(n * self.config.pilot_fraction))
        return min(n, want)

    def pilot_wave(self, tasks: Sequence[ScanTask]) -> List[ScanTask]:
        """One thin leading slice per task; ids get a ``.p`` suffix."""
        return [
            replace(t, task_id=f"{t.task_id}.p", row_slice=(0, self.pilot_rows(t)))
            for t in tasks
        ]

    def remainder_wave(
        self, tasks: Sequence[ScanTask], decision: ReoptDecision
    ) -> List[ScanTask]:
        """Complement slices under ``decision``: split when skewed, skip
        blocks the pilot already covered whole."""
        out: List[ScanTask] = []
        splitting = {"skew-split", "repartition"} & set(decision.actions)
        split = decision.split_factor if splitting else 1
        for t in tasks:
            p = self.pilot_rows(t)
            n = t.block.num_rows
            if p >= n:
                continue  # pilot answered this block entirely
            span = n - p
            k = max(1, min(split, span // max(1, self.config.min_split_rows)))
            bounds = [p + (span * i) // k for i in range(k + 1)]
            for i in range(k):
                lo, hi = bounds[i], bounds[i + 1]
                if hi > lo:
                    out.append(replace(t, task_id=f"{t.task_id}.s{i}", row_slice=(lo, hi)))
        return out

    # -- the checkpoint ---------------------------------------------------

    def decide(
        self,
        now: float,
        tasks: Sequence[ScanTask],
        pilot_results: Sequence,
        pilot_durations: Dict[str, float],
        live_workers: int,
        broadcast_holders: Sequence[str] = (),
        broadcast_bytes: int = 0,
    ) -> ReoptDecision:
        """Compare pilot actuals against estimates; emit the re-plan.

        ``pilot_results`` are the pilot wave's :class:`TaskResult`\\ s,
        ``pilot_durations`` maps pilot task id → attempt seconds (absent
        for results reused from another job's in-flight tasks).
        """
        cfg = self.config
        estimated = estimate_selectivity(self.plan.scan_cnf, self.base_table)
        rows_in = sum(r.report.rows_in_block for r in pilot_results)
        rows_matched = sum(r.report.rows_matched for r in pilot_results)
        observed = rows_matched / rows_in if rows_in else estimated
        lo, hi = sorted((max(estimated, 1e-6), max(observed, 1e-6)))
        err = hi / lo

        actions: List[str] = []
        if self.plan.scan_cnf.clauses and err >= cfg.error_ratio:
            actions.append("revise-selectivity")

        hot_group, hot_share = self._hot_group(pilot_results)
        duration_skew = self._duration_skew(pilot_durations)
        remaining = [t for t in tasks if self.pilot_rows(t) < t.block.num_rows]
        skipped = len(tasks) - len(remaining)
        if skipped:
            actions.append("skip-covered")

        split = 1
        skewed = hot_share >= cfg.skew_threshold or duration_skew >= cfg.straggler_ratio
        # A big selectivity misestimate with idle capacity is its own
        # reason to repartition: the frozen plan sized one task per block
        # on wrong numbers, and spare leaves can absorb the sub-slices.
        idle_capacity = bool(remaining) and live_workers > len(remaining)
        if (skewed or ("revise-selectivity" in actions and idle_capacity)) and remaining:
            split = min(
                cfg.split_factor, max(2, live_workers // max(1, len(remaining)))
            )
            if split > 1:
                actions.append("skew-split" if skewed else "repartition")
            else:
                split = 1

        prefer: Tuple[str, ...] = ()
        if (
            self.plan.has_joins
            and broadcast_holders
            and split == 1
            and remaining
        ):
            mean_read = sum(
                t.block.bytes_for(t.columns) for t in remaining
            ) / len(remaining)
            enough_holders = 2 * len(broadcast_holders) >= len(remaining)
            if enough_holders and broadcast_bytes >= cfg.colocate_ratio * mean_read:
                prefer = tuple(sorted(broadcast_holders))
                actions.append("colocate-broadcast")

        decision = ReoptDecision(
            at_s=now,
            estimated_selectivity=estimated,
            observed_selectivity=observed,
            error_ratio=err,
            actions=tuple(actions),
            split_factor=split,
            estimate_scale=self._estimate_scale(tasks, pilot_durations),
            prefer_workers=prefer,
            hot_group=hot_group,
            hot_share=hot_share,
            duration_skew=duration_skew,
            skipped_tasks=skipped,
        )
        self.decisions.append(decision)
        return decision

    # -- observation helpers ----------------------------------------------

    @staticmethod
    def _hot_group(pilot_results: Sequence) -> Tuple[Optional[str], float]:
        """Hottest group-key share across the pilot's partial aggregates.

        Uses any per-group row counter the partials carry (COUNT or AVG
        states); non-aggregate queries report no skew this way and rely
        on the duration signal instead.
        """
        counts: Dict[str, int] = {}
        for r in pilot_results:
            partial = getattr(r, "partial", None)
            if partial is None:
                continue
            for key, states in partial.groups.items():
                n = next((s.n for s in states if hasattr(s, "n")), None)
                if n is None:
                    return None, 0.0
                label = str(key)
                counts[label] = counts.get(label, 0) + int(n)
        total = sum(counts.values())
        if total <= 0 or len(counts) < 2:
            return None, 0.0
        hot = max(counts, key=counts.get)
        return hot, counts[hot] / total

    @staticmethod
    def _duration_skew(pilot_durations: Dict[str, float]) -> float:
        """max / median of observed pilot slice durations (≥3 samples)."""
        durations = sorted(pilot_durations.values())
        if len(durations) < 3:
            return 0.0
        median = durations[len(durations) // 2]
        if median <= 0.0:
            return 0.0
        return durations[-1] / median

    def _estimate_scale(
        self, tasks: Sequence[ScanTask], pilot_durations: Dict[str, float]
    ) -> float:
        """Rescale for remainder-wave cost estimates, from pilot timings.

        The scheduler's per-task estimate prices a *full block*; the
        remainder runs complement slices, so the scale folds in the mean
        complement fraction times the observed-vs-modeled timing ratio
        (pilot duration ÷ pilot fraction recovers an observed full-task
        cost) — backup deadlines then track what a sub-task actually
        costs instead of an ~8× too-generous whole-block figure.
        """
        if not tasks:
            return 1.0
        fractions = []
        observed_ratio = 1.0
        pilots = sorted(pilot_durations.values())
        for t in tasks:
            p = self.pilot_rows(t)
            fractions.append((t.block.num_rows - p) / max(1, t.block.num_rows))
        mean_fraction = sum(fractions) / len(fractions)
        if mean_fraction <= 0.0:
            return 1.0
        if pilots:
            pilot_fracs = [self.pilot_rows(t) / max(1, t.block.num_rows) for t in tasks]
            mean_pilot_fraction = sum(pilot_fracs) / len(pilot_fracs)
            median_duration = pilots[len(pilots) // 2]
            if median_duration > 0.0 and mean_pilot_fraction > 0.0:
                observed_full_s = median_duration / mean_pilot_fraction
                modeled_full_s = self._modeled_median_seconds(tasks)
                if modeled_full_s > 0.0:
                    observed_ratio = observed_full_s / modeled_full_s
        lo, hi = self.config.estimate_scale_bounds
        return min(hi, max(lo, mean_fraction * observed_ratio))

    def _modeled_median_seconds(self, tasks: Sequence[ScanTask]) -> float:
        """Median full-block cost-model estimate across ``tasks``."""
        from repro.planner.cost import CostModel

        if self._cost_model is None:
            self._cost_model = CostModel()
        secs = sorted(
            self._cost_model.task_seconds(t, self.plan.scan_cnf) for t in tasks
        )
        return secs[len(secs) // 2] if secs else 0.0
