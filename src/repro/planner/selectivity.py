"""Selectivity estimation for the cost-based planner (§III-B).

Combines the catalog's per-column histograms with classic default
heuristics (System-R style) for predicates histograms can't answer:

* histogram-backed ordered comparisons and numeric equality;
* defaults for CONTAINS (substring match), string equality, and columns
  with no statistics;
* independence-assumption combination: AND multiplies, OR complements.
"""

from __future__ import annotations

from typing import Optional

from repro.columnar.table import Table
from repro.planner.cnf import AtomicPredicate, Clause, ConjunctiveForm
from repro.sql.ast import BinaryOperator

#: Default selectivities where no histogram applies.
DEFAULT_COMPARISON = 1.0 / 3.0
DEFAULT_EQUALITY = 0.05
DEFAULT_CONTAINS = 0.10

_OP_TEXT = {
    BinaryOperator.LT: "<",
    BinaryOperator.LE: "<=",
    BinaryOperator.GT: ">",
    BinaryOperator.GE: ">=",
    BinaryOperator.EQ: "=",
    BinaryOperator.NE: "!=",
}


def atom_selectivity(atom: AtomicPredicate, table: Optional[Table]) -> float:
    """Estimated fraction of rows one atomic predicate keeps."""
    if atom.op is BinaryOperator.CONTAINS:
        base = DEFAULT_CONTAINS
        return 1.0 - base if atom.negated else base
    value = atom.value
    numeric = isinstance(value, (int, float)) and not isinstance(value, bool)
    histogram = table.histogram(atom.column) if table is not None else None
    if histogram is not None and numeric:
        return _clamp(histogram.selectivity(_OP_TEXT[atom.op], float(value)))
    if atom.op is BinaryOperator.EQ:
        return DEFAULT_EQUALITY
    if atom.op is BinaryOperator.NE:
        return 1.0 - DEFAULT_EQUALITY
    return DEFAULT_COMPARISON


def clause_selectivity(clause: Clause, table: Optional[Table]) -> float:
    """A clause is a disjunction: complement-multiply its parts."""
    keep_nothing = 1.0
    for atom in clause.atoms:
        keep_nothing *= 1.0 - atom_selectivity(atom, table)
    for _residual in clause.residuals:
        keep_nothing *= 1.0 - DEFAULT_COMPARISON
    return _clamp(1.0 - keep_nothing)


def estimate_selectivity(cnf: ConjunctiveForm, table: Optional[Table]) -> float:
    """AND of clauses under the independence assumption."""
    out = 1.0
    for clause in cnf.clauses:
        out *= clause_selectivity(clause, table)
    return _clamp(out)


def estimate_result_rows(plan) -> float:
    """Estimated base-table rows surviving the scan filter (modeled scale).

    Join fan-out and the post-join residual are approximated with the
    default comparison selectivity per residual conjunct.
    """
    analyzed = plan.analyzed
    table = analyzed.tables[analyzed.base_binding]
    surviving_fraction = estimate_selectivity(plan.scan_cnf, table)
    rows = sum(t.block.modeled_rows for t in plan.tasks) * surviving_fraction
    if plan.post_filter is not None:
        rows *= DEFAULT_COMPARISON
    return rows


def _clamp(x: float) -> float:
    return min(1.0, max(0.0, x))
