"""Query planning: expressions, CNF predicates, physical plans, costs."""

from repro.planner.cnf import (
    AtomicPredicate,
    Clause,
    ConjunctiveForm,
    extract_atom,
    to_cnf,
    to_nnf,
)
from repro.planner.adaptive import (
    AdaptiveConfig,
    ReoptController,
    ReoptDecision,
    plan_fingerprint,
)
from repro.planner.cost import CostModel
from repro.planner.explain import explain
from repro.planner.selectivity import (
    atom_selectivity,
    clause_selectivity,
    estimate_result_rows,
    estimate_selectivity,
)
from repro.planner.simplify import SimplifiedForm, simplify_cnf
from repro.planner.expressions import (
    Frame,
    bare_resolver,
    evaluate,
    expression_cost_ops,
    make_qualified_resolver,
)
from repro.planner.physical import (
    BroadcastTable,
    PhysicalPlan,
    ScanTask,
    build_plan,
)

__all__ = [
    "AdaptiveConfig",
    "AtomicPredicate",
    "BroadcastTable",
    "ReoptController",
    "ReoptDecision",
    "plan_fingerprint",
    "Clause",
    "ConjunctiveForm",
    "CostModel",
    "Frame",
    "PhysicalPlan",
    "ScanTask",
    "bare_resolver",
    "build_plan",
    "evaluate",
    "explain",
    "SimplifiedForm",
    "simplify_cnf",
    "atom_selectivity",
    "clause_selectivity",
    "estimate_result_rows",
    "estimate_selectivity",
    "expression_cost_ops",
    "extract_atom",
    "make_qualified_resolver",
    "to_cnf",
    "to_nnf",
]
