"""Physical planning: query → dissectable task graph.

The master "dissects a query plan into sub-plans based on the information
of available stem servers and dispatch the sub-plans to them" (§III-B).
In this reproduction a :class:`PhysicalPlan` consists of:

* one :class:`ScanTask` per surviving base-table block (blocks pruned by
  catalog range statistics never become tasks);
* :class:`BroadcastTable` descriptors for joined dimension tables, which
  leaves receive alongside their sub-plan (star-schema joins execute at
  the leaves against broadcast dimensions);
* the CNF of the WHERE clause split into base-table *scan predicates*
  (SmartIndex's domain) and a *post-join residual*;
* the aggregation/ordering/limit fragment executed bottom-up through the
  tree.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.columnar.table import BlockRef, Table
from repro.errors import PlanError
from repro.planner.cnf import AtomicPredicate, Clause, ConjunctiveForm, to_cnf
from repro.planner.simplify import simplify_cnf
from repro.sql.analyzer import AnalyzedQuery
from repro.sql.ast import (
    AggregateCall,
    BinaryOp,
    BinaryOperator,
    Column,
    Expr,
    JoinKind,
    walk,
)

_plan_counter = itertools.count()


@dataclass(frozen=True)
class ScanTask:
    """One unit of leaf work: scan/filter/partially-aggregate one block."""

    task_id: str
    table_name: str
    binding: str
    block: BlockRef
    #: Columns this task must read (projection pushdown).
    columns: Tuple[str, ...]
    #: Half-open row range ``[lo, hi)`` of the block this task covers.
    #: ``None`` (the default, and the only value the static planner ever
    #: produces) means the whole block.  The adaptive re-optimizer (S53)
    #: slices tasks for pilot waves and hot-partition splits; a sliced
    #: task charges I/O and CPU proportionally and never touches the
    #: SmartIndex (a partial-block mask would poison full-block answers).
    row_slice: Optional[Tuple[int, int]] = None


@dataclass(frozen=True)
class BroadcastTable:
    """A joined dimension table shipped whole to every leaf."""

    binding: str
    table_name: str
    columns: Tuple[str, ...]
    kind: JoinKind
    condition: Optional[Expr]


@dataclass
class PhysicalPlan:
    """Everything workers and the master need to run one query."""

    plan_id: str
    analyzed: AnalyzedQuery
    tasks: List[ScanTask]
    broadcasts: List[BroadcastTable]
    #: Conjuncts over base-table columns only — evaluated at scan time
    #: and eligible for SmartIndex reuse.
    scan_cnf: ConjunctiveForm
    #: Remaining WHERE parts (cross-table, residual) evaluated post-join.
    post_filter: Optional[Expr]
    #: Base-table columns later stages need beyond predicate evaluation
    #: (outputs, grouping, joins, residual filters).  When SmartIndex
    #: fully covers the scan filter, these are the *only* chunks read.
    payload_columns: Tuple[str, ...] = ()
    #: Blocks skipped outright by catalog range statistics.
    pruned_blocks: int = 0

    @property
    def is_aggregate(self) -> bool:
        return self.analyzed.is_aggregate

    @property
    def has_joins(self) -> bool:
        return bool(self.broadcasts)

    def scan_predicate_keys(self) -> List[str]:
        """Canonical keys of every indexable scan atom (similarity stats)."""
        return self.scan_cnf.predicate_keys()

    def estimated_scan_bytes(self) -> int:
        return sum(t.block.bytes_for(t.columns) for t in self.tasks)


def build_plan(analyzed: AnalyzedQuery) -> PhysicalPlan:
    """Construct the physical plan for an analyzed query."""
    query = analyzed.query
    base_binding = analyzed.base_binding
    base_table = analyzed.tables[base_binding]

    simplified = simplify_cnf(to_cnf(query.where))
    if simplified.contradiction:
        # Unsatisfiable WHERE: the whole table prunes away at plan time.
        return PhysicalPlan(
            plan_id=f"plan-{next(_plan_counter)}",
            analyzed=analyzed,
            tasks=[],
            broadcasts=_build_broadcasts(analyzed),
            scan_cnf=ConjunctiveForm([]),
            post_filter=None,
            payload_columns=(),
            pruned_blocks=len(base_table.blocks),
        )
    cnf = simplified.cnf
    scan_clauses, residual_clauses = _split_clauses(cnf, analyzed, base_binding)
    scan_cnf = ConjunctiveForm(scan_clauses)
    post_filter = _clauses_to_expr(residual_clauses)

    broadcasts = _build_broadcasts(analyzed)
    payload_columns = _payload_columns(analyzed, base_binding, post_filter)
    base_columns = sorted(
        set(payload_columns).union(*(c.columns for c in scan_cnf.clauses))
        if scan_cnf.clauses
        else set(payload_columns)
    )

    plan_id = f"plan-{next(_plan_counter)}"
    tasks: List[ScanTask] = []
    pruned = 0
    for ref in base_table.blocks:
        if _prunable(ref, scan_cnf):
            pruned += 1
            continue
        tasks.append(
            ScanTask(
                task_id=f"{plan_id}/t{len(tasks)}",
                table_name=base_table.name,
                binding=base_binding,
                block=ref,
                columns=tuple(base_columns),
            )
        )
    return PhysicalPlan(
        plan_id=plan_id,
        analyzed=analyzed,
        tasks=tasks,
        broadcasts=broadcasts,
        scan_cnf=scan_cnf,
        post_filter=post_filter,
        payload_columns=tuple(payload_columns),
        pruned_blocks=pruned,
    )


def _split_clauses(
    cnf: ConjunctiveForm, analyzed: AnalyzedQuery, base_binding: str
) -> Tuple[List[Clause], List[Clause]]:
    """Clauses referencing only base-table columns become scan predicates."""
    scan: List[Clause] = []
    residual: List[Clause] = []
    for clause in cnf.clauses:
        if clause.is_indexable and _clause_on_base(clause, analyzed, base_binding):
            scan.append(clause)
        else:
            residual.append(clause)
    return scan, residual


def _clause_on_base(clause: Clause, analyzed: AnalyzedQuery, base_binding: str) -> bool:
    for atom in clause.atoms:
        res = analyzed.resolutions.get((None, atom.column)) or analyzed.resolutions.get(
            (base_binding, atom.column)
        )
        if res is None or res.binding != base_binding:
            return False
    return True


def _clauses_to_expr(clauses: Sequence[Clause]) -> Optional[Expr]:
    if not clauses:
        return None
    exprs = [c.to_expr() for c in clauses]
    out = exprs[0]
    for e in exprs[1:]:
        out = BinaryOp(BinaryOperator.AND, out, e)
    return out


def _build_broadcasts(analyzed: AnalyzedQuery) -> List[BroadcastTable]:
    broadcasts = []

    def add(binding: str, kind: JoinKind, condition: Optional[Expr]) -> None:
        columns = analyzed.columns_of(binding)
        table = analyzed.tables[binding]
        if not columns:
            # Joined but never referenced: still need the join keys for
            # cardinality semantics; fall back to the full narrow schema.
            columns = table.schema.names[:1]
        broadcasts.append(
            BroadcastTable(
                binding=binding,
                table_name=table.name,
                columns=tuple(columns),
                kind=kind,
                condition=condition,
            )
        )

    # §III-A's comma-separated FROM list: old-style joins.  Tables after
    # the first broadcast as cross products; join predicates written in
    # the WHERE clause land in the post-join residual filter.
    for ref in analyzed.query.tables[1:]:
        add(ref.binding, JoinKind.CROSS, None)
    for join in analyzed.query.joins:
        add(join.table.binding, join.kind, join.condition)
    return broadcasts


def _payload_columns(
    analyzed: AnalyzedQuery, base_binding: str, post_filter: Optional[Expr]
) -> List[str]:
    """Base-table columns needed by stages *after* the scan filter.

    Deliberately excludes the WHERE clause: columns referenced only by
    indexable scan predicates need no read when SmartIndex covers them.
    """
    exprs: List[Expr] = list(analyzed.output_exprs) + list(analyzed.group_keys)
    exprs.extend(agg.argument for agg in analyzed.aggregates)
    if analyzed.query.having is not None:
        exprs.append(analyzed.query.having)
    for item in analyzed.query.order_by:
        exprs.append(item.expr)
    for join in analyzed.query.joins:
        if join.condition is not None:
            exprs.append(join.condition)
    if post_filter is not None:
        exprs.append(post_filter)
    needed = set()
    for expr in exprs:
        for node in walk(expr):
            if isinstance(node, Column):
                res = analyzed.resolutions.get((node.table, node.name))
                if res is not None and res.binding == base_binding:
                    needed.add(res.field.name)
    return sorted(needed)


def _prunable(ref: BlockRef, scan_cnf: ConjunctiveForm) -> bool:
    """Can catalog range stats prove no row of this block matches?

    Sound for single-atom clauses: the clause must hold for some row, so
    if its range test fails for the whole block the block is dead.
    """
    for clause in scan_cnf.clauses:
        if len(clause.atoms) != 1 or clause.residuals:
            continue
        atom = clause.atoms[0]
        rng = ref.range_of(atom.column)
        if rng is None:
            continue
        lo, hi = rng
        if lo is None or hi is None:
            continue
        if _range_excludes(atom, lo, hi):
            return True
    return False


def _range_excludes(atom: AtomicPredicate, lo, hi) -> bool:
    op, v = atom.op, atom.value
    try:
        if op is BinaryOperator.EQ:
            return v < lo or v > hi
        if op is BinaryOperator.GT:
            return hi <= v
        if op is BinaryOperator.GE:
            return hi < v
        if op is BinaryOperator.LT:
            return lo >= v
        if op is BinaryOperator.LE:
            return lo > v
    except TypeError:
        return False
    return False  # NE / CONTAINS can't be range-pruned
