"""Vectorized expression evaluation over column arrays.

A :class:`Frame` is the engine's unit of data in flight: named numpy
columns of equal length.  :func:`evaluate` computes any scalar AST
expression over a frame; aggregate calls are *not* evaluated here (the
executor replaces them with materialized result columns first).

Column resolution is pluggable because the same expression evaluates in
two contexts: on a leaf against a single table (bare column names) and
post-join against a combined frame (``binding.column`` names).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.columnar.schema import DataType
from repro.errors import ExecutionError
from repro.sql.ast import (
    AggregateCall,
    BinaryOp,
    BinaryOperator,
    Column,
    Expr,
    FunctionCall,
    Literal,
    Negate,
    NotOp,
    Star,
)


@dataclass
class Frame:
    """Equal-length named columns plus the row count."""

    columns: Dict[str, np.ndarray]
    num_rows: int

    @classmethod
    def from_columns(cls, columns: Dict[str, np.ndarray]) -> "Frame":
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise ExecutionError(f"ragged frame: lengths {sorted(lengths)}")
        return cls(columns, lengths.pop() if lengths else 0)

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise ExecutionError(f"frame has no column {name!r}") from None

    def select(self, names) -> "Frame":
        return Frame({n: self.column(n) for n in names}, self.num_rows)

    def take(self, mask_or_indices: np.ndarray) -> "Frame":
        """Row subset by boolean mask or index array."""
        out = {n: v[mask_or_indices] for n, v in self.columns.items()}
        n = int(mask_or_indices.sum()) if mask_or_indices.dtype == np.bool_ else len(
            mask_or_indices
        )
        return Frame(out, n)

    def head(self, n: int) -> "Frame":
        return Frame({k: v[:n] for k, v in self.columns.items()}, min(n, self.num_rows))

    @staticmethod
    def concat(frames) -> "Frame":
        frames = [f for f in frames if f is not None]
        if not frames:
            return Frame({}, 0)
        names = list(frames[0].columns)
        for f in frames[1:]:
            if list(f.columns) != names:
                raise ExecutionError("cannot concat frames with differing columns")
        out = {
            n: np.concatenate([f.columns[n] for f in frames]) if frames else np.empty(0)
            for n in names
        }
        return Frame(out, sum(f.num_rows for f in frames))


#: Maps a Column AST node to a key in the frame's column dict.
Resolver = Callable[[Column], str]


def bare_resolver(col: Column) -> str:
    """Single-table context: drop any qualifier."""
    return col.name


def make_qualified_resolver(frame: Frame, default_binding: Optional[str] = None) -> Resolver:
    """Post-join context: try ``binding.column`` then the bare name."""

    def resolve(col: Column) -> str:
        if col.table is not None:
            qualified = f"{col.table}.{col.name}"
            if qualified in frame.columns:
                return qualified
        if col.name in frame.columns:
            return col.name
        if default_binding is not None:
            qualified = f"{default_binding}.{col.name}"
            if qualified in frame.columns:
                return qualified
        if col.table is None:
            for key in frame.columns:
                if key.endswith(f".{col.name}"):
                    return key
        raise ExecutionError(f"cannot resolve column {col} in frame")

    return resolve


def _broadcast(value, num_rows: int) -> np.ndarray:
    if isinstance(value, str):
        arr = np.empty(num_rows, dtype=object)
        arr[:] = value
        return arr
    if isinstance(value, bool):
        return np.full(num_rows, value, dtype=np.bool_)
    if isinstance(value, int):
        return np.full(num_rows, value, dtype=np.int64)
    return np.full(num_rows, float(value), dtype=np.float64)


def _contains(haystack: np.ndarray, needle: np.ndarray) -> np.ndarray:
    out = np.empty(len(haystack), dtype=np.bool_)
    for i in range(len(haystack)):
        out[i] = needle[i] in haystack[i]
    return out


def string_contains(column: np.ndarray, needle: str) -> np.ndarray:
    """Vectorized ``column CONTAINS literal`` — the hot predicate path."""
    if len(column) == 0:
        return np.empty(0, dtype=np.bool_)
    return np.fromiter((needle in v for v in column), dtype=np.bool_, count=len(column))


def evaluate(expr: Expr, frame: Frame, resolve: Resolver = bare_resolver) -> np.ndarray:
    """Evaluate ``expr`` to a column of ``frame.num_rows`` values."""
    if isinstance(expr, Literal):
        return _broadcast(expr.value, frame.num_rows)
    if isinstance(expr, Column):
        return frame.column(resolve(expr))
    if isinstance(expr, Star):
        raise ExecutionError("'*' cannot be evaluated as a scalar expression")
    if isinstance(expr, AggregateCall):
        raise ExecutionError(
            f"aggregate {expr} reached the scalar evaluator; executor bug"
        )
    if isinstance(expr, Negate):
        return -evaluate(expr.operand, frame, resolve)
    if isinstance(expr, NotOp):
        return ~evaluate(expr.operand, frame, resolve).astype(np.bool_)
    if isinstance(expr, FunctionCall):
        return _evaluate_function(expr, frame, resolve)
    if isinstance(expr, BinaryOp):
        return _evaluate_binary(expr, frame, resolve)
    raise ExecutionError(f"unsupported expression node {type(expr).__name__}")


def _evaluate_function(expr: FunctionCall, frame: Frame, resolve: Resolver) -> np.ndarray:
    args = [evaluate(a, frame, resolve) for a in expr.args]
    if expr.name == "LENGTH":
        return np.fromiter((len(v) for v in args[0]), dtype=np.int64, count=len(args[0]))
    if expr.name == "LOWER":
        out = np.empty(len(args[0]), dtype=object)
        for i, v in enumerate(args[0]):
            out[i] = v.lower()
        return out
    if expr.name == "UPPER":
        out = np.empty(len(args[0]), dtype=object)
        for i, v in enumerate(args[0]):
            out[i] = v.upper()
        return out
    if expr.name == "ABS":
        return np.abs(args[0])
    raise ExecutionError(f"unknown function {expr.name!r}")


def _evaluate_binary(expr: BinaryOp, frame: Frame, resolve: Resolver) -> np.ndarray:
    op = expr.op
    if op is BinaryOperator.AND:
        left = evaluate(expr.left, frame, resolve).astype(np.bool_)
        if not left.any():
            return left  # short-circuit: right side can't change anything
        return left & evaluate(expr.right, frame, resolve).astype(np.bool_)
    if op is BinaryOperator.OR:
        left = evaluate(expr.left, frame, resolve).astype(np.bool_)
        if left.all():
            return left
        return left | evaluate(expr.right, frame, resolve).astype(np.bool_)

    left = evaluate(expr.left, frame, resolve)
    right = evaluate(expr.right, frame, resolve)
    if op is BinaryOperator.CONTAINS:
        if isinstance(expr.right, Literal) and isinstance(expr.right.value, str):
            return string_contains(left, expr.right.value)
        return _contains(left, right)
    if op is BinaryOperator.EQ:
        return left == right
    if op is BinaryOperator.NE:
        return left != right
    if op is BinaryOperator.LT:
        return left < right
    if op is BinaryOperator.LE:
        return left <= right
    if op is BinaryOperator.GT:
        return left > right
    if op is BinaryOperator.GE:
        return left >= right
    if op is BinaryOperator.ADD:
        return left + right
    if op is BinaryOperator.SUB:
        return left - right
    if op is BinaryOperator.MUL:
        return left * right
    if op is BinaryOperator.DIV:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.true_divide(left, right)
    if op is BinaryOperator.MOD:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.mod(left, right)
    raise ExecutionError(f"unsupported operator {op}")


# -- predicate implication (semantic SmartIndex probing) ---------------------
#
# ``comparison_implies(op_a, va, op_b, vb)`` decides whether every value
# satisfying ``x op_a va`` also satisfies ``x op_b vb`` under *numpy
# comparison semantics*: NaN fails every ordered comparison and ``==``,
# and satisfies ``!=``.  The table below is therefore NaN-exact — it is
# what lets the semantic cache layer treat a cached ``x < 20`` vector as
# a sound candidate superset for a ``x < 10`` probe even on float
# columns with NaN rows.

_ORDERED_OPS = frozenset(
    {BinaryOperator.LT, BinaryOperator.LE, BinaryOperator.GT, BinaryOperator.GE}
)


def comparison_implies(op_a: BinaryOperator, value_a, op_b: BinaryOperator, value_b) -> bool:
    """True iff ``x op_a value_a`` implies ``x op_b value_b`` for every x.

    Both atoms must compare the *same* column; CONTAINS is handled by
    :func:`contains_implies`.  Conservative: unknown op pairs or
    unorderable value pairs return False.
    """
    a, b = op_a, op_b
    try:
        if a is BinaryOperator.EQ:
            # x == va pins the value; check it against the target atom.
            if b is BinaryOperator.EQ:
                return bool(value_a == value_b)
            if b is BinaryOperator.NE:
                return bool(value_a != value_b)
            if b is BinaryOperator.LT:
                return bool(value_a < value_b)
            if b is BinaryOperator.LE:
                return bool(value_a <= value_b)
            if b is BinaryOperator.GT:
                return bool(value_a > value_b)
            if b is BinaryOperator.GE:
                return bool(value_a >= value_b)
            return False
        if a is BinaryOperator.NE:
            # NaN satisfies NE, so NE only implies an identical NE.
            return b is BinaryOperator.NE and bool(value_a == value_b)
        if a not in _ORDERED_OPS:
            return False
        if b is BinaryOperator.NE:
            # x < va implies x != vb whenever vb lies outside the half-line.
            if a is BinaryOperator.LT:
                return bool(value_b >= value_a)
            if a is BinaryOperator.LE:
                return bool(value_b > value_a)
            if a is BinaryOperator.GT:
                return bool(value_b <= value_a)
            if a is BinaryOperator.GE:
                return bool(value_b < value_a)
        if a is BinaryOperator.LT:
            return (b is BinaryOperator.LT and bool(value_b >= value_a)) or (
                b is BinaryOperator.LE and bool(value_b >= value_a)
            )
        if a is BinaryOperator.LE:
            return (b is BinaryOperator.LT and bool(value_b > value_a)) or (
                b is BinaryOperator.LE and bool(value_b >= value_a)
            )
        if a is BinaryOperator.GT:
            return (b is BinaryOperator.GT and bool(value_b <= value_a)) or (
                b is BinaryOperator.GE and bool(value_b <= value_a)
            )
        if a is BinaryOperator.GE:
            return (b is BinaryOperator.GT and bool(value_b < value_a)) or (
                b is BinaryOperator.GE and bool(value_b <= value_a)
            )
    except TypeError:
        return False
    return False


def contains_implies(needle_a: str, needle_b: str) -> bool:
    """``x CONTAINS needle_a`` implies ``x CONTAINS needle_b`` iff the
    coarser needle is a substring of the finer one."""
    return needle_b in needle_a


def expression_cost_ops(expr: Expr, num_rows: int) -> float:
    """Abstract op count for evaluating ``expr`` over ``num_rows`` rows.

    The CPU cost model charges one op per row per operator node, with
    CONTAINS weighted heavier (substring search).  Used both by the
    cost-based planner and by leaf servers when charging simulated
    compute time — SmartIndex's benefit is precisely skipping this.
    """
    node_cost = 0.0
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryOp) and node.op is BinaryOperator.CONTAINS:
            node_cost += 20.0
        elif isinstance(node, (BinaryOp, NotOp, Negate, FunctionCall)):
            node_cost += 1.0
        stack.extend(node.children())
    return node_cost * num_rows
